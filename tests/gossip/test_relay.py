"""Relay forwarding, discovery, and circumvention under a censor."""

from repro.dht import DhtConfig, build_overlay
from repro.errors import RpcTimeoutError
from repro.faults import Censor, FaultInjector, FaultPlan
from repro.gossip import (
    RELAY_DIRECTORY_KEY,
    CircumventionClient,
    RelayNode,
    discover_relays,
    publish_relay_directory,
)
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator


def build(seed=1):
    sim = Simulator()
    network = Network(sim, RngStreams(seed), latency=ConstantLatency(0.01))
    for node_id in ("dev0", "dev1", "svc0", "relay0", "relay1"):
        network.create_node(node_id)
    network.node("svc0").register_handler(
        "fetch", lambda node, payload, sender: f"page:{payload}")
    return sim, network


def border_plan(**overrides):
    fields = dict(
        inside=("dev0", "dev1"),
        at=5.0,
        blocked=("svc0",),
        fingerprints=("relay.",),
    )
    fields.update(overrides)
    return FaultPlan([Censor(**fields)], name="border")


class TestRelayForwarding:
    def test_relay_forwards_request_and_response(self):
        sim, network = build()
        relay = RelayNode(network, "relay0")
        client = CircumventionClient(network, "dev0", relays=["relay0"])
        FaultInjector(sim, network, border_plan(), RngStreams(2)).arm()

        results = []

        def attempt():
            value = yield from client.request("svc0", "fetch", "home")
            results.append(value)

        sim.schedule_at(10.0, lambda: sim.spawn(attempt()))
        sim.run(until=30.0)
        assert results == ["page:home"]
        assert relay.forwarded == 1
        assert client.relayed_ok == 1 and client.direct_ok == 0

    def test_direct_path_preferred_when_not_blocked(self):
        sim, network = build()
        RelayNode(network, "relay0")
        client = CircumventionClient(network, "dev0", relays=["relay0"])

        def scenario():
            value = yield from client.request("svc0", "fetch", "home")
            return value

        assert sim.run_process(scenario()) == "page:home"
        assert client.direct_ok == 1 and client.relayed_ok == 0

    def test_all_relays_blocked_raises(self):
        sim, network = build()
        RelayNode(network, "relay0")
        client = CircumventionClient(network, "dev0", relays=["relay0"])
        plan = border_plan(blocked=("svc0", "relay0"))
        FaultInjector(sim, network, plan, RngStreams(2)).arm()

        results = []

        def attempt():
            try:
                yield from client.request("svc0", "fetch", "x", timeout=2.0)
            except RpcTimeoutError:
                results.append("unreachable")
            else:
                results.append("reached")

        sim.schedule_at(10.0, lambda: sim.spawn(attempt()))
        sim.run(until=60.0)
        assert results == ["unreachable"]
        assert client.failures == 1
        assert client.attempts[-1][1] == "blocked"

    def test_rotation_skips_reblocked_relay(self):
        sim, network = build()
        RelayNode(network, "relay0")
        RelayNode(network, "relay1")
        client = CircumventionClient(network, "dev0",
                                     relays=["relay0", "relay1"])
        plan = border_plan(blocked=("svc0", "relay0"))
        FaultInjector(sim, network, plan, RngStreams(2)).arm()

        results = []

        def attempt():
            value = yield from client.request("svc0", "fetch", "x",
                                              timeout=2.0)
            results.append(value)

        sim.schedule_at(10.0, lambda: sim.spawn(attempt()))
        sim.run(until=60.0)
        assert results == ["page:x"]
        assert client.attempts[-1][1:] == ("relay", "relay1")

    def test_announce_teaches_listeners(self):
        sim, network = build()
        relay = RelayNode(network, "relay0")
        client = CircumventionClient(network, "dev0")
        assert client.relays == []
        sent = relay.announce(["dev0", "dev1"])
        sim.run(until=1.0)
        assert sent == 2
        assert client.relays == ["relay0"]


class TestDhtDiscovery:
    def test_publish_and_discover_roundtrip(self):
        sim = Simulator()
        network = Network(sim, RngStreams(3), latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(12)],
            DhtConfig(k=8, alpha=3, rpc_timeout=1.0))

        def scenario():
            acked = yield from publish_relay_directory(
                overlay["n0"], ["relay0", "relay1"])
            found = yield from discover_relays(overlay["n7"])
            return acked, found

        acked, found = sim.run_process(scenario())
        assert acked > 0
        assert found == ("relay0", "relay1")

    def test_discover_empty_when_unpublished(self):
        sim = Simulator()
        network = Network(sim, RngStreams(3), latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(8)],
            DhtConfig(k=8, alpha=3, rpc_timeout=1.0))

        def scenario():
            found = yield from discover_relays(overlay["n2"])
            return found

        assert sim.run_process(scenario()) == ()


class TestDetectionLoop:
    def test_relay_usage_eventually_triggers_reblock(self):
        # With detect_prob=1 the first forwarded request exposes the
        # relay; after reblock_delay the relay is dead and the client is
        # fully blocked — the whack-a-mole dynamic E4C/E5C/E9C measure.
        sim, network = build()
        RelayNode(network, "relay0")
        client = CircumventionClient(network, "dev0", relays=["relay0"])
        plan = border_plan(detect_prob=1.0, reblock_delay=5.0)
        injector = FaultInjector(sim, network, plan, RngStreams(2))
        injector.arm()

        outcomes = []

        def attempt():
            try:
                value = yield from client.request("svc0", "fetch", "x",
                                                  timeout=2.0)
            except RpcTimeoutError:
                value = None
            outcomes.append((sim.now, value))

        sim.schedule_at(10.0, lambda: sim.spawn(attempt()))  # via relay
        sim.schedule_at(30.0, lambda: sim.spawn(attempt()))  # relay now dead
        sim.run(until=80.0)
        assert outcomes[0][1] == "page:x"
        assert outcomes[1][1] is None
        assert injector.relays_reblocked == 1
