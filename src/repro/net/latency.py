"""Latency models for the simulated network.

A latency model answers one question: how long does a message of ``size``
bytes take from node A to node B right now?  Total delay is propagation
(model-specific) plus serialization on the slower of the two access links.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.node import Node
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    import numpy

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "PlanetLatency",
]


class LatencyModel:
    """Base class; subclasses implement :meth:`propagation_delay`.

    Models also expose :meth:`sample_propagation_delays`, the vectorized
    form used by the cohort engine: ``n`` delay draws for anonymous
    random node pairs, taken from a caller-supplied numpy generator
    (build it with :func:`repro.sim.rng.seeded_generator`) rather than
    the model's own scalar stream, so the batch path never perturbs the
    per-message draw sequence.

    :meth:`propagation_bounds` exposes the support of the propagation
    distribution.  The sharded engine (:mod:`repro.sim.shard`) derives
    its conservative lookahead from the lower bound: any cross-shard
    message takes at least that long, so a shard may safely advance that
    far past the synchronization barrier.  A model whose lower bound is
    zero (e.g. :class:`LogNormalLatency`) cannot drive sharding.
    """

    def propagation_delay(self, src: Node, dst: Node) -> float:
        raise NotImplementedError

    def propagation_bounds(self) -> Tuple[float, float]:
        """``(lo, hi)`` bounds of the propagation delay distribution.

        ``hi`` may be ``math.inf`` for unbounded tails.  Serialization
        delay is additive and non-negative, so ``lo`` also lower-bounds
        the total :meth:`delay`.
        """
        raise NetworkError(
            f"{type(self).__name__} has no propagation bounds"
        )

    def sample_propagation_delays(
        self, generator: "numpy.random.Generator", n: int
    ) -> Any:
        """``n`` propagation delays for random pairs, as a numpy array."""
        raise NetworkError(
            f"{type(self).__name__} has no vectorized sampler"
        )

    def delay(self, src: Node, dst: Node, size_bytes: int) -> float:
        """Propagation + serialization delay for a message."""
        if size_bytes < 0:
            raise NetworkError(f"negative message size: {size_bytes}")
        bottleneck_bps = min(src.upstream_bps, dst.downstream_bps)
        serialization = (size_bytes * 8) / bottleneck_bps if size_bytes else 0.0
        return self.propagation_delay(src, dst) + serialization


class ConstantLatency(LatencyModel):
    """Fixed one-way propagation delay; the simplest useful model."""

    def __init__(self, seconds: float = 0.05):
        if seconds < 0:
            raise NetworkError(f"negative latency: {seconds}")
        self.seconds = float(seconds)

    def propagation_delay(self, src: Node, dst: Node) -> float:
        return self.seconds

    def propagation_bounds(self) -> Tuple[float, float]:
        return (self.seconds, self.seconds)

    def sample_propagation_delays(
        self, generator: "numpy.random.Generator", n: int
    ) -> Any:
        import numpy

        return numpy.full(n, self.seconds)


class UniformLatency(LatencyModel):
    """Propagation delay drawn uniformly from [lo, hi] per message.

    ``streams`` may be ``None`` for cohort-only use (only the vectorized
    sampler works then; per-message draws need the scalar stream).
    """

    def __init__(
        self,
        streams: Optional[RngStreams] = None,
        lo: float = 0.01,
        hi: float = 0.1,
    ):
        if not 0 <= lo <= hi:
            raise NetworkError(f"invalid latency range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        self._rng = None if streams is None else streams.stream("latency.uniform")

    def propagation_delay(self, src: Node, dst: Node) -> float:
        if self._rng is None:
            raise NetworkError(
                "UniformLatency built without streams supports only"
                " sample_propagation_delays"
            )
        return self._rng.uniform(self.lo, self.hi)

    def propagation_bounds(self) -> Tuple[float, float]:
        return (self.lo, self.hi)

    def sample_propagation_delays(
        self, generator: "numpy.random.Generator", n: int
    ) -> Any:
        # Inverse-CDF over the raw uniform doubles; see repro.sim.cohort
        # for why draws avoid the distribution-specific methods.
        return self.lo + (self.hi - self.lo) * generator.random(n)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed per-message delay, the shape WAN RTT studies report.

    Parameterized by the median delay and sigma of the underlying normal.
    """

    def __init__(
        self,
        streams: Optional[RngStreams] = None,
        median: float = 0.05,
        sigma: float = 0.5,
    ):
        if median <= 0:
            raise NetworkError(f"median latency must be positive: {median}")
        self.mu = math.log(median)
        self.sigma = float(sigma)
        self._rng = None if streams is None else streams.stream("latency.lognormal")

    def propagation_delay(self, src: Node, dst: Node) -> float:
        if self._rng is None:
            raise NetworkError(
                "LogNormalLatency built without streams supports only"
                " sample_propagation_delays"
            )
        return self._rng.lognormvariate(self.mu, self.sigma)

    def propagation_bounds(self) -> Tuple[float, float]:
        # The lognormal support is (0, inf): no positive lower bound, so
        # this model cannot provide a sharding lookahead.
        return (0.0, math.inf)

    def sample_propagation_delays(
        self, generator: "numpy.random.Generator", n: int
    ) -> Any:
        import numpy

        return numpy.exp(self.mu + self.sigma * generator.standard_normal(n))


class PlanetLatency(LatencyModel):
    """Pairwise-stable delays: each node gets a random 2-D coordinate and
    delay is proportional to Euclidean distance, plus a per-node access hop.

    This gives geographically-consistent delays (triangle-inequality-ish),
    which matters for experiments comparing nearby federation servers
    against a distant centralized provider.
    """

    def __init__(
        self,
        streams: RngStreams,
        diameter_seconds: float = 0.3,
        access_hop_seconds: float = 0.005,
    ):
        self.diameter_seconds = float(diameter_seconds)
        self.access_hop_seconds = float(access_hop_seconds)
        self._rng = streams.stream("latency.planet")
        self._coords: Dict[str, Tuple[float, float]] = {}

    def _coord(self, node: Node) -> Tuple[float, float]:
        coord = self._coords.get(node.node_id)
        if coord is None:
            coord = (self._rng.random(), self._rng.random())
            self._coords[node.node_id] = coord
        return coord

    def place(self, node: Node, x: float, y: float) -> None:
        """Pin a node to explicit coordinates in [0,1]^2 (e.g. to model a
        centralized datacenter far from a user cluster)."""
        if not (0 <= x <= 1 and 0 <= y <= 1):
            raise NetworkError(f"coordinates out of range: ({x}, {y})")
        self._coords[node.node_id] = (x, y)

    def propagation_delay(self, src: Node, dst: Node) -> float:
        if src.node_id == dst.node_id:
            return 0.0
        (x1, y1), (x2, y2) = self._coord(src), self._coord(dst)
        distance = math.hypot(x2 - x1, y2 - y1) / math.sqrt(2.0)
        return 2 * self.access_hop_seconds + distance * self.diameter_seconds

    def propagation_bounds(self) -> Tuple[float, float]:
        # Distinct nodes always pay both access hops; coordinates on the
        # normalized unit square cap distance at the diameter.
        return (
            2 * self.access_hop_seconds,
            2 * self.access_hop_seconds + self.diameter_seconds,
        )

    def sample_propagation_delays(
        self, generator: "numpy.random.Generator", n: int
    ) -> Any:
        """Delays for ``n`` fresh random pairs on the unit square.

        The batch path has no stable node identities to pin coordinates
        to, so each sample is an independent pair — the same marginal
        distribution :meth:`propagation_delay` produces for previously
        unseen node pairs.
        """
        import numpy

        dx = generator.random(n) - generator.random(n)
        dy = generator.random(n) - generator.random(n)
        distance = numpy.hypot(dx, dy) / math.sqrt(2.0)
        return 2 * self.access_hop_seconds + distance * self.diameter_seconds
