"""The :class:`Finding` record every lint rule emits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is the file as given to the linter (kept verbatim so output
    is stable no matter where the linter was invoked from); ``line`` and
    ``col`` are 1- and 0-based respectively, matching :mod:`ast`.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-reporter form (see ``docs/LINTING.md`` for the schema)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line human form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
