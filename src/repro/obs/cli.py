"""``python -m repro trace``: run an experiment under full observation.

Usage::

    python -m repro trace E4                       # summary to stdout
    python -m repro trace E4 --out trace.jsonl     # plus JSONL trace file
    python -m repro trace E4 --format json         # machine-readable report
    python -m repro trace --validate trace.jsonl   # schema-check a trace

Exit codes: 0 ok, 1 validation failed, 2 usage error — mirroring the
lint CLI.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Optional

from repro.obs.metrics import Metrics
from repro.obs.reporters import (
    render_report_human,
    render_report_json,
    validate_trace_file,
)
from repro.obs.runtime import observe
from repro.obs.tracer import Tracer

__all__ = ["add_trace_arguments", "run_trace"]


def add_trace_arguments(parser) -> None:
    """Attach the trace options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "name", nargs="?", default=None,
        help="experiment id to run under tracing, e.g. E4",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the JSONL trace here (default: no trace file)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--capacity", type=int, default=None, metavar="N",
        help="retain at most N trace records (default: unlimited)",
    )
    parser.add_argument(
        "--validate", default=None, metavar="TRACE",
        help="validate an existing JSONL trace file and exit",
    )


def run_trace(
    args, experiments: Dict[str, Callable[[], object]]
) -> int:
    """Execute the trace command from parsed arguments.

    ``experiments`` maps experiment ids to zero-argument drivers (the
    registry ``python -m repro experiment`` uses).
    """
    if args.validate is not None:
        return _validate(args.validate)
    if args.name is None:
        print("trace: an experiment id (or --validate) is required",
              file=sys.stderr)
        return 2
    driver = experiments.get(args.name.upper())
    if driver is None:
        print(f"unknown experiment {args.name!r}; known:"
              f" {', '.join(sorted(experiments))}", file=sys.stderr)
        return 2
    if args.capacity is not None and args.capacity < 0:
        print(f"--capacity must be >= 0, got {args.capacity}",
              file=sys.stderr)
        return 2

    tracer = Tracer(capacity=args.capacity)
    metrics = Metrics()
    with observe(tracer=tracer, metrics=metrics):
        driver()

    written: Optional[int] = None
    if args.out is not None:
        written = tracer.write_jsonl(args.out)

    name = args.name.upper()
    if args.format == "json":
        print(render_report_json(metrics, tracer, experiment=name))
    else:
        print(render_report_human(metrics, tracer, experiment=name))
        if written is not None:
            print(f"\ntrace written: {args.out} ({written} record(s))")
    return 0


def _validate(path: str) -> int:
    try:
        errors = validate_trace_file(path)
    except OSError as exc:
        print(f"trace: cannot read {path!r}: {exc}", file=sys.stderr)
        return 2
    if errors:
        for error in errors:
            print(error)
        print(f"{len(errors)} schema error(s) in {path}")
        return 1
    print(f"trace: {path} valid")
    return 0
