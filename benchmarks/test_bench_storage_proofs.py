"""E7 — do storage-proof incentives defeat the §3.3 attacks?

The paper: proofs of storage/retrievability/replication/spacetime exist
to make Sybil, outsourcing, and generation attacks unprofitable.  The
bench runs each attacker against its matched audit and reports earnings:
without audits cheating pays in full; with them, detection slashes the
deal.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table, run_proof_economics


def test_bench_proof_economics(benchmark):
    rows = benchmark.pedantic(
        run_proof_economics, kwargs={"seed": 4, "epochs": 10},
        rounds=1, iterations=1,
    )
    emit("E7 — provider earnings by behaviour and audit scheme",
         render_table(rows))
    by_key = {(row["behaviour"], row["audit"]): row for row in rows}

    honest = by_key[("honest", "proof_of_storage")]
    unaudited = by_key[("drop_half_no_audits", "none")]
    audited_drop = by_key[("drop_half", "proof_of_storage")]
    por_drop = by_key[("drop_half", "proof_of_retrievability")]
    dedup = by_key[("dedup_sybil", "proof_of_replication")]
    outsourced = by_key[("outsourcing_far", "proof_of_retrievability")]

    # Honest work is paid in full.
    assert honest["epochs_paid"] == 10 and not honest["slashed"]
    # No audits: dropping half the data still pays in full — the reason
    # incentive proofs exist at all.
    assert unaudited["epochs_paid"] == 10 and not unaudited["slashed"]
    # Single-challenge audits catch a 50% dropper within a few epochs.
    assert audited_drop["slashed"]
    assert audited_drop["epochs_paid"] < 10
    # Multi-sample retrievability audits catch it faster (or as fast).
    assert por_drop["epochs_paid"] <= audited_drop["epochs_paid"]
    # Replication proofs detect the dedup/Sybil cheat.
    assert dedup["slashed"] and dedup["epochs_paid"] == 0
    # Distant outsourcing busts the response deadline.
    assert outsourced["slashed"]
    # The economics: every audited cheater earns strictly less than honest.
    for row in (audited_drop, por_drop, dedup, outsourced):
        assert row["earnings"] < honest["earnings"]


def test_bench_detection_probability_vs_drop_fraction(benchmark):
    """Soundness ablation: per-challenge failure probability ~ dropped
    fraction, so multi-round detection is exponential."""
    from repro.net import ConstantLatency, Network
    from repro.sim import RngStreams, Simulator
    from repro.storage import Commitment, StorageProvider, StorageVerifier, make_random_blob

    def detection_curve():
        rows = []
        for fraction in (0.1, 0.25, 0.5, 0.75):
            sim = Simulator()
            streams = RngStreams(13)
            network = Network(sim, streams, latency=ConstantLatency(0.01))
            verifier = StorageVerifier(network, "auditor", streams)
            provider = StorageProvider(network, "prov")
            blob = make_random_blob(streams, 200 * 512, chunk_size=512)
            provider.accept_blob(blob)
            provider.drop_chunks(blob.merkle_root, fraction, streams.stream("d"))
            commitment = Commitment(blob.merkle_root, len(blob.chunks))

            def scenario():
                failures = 0
                for _ in range(200):
                    outcome = yield from verifier.challenge_once("prov", commitment)
                    if not outcome.ok:
                        failures += 1
                return failures

            failures = sim.run_process(scenario())
            rows.append(
                {"dropped_fraction": fraction,
                 "challenge_failure_rate": failures / 200}
            )
        return rows

    rows = benchmark.pedantic(detection_curve, rounds=1, iterations=1)
    emit("E7 ablation — challenge failure rate vs dropped fraction",
         render_table(rows))
    for row in rows:
        assert row["challenge_failure_rate"] == pytest.approx(
            row["dropped_fraction"], abs=0.12
        )
