"""Fixture: DET005 — one stream name constructed at two sites.

Both sites take the root seed as a parameter, so the roots are unknown
statically and the two streams *can* be built from the same root —
identical names then mean identical draw sequences.
"""

from repro.sim.rng import seeded_rng


def first_component(seed):
    return seeded_rng(seed, "pkg.shared").random()


def second_component(seed):
    return seeded_rng(seed, "pkg.shared").random()
