"""Unit tests for the crypto substrate."""

import pytest

from repro.crypto import (
    MerkleTree,
    MiningRace,
    PowPuzzle,
    expected_block_time,
    generate_keypair,
    hash_int,
    hash_obj,
    merkle_root,
    require_valid,
    sha256,
    sha256_hex,
    verify,
)
from repro.errors import CryptoError, InvalidSignatureError
from repro.sim import RngStreams


class TestHashing:
    def test_sha256_known_vector(self):
        # SHA-256 of empty string is the well-known constant.
        assert sha256_hex(b"") == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_requires_bytes(self):
        with pytest.raises(TypeError):
            sha256("text")  # type: ignore[arg-type]

    def test_hash_obj_key_order_independent(self):
        assert hash_obj({"a": 1, "b": 2}) == hash_obj({"b": 2, "a": 1})

    def test_hash_obj_distinguishes_values(self):
        assert hash_obj({"a": 1}) != hash_obj({"a": 2})

    def test_hash_obj_bytes_vs_hex_text_distinct(self):
        assert hash_obj(b"\x01\x02") != hash_obj("0102")

    def test_hash_int_range(self):
        for bits in (8, 16, 160, 256):
            value = hash_int("sample", bits=bits)
            assert 0 <= value < 2**bits


class TestKeys:
    def test_sign_verify_roundtrip(self):
        pair = generate_keypair("alice")
        sig = pair.sign({"msg": "hello"})
        assert verify(sig, {"msg": "hello"})

    def test_verify_rejects_wrong_message(self):
        pair = generate_keypair("alice2")
        sig = pair.sign("hello")
        assert not verify(sig, "goodbye")

    def test_deterministic_identity_from_seed(self):
        a1 = generate_keypair("same-seed")
        a2 = generate_keypair("same-seed")
        assert a1.public_key == a2.public_key

    def test_different_seeds_different_keys(self):
        assert (
            generate_keypair("seed-x").public_key
            != generate_keypair("seed-y").public_key
        )

    def test_forged_signature_fails(self):
        alice = generate_keypair("alice3")
        mallory = generate_keypair("mallory")
        forged_sig = mallory.sign("pay alice")
        # Mallory cannot claim alice's key: swap in alice's public key.
        from repro.crypto.keys import Signature

        forged = Signature(alice.public_key, forged_sig.message_hash, forged_sig.check)
        assert not verify(forged, "pay alice")

    def test_unknown_public_key_raises(self):
        from repro.crypto.keys import KeyPair, Signature

        rogue = KeyPair("never-registered-xyz")
        sig = rogue.sign("m")
        # Drop from registry if somehow present (other tests use generate_keypair).
        from repro.crypto import keys as keys_module

        keys_module._VERIFIERS.pop(rogue.public_key, None)
        with pytest.raises(CryptoError):
            verify(sig, "m")

    def test_require_valid_raises_on_mismatch(self):
        pair = generate_keypair("alice4")
        sig = pair.sign("a")
        with pytest.raises(InvalidSignatureError):
            require_valid(sig, "b")

    def test_empty_seed_rejected(self):
        with pytest.raises(CryptoError):
            generate_keypair("")


class TestMerkle:
    def test_single_leaf_root_is_stable(self):
        t = MerkleTree([b"only"])
        assert t.root == merkle_root([b"only"])
        assert len(t) == 1

    def test_proofs_verify_for_every_leaf(self):
        leaves = [f"leaf{i}".encode() for i in range(9)]  # odd count
        tree = MerkleTree(leaves)
        for i in range(len(leaves)):
            assert tree.proof(i).verify(tree.root)

    def test_proof_fails_against_wrong_root(self):
        t1 = MerkleTree([b"a", b"b", b"c"])
        t2 = MerkleTree([b"a", b"b", b"d"])
        assert not t1.proof(2).verify(t2.root)

    def test_root_changes_with_any_leaf(self):
        base = merkle_root([b"a", b"b", b"c", b"d"])
        assert base != merkle_root([b"a", b"b", b"c", b"e"])
        assert base != merkle_root([b"a", b"b", b"c"])

    def test_leaf_order_matters(self):
        assert merkle_root([b"a", b"b"]) != merkle_root([b"b", b"a"])

    def test_empty_tree_rejected(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    def test_out_of_range_proof_rejected(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(CryptoError):
            tree.proof(2)


class TestPow:
    def test_puzzle_solve_and_verify(self):
        puzzle = PowPuzzle("block-data", target_bits=8)
        nonce = puzzle.solve()
        assert puzzle.verify(nonce)

    def test_harder_puzzle_unsolved_nonce_fails(self):
        puzzle = PowPuzzle("block-data", target_bits=8)
        nonce = puzzle.solve()
        assert not PowPuzzle("other-data", target_bits=64).verify(nonce)

    def test_zero_bits_always_satisfied(self):
        puzzle = PowPuzzle("x", target_bits=0)
        assert puzzle.verify(0)

    def test_expected_block_time(self):
        assert expected_block_time(100.0, 600.0) == 6.0
        with pytest.raises(CryptoError):
            expected_block_time(0.0, 600.0)

    def test_mining_race_winner_distribution(self):
        streams = RngStreams(7)
        race = MiningRace(streams)
        wins = {"big": 0, "small": 0}
        for _ in range(2000):
            winner, dt = race.sample_block({"big": 9.0, "small": 1.0}, 100.0)
            wins[winner] += 1
            assert dt > 0
        share = wins["big"] / 2000
        assert 0.85 < share < 0.95  # expected 0.9

    def test_mining_race_time_scales_with_difficulty(self):
        streams = RngStreams(7)
        race = MiningRace(streams)
        times_easy = [race.sample_block({"m": 1.0}, 10.0)[1] for _ in range(500)]
        times_hard = [race.sample_block({"m": 1.0}, 1000.0)[1] for _ in range(500)]
        assert sum(times_hard) / sum(times_easy) > 50  # expect ~100x

    def test_mining_race_requires_positive_hashrate(self):
        race = MiningRace(RngStreams(1))
        with pytest.raises(CryptoError):
            race.sample_block({"m": 0.0}, 100.0)
