"""The centralized PKI baseline: a certificate authority on one server.

This is the incumbent the paper's §3.1 compares blockchain naming against:
fast (one round trip), convenient — and feudal.  The operator can
unilaterally refuse service, seize names, or be compromised, and the class
models each failure mode explicitly:

* :meth:`revoke_user` — the "feudal revocation" of §3.2 ("access to the
  platform can be unequivocally revoked");
* :meth:`seize_name` — authority reassigns a name with no owner signature;
* :meth:`compromise` — a CA key compromise: the attacker gains the same
  rebinding power (the CA-compromise weakness cited in §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Set

from repro.crypto.keys import KeyPair, Signature, verify
from repro.errors import (
    AccessDeniedError,
    NameNotFoundError,
    NameTakenError,
    NamingError,
    NotNameOwnerError,
    RemoteError,
)
from repro.naming.registry import NameRegistry, RegistrationReceipt, Resolution
from repro.net.node import NodeClass
from repro.net.transport import Network

__all__ = ["CentralizedPKI", "CompromisedAuthority"]


@dataclass
class _Entry:
    owner: str
    value: Any


class CentralizedPKI(NameRegistry):
    """A single-server certificate authority."""

    kind = "centralized"

    def __init__(self, network: Network, server_id: str = "ca"):
        self.network = network
        self.server_id = server_id
        self.server = (
            network.node(server_id)
            if network.has_node(server_id)
            else network.create_node(server_id, node_class=NodeClass.DATACENTER)
        )
        self._entries: Dict[str, _Entry] = {}
        self._banned: Set[str] = set()
        self._compromised = False
        self.server.register_handler("pki.register", self._on_register)
        self.server.register_handler("pki.resolve", self._on_resolve)
        self.server.register_handler("pki.update", self._on_update)

    # -- server handlers -----------------------------------------------------

    def _check_banned(self, public_key: str) -> None:
        if public_key in self._banned:
            raise AccessDeniedError(
                "the authority has revoked service for this identity"
            )

    def _verify(self, payload: dict) -> str:
        signature: Signature = payload["signature"]
        body = {k: v for k, v in payload.items() if k != "signature"}
        if not verify(signature, body):
            raise NamingError("request signature invalid")
        return signature.public_key

    def _on_register(self, node, payload: dict, sender: str) -> dict:
        public_key = self._verify(payload)
        self._check_banned(public_key)
        name = self._require_name(payload["name"])
        if name in self._entries:
            raise NameTakenError(f"name {name!r} already registered")
        self._entries[name] = _Entry(owner=public_key, value=payload["value"])
        return {"ok": True}

    def _on_resolve(self, node, payload: dict, sender: str) -> dict:
        name = self._require_name(payload["name"])
        entry = self._entries.get(name)
        if entry is None:
            raise NameNotFoundError(f"name {name!r} not registered")
        return {"owner": entry.owner, "value": entry.value}

    def _on_update(self, node, payload: dict, sender: str) -> dict:
        public_key = self._verify(payload)
        self._check_banned(public_key)
        name = self._require_name(payload["name"])
        entry = self._entries.get(name)
        if entry is None:
            raise NameNotFoundError(f"name {name!r} not registered")
        if entry.owner != public_key:
            raise NotNameOwnerError(f"{public_key[:12]} does not own {name!r}")
        entry.value = payload["value"]
        return {"ok": True}

    # -- client operations (generators) ------------------------------------------

    def register(
        self, keypair: KeyPair, name: str, value: Any, client: str = ""
    ) -> Generator:
        client_id = client or self._any_client()
        start = self.network.sim.now
        payload = {"name": name, "value": value}
        payload["signature"] = keypair.sign(payload)
        try:
            yield from self.network.rpc(client_id, self.server_id, "pki.register", payload)
        except RemoteError as exc:
            raise exc.remote_exception
        return RegistrationReceipt(
            name=name,
            owner_public_key=keypair.public_key,
            latency=self.network.sim.now - start,
            finalized_at=self.network.sim.now,
            detail="ca-ack",
        )

    def resolve(self, name: str, client: str = "") -> Generator:
        client_id = client or self._any_client()
        start = self.network.sim.now
        try:
            answer = yield from self.network.rpc(
                client_id, self.server_id, "pki.resolve", {"name": name}
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return Resolution(
            name=name,
            value=answer["value"],
            owner_public_key=answer["owner"],
            latency=self.network.sim.now - start,
            authoritative=True,
        )

    def update(self, keypair: KeyPair, name: str, value: Any, client: str = "") -> Generator:
        client_id = client or self._any_client()
        start = self.network.sim.now
        payload = {"name": name, "value": value}
        payload["signature"] = keypair.sign(payload)
        try:
            yield from self.network.rpc(client_id, self.server_id, "pki.update", payload)
        except RemoteError as exc:
            raise exc.remote_exception
        return RegistrationReceipt(
            name=name,
            owner_public_key=keypair.public_key,
            latency=self.network.sim.now - start,
            finalized_at=self.network.sim.now,
            detail="ca-update",
        )

    def _any_client(self) -> str:
        for node in self.network.nodes():
            if node.node_id != self.server_id:
                return node.node_id
        raise NamingError("no client node exists on the network")

    # -- feudal powers and failures ------------------------------------------------

    def revoke_user(self, public_key: str) -> None:
        """Operator bans an identity: future operations are refused."""
        self._banned.add(public_key)

    def seize_name(self, name: str, new_owner_public_key: str) -> None:
        """Operator reassigns a name with no owner consent — something no
        honest-majority blockchain participant can do unilaterally."""
        entry = self._entries.get(name)
        if entry is None:
            raise NameNotFoundError(f"name {name!r} not registered")
        entry.owner = new_owner_public_key

    def compromise(self) -> "CompromisedAuthority":
        """Model a CA key compromise: returns the attacker capability."""
        self._compromised = True
        return CompromisedAuthority(self)

    @property
    def names_registered(self) -> int:
        return len(self._entries)


class CompromisedAuthority:
    """What an attacker holding the CA key can do: rebind any name."""

    def __init__(self, pki: CentralizedPKI):
        self._pki = pki

    def fraudulently_rebind(self, name: str, attacker_public_key: str, value: Any) -> None:
        entry = self._pki._entries.get(name)
        if entry is None:
            raise NameNotFoundError(f"name {name!r} not registered")
        entry.owner = attacker_public_key
        entry.value = value
