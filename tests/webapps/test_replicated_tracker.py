"""Tests for the replicated tracker (SPOF elimination, §5.1) and DHT
bucket refresh maintenance."""

import pytest

from repro.dht import DhtConfig, build_overlay
from repro.errors import WebAppError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.webapps import HostlessSite, ReplicatedTracker, SiteSwarm


def make_env(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    tracker = ReplicatedTracker(network, streams, gossip_interval=2.0)
    swarm = SiteSwarm(network, tracker)
    return sim, streams, network, tracker, swarm


def make_bundle(seed="rt-site"):
    site = HostlessSite(seed)
    site.write_file("index.html", b"<h1>replicated discovery</h1>")
    return site.publish()


class TestReplicatedTracker:
    def test_announce_visible_on_every_replica_after_gossip(self):
        sim, streams, network, tracker, swarm = make_env()
        tracker.start_replication()

        def scenario():
            network.create_node("seeder")
            yield from tracker.announce("seeder", "site-x")
            yield 60.0  # gossip converges
            peers_per_replica = []
            for tracker_id in tracker.tracker_ids:
                peers = yield from network.rpc(
                    "seeder", tracker_id, "tracker.get_peers", {"site": "site-x"}
                )
                peers_per_replica.append(peers)
            tracker.stop_replication()
            return peers_per_replica

        views = sim.run_process(scenario(), until=2000.0)
        assert all(view == ["seeder"] for view in views)

    def test_discovery_survives_tracker_death(self):
        sim, streams, network, tracker, swarm = make_env(seed=2)
        tracker.start_replication()
        bundle = make_bundle()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            yield 60.0  # replicate the announcement
            # Kill the first tracker replica (the one clients try first).
            network.node(tracker.tracker_ids[0]).set_online(False, sim.now)
            fetched = yield from swarm.visit("visitor", address)
            tracker.stop_replication()
            return fetched

        fetched = sim.run_process(scenario(), until=2000.0)
        assert fetched.verify()

    def test_all_trackers_down_is_still_an_outage(self):
        sim, streams, network, tracker, swarm = make_env(seed=3)
        bundle = make_bundle("rt-site-2")
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            for tracker_id in tracker.tracker_ids:
                network.node(tracker_id).set_online(False, sim.now)
            try:
                yield from swarm.visit("visitor", address)
            except WebAppError:
                return "outage"

        assert sim.run_process(scenario(), until=2000.0) == "outage"

    def test_depart_propagates(self):
        sim, streams, network, tracker, swarm = make_env(seed=4)
        tracker.start_replication()

        def scenario():
            network.create_node("seeder")
            yield from tracker.announce("seeder", "site-y")
            yield 30.0
            yield from tracker.depart("seeder", "site-y")
            yield 60.0
            views = []
            for tracker_id in tracker.tracker_ids:
                peers = yield from network.rpc(
                    "seeder", tracker_id, "tracker.get_peers", {"site": "site-y"}
                )
                views.append(peers)
            tracker.stop_replication()
            return views

        views = sim.run_process(scenario(), until=2000.0)
        assert all(view == [] for view in views)

    def test_requires_tracker_ids(self):
        sim = Simulator()
        streams = RngStreams(5)
        network = Network(sim, streams)
        with pytest.raises(WebAppError):
            ReplicatedTracker(network, streams, tracker_ids=[])


class TestDhtRefresh:
    def test_refresh_evicts_dead_contacts(self):
        sim = Simulator()
        streams = RngStreams(6)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(20)], DhtConfig(k=4, alpha=2)
        )
        # Kill several nodes; n0's table still references some of them.
        dead = [f"n{i}" for i in range(10, 16)]
        for name in dead:
            network.node(name).set_online(False, sim.now)
        known_dead_before = [d for d in dead if overlay["n0"].table.knows(d)]
        assert known_dead_before  # otherwise the test proves nothing

        def scenario():
            buckets = yield from overlay["n0"].refresh_buckets(
                streams.stream("refresh")
            )
            return buckets

        refreshed = sim.run_process(scenario())
        assert refreshed > 0
        still_known = [d for d in known_dead_before if overlay["n0"].table.knows(d)]
        assert len(still_known) < len(known_dead_before)

    def test_periodic_refresh_loop_runs_and_stops(self):
        sim = Simulator()
        streams = RngStreams(7)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(10)], DhtConfig(k=4, alpha=2)
        )
        node = overlay["n0"]
        node.start_refreshing(streams.stream("refresh"), interval=50.0)
        sim.run(until=300.0)
        node.stop_refreshing()
        sim.run(until=400.0)  # loop exits; queue drains
        assert True  # reaching here without deadlock is the assertion
