"""Merkle trees with inclusion proofs.

Used by the blockchain (transaction commitment in block headers) and by the
storage proof schemes (challenge-response over file chunks).  Leaves are
hashed with a ``leaf:`` prefix and interior nodes with a ``node:`` prefix so
a leaf can never be replayed as an interior node (second-preimage guard).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CryptoError
from repro.crypto.hashing import sha256_hex

__all__ = ["MerkleTree", "MerkleProof", "merkle_root"]


def _leaf_hash(data: bytes) -> str:
    return sha256_hex(b"leaf:" + data)


def _node_hash(left: str, right: str) -> str:
    return sha256_hex(f"node:{left}:{right}".encode("utf-8"))


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: the leaf index and sibling hashes bottom-up.

    Each step is ``(sibling_hash, sibling_is_right)``.
    """

    leaf_index: int
    leaf_hash: str
    path: Tuple[Tuple[str, bool], ...]

    def verify(self, root: str) -> bool:
        """Recompute the root from the leaf up and compare."""
        current = self.leaf_hash
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = _node_hash(current, sibling)
            else:
                current = _node_hash(sibling, current)
        return current == root


class MerkleTree:
    """A static Merkle tree over a sequence of byte-string leaves."""

    def __init__(self, leaves: Sequence[bytes]):
        if not leaves:
            raise CryptoError("Merkle tree requires at least one leaf")
        self.leaf_count = len(leaves)
        self._levels: List[List[str]] = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            level = self._levels[-1]
            next_level = []
            for i in range(0, len(level), 2):
                left = level[i]
                # Odd node is paired with itself (Bitcoin-style padding).
                right = level[i + 1] if i + 1 < len(level) else level[i]
                next_level.append(_node_hash(left, right))
            self._levels.append(next_level)

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < self.leaf_count:
            raise CryptoError(
                f"leaf index {index} out of range [0, {self.leaf_count})"
            )
        path = []
        i = index
        for level in self._levels[:-1]:
            sibling_index = i + 1 if i % 2 == 0 else i - 1
            if sibling_index >= len(level):
                sibling_index = i  # odd node paired with itself
            sibling_is_right = sibling_index >= i
            path.append((level[sibling_index], sibling_is_right))
            i //= 2
        return MerkleProof(index, self._levels[0][index], tuple(path))

    def __len__(self) -> int:
        return self.leaf_count


def merkle_root(leaves: Sequence[bytes]) -> str:
    """Convenience: the root hash of a leaf sequence."""
    return MerkleTree(leaves).root
