#!/usr/bin/env python3
"""Decentralized naming end-to-end (§3.1).

1. Registers a name on a simulated proof-of-work blockchain and resolves
   it from the replicated ledger.
2. Registers the same name on a centralized PKI baseline and compares
   latency.
3. Demonstrates the feudal failure modes of the PKI (seizure, revocation).
4. Runs a 51% attack that steals the blockchain name — the residual
   weakness the paper flags.

Run:  python examples/decentralized_naming.py
"""

from repro.analysis import render_table
from repro.chain import (
    BlockchainNetwork,
    ConsensusParams,
    MajorityAttack,
    TxKind,
    make_transaction,
)
from repro.crypto import generate_keypair
from repro.naming import BlockchainNameRegistry, CentralizedPKI
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator

PARAMS = ConsensusParams(
    target_block_interval=10.0, retarget_interval=50, initial_difficulty=100.0
)


def blockchain_registration() -> float:
    print("--- blockchain naming (Namecoin/Blockstack style) ---")
    alice = generate_keypair("naming-example-alice")
    sim = Simulator()
    streams = RngStreams(1)
    chain_net = BlockchainNetwork(
        sim, streams, params=PARAMS, propagation_delay=0.5,
        premine={alice.public_key: 100.0},
    )
    chain_net.add_participant("miner-a", hashrate=10.0)
    chain_net.add_participant("miner-b", hashrate=10.0)
    chain_net.start()
    registry = BlockchainNameRegistry(
        chain_net, chain_net.participant("miner-a"), confirmations=6
    )

    def scenario():
        receipt = yield from registry.register(
            alice, "alice.id", {"pk": alice.public_key[:16], "zf": "deadbeef"}
        )
        resolution = yield from registry.resolve("alice.id")
        return receipt, resolution

    receipt, resolution = sim.run_process(scenario(), until=100_000.0)
    print(f"registered 'alice.id' with 6 confirmations in"
          f" {receipt.latency:.0f} simulated seconds")
    print(f"resolution is a LOCAL ledger read: latency"
          f" {resolution.latency:.3f}s, owner {resolution.owner_public_key[:16]}...")
    return receipt.latency


def pki_registration() -> float:
    print("\n--- centralized PKI baseline ---")
    alice = generate_keypair("naming-example-alice")
    mallory = generate_keypair("naming-example-mallory")
    sim = Simulator()
    network = Network(sim, RngStreams(2), latency=ConstantLatency(0.05))
    network.create_node("laptop")
    pki = CentralizedPKI(network)

    def scenario():
        receipt = yield from pki.register(alice, "alice.id", {"v": 1}, client="laptop")
        return receipt

    receipt = sim.run_process(scenario())
    print(f"registered 'alice.id' in {receipt.latency:.3f} seconds"
          " (one round trip)")

    # The feudal powers: the operator seizes the name unilaterally.
    pki.seize_name("alice.id", "the-authority")
    pki.revoke_user(alice.public_key)
    print("...but the authority just seized the name and banned alice —"
          " no signature required.")
    return receipt.latency


def majority_attack() -> None:
    print("\n--- 51% attack: stealing a blockchain name ---")
    alice = generate_keypair("naming-attack-alice")
    sim = Simulator()
    streams = RngStreams(3)
    chain_net = BlockchainNetwork(
        sim, streams, params=PARAMS, propagation_delay=0.5,
        premine={alice.public_key: 100.0},
    )
    honest = chain_net.add_participant("honest", hashrate=10.0)
    attacker = chain_net.add_participant("attacker", hashrate=30.0)
    chain_net.start()

    victim_tx = make_transaction(
        alice, TxKind.NAME_REGISTER, {"name": "victim.id", "value": "v"}, 0,
        fee=0.5,
    )
    chain_net.submit_transaction(victim_tx, origin="honest")
    sim.run(until=300.0)
    print(f"victim.id registered at height"
          f" {honest.chain.find_transaction(victim_tx.txid)}"
          f" (chain height {honest.chain.height})")

    steal = make_transaction(
        attacker.keypair, TxKind.NAME_REGISTER,
        {"name": "victim.id", "value": "stolen"}, 0, fee=0.5,
    )
    outcome = MajorityAttack(chain_net, attacker).run(
        victim_tx.txid, reference=honest, horizon=4000.0,
        release_lead=2, conflicting_tx=steal,
    )
    entry = honest.chain.state_at().live_name("victim.id", honest.chain.height)
    print(f"attack (75% hashrate): succeeded={outcome.succeeded},"
          f" victim tx erased={outcome.victim_tx_erased}")
    owner = "ATTACKER" if entry and entry.owner == attacker.keypair.public_key else "victim"
    print(f"consensus owner of victim.id is now: {owner}")


def main() -> None:
    chain_latency = blockchain_registration()
    pki_latency = pki_registration()
    print("\n--- comparison ---")
    print(render_table([
        {"backend": "blockchain (6 conf)", "latency_s": f"{chain_latency:.1f}",
         "can_be_seized": "no (honest majority)", "decentralized": "yes"},
        {"backend": "centralized PKI", "latency_s": f"{pki_latency:.3f}",
         "can_be_seized": "yes", "decentralized": "no"},
    ]))
    majority_attack()
    print("\nZooko's triangle: the blockchain gives all three corners, but"
          "\nonly while no party controls a hashrate majority.")


if __name__ == "__main__":
    main()
