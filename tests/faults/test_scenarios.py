"""Golden chaos regressions: pinned scenario outcomes under fixed faults.

Every number here is a seed-pinned behavioral golden.  If a change to the
simulator, transport, or fault injector shifts one of these, that change
altered observable chaos behavior and the golden must be re-derived
deliberately (run the matching ``python -m repro chaos`` command and
inspect the diff) — never adjusted to make the suite pass.
"""

import pytest

from repro.faults import SCENARIOS, preset_plan, run_chaos


def run(experiment, preset, seed):
    return run_chaos(experiment, preset_plan(preset), seed)


class TestE4ServerKill:
    """Federation survives one permanent and one transient server loss."""

    @pytest.fixture(scope="class")
    def report(self):
        return run("E4", "server-kill", seed=7)

    def test_availability_pinned(self, report):
        assert report["result"]["availability"] == 1.0
        assert report["result"]["reads_ok"] == 12
        assert report["result"]["reads_failed"] == 0
        assert report["result"]["posted"] == 6

    def test_flow_accounting_pinned(self, report):
        assert report["flow"] == {
            "sent": 907, "delivered": 766, "dropped": 141, "in_flight": 0,
        }

    def test_faults_and_invariants(self, report):
        assert report["faults"] == {"injected": 2, "healed": 1}
        assert report["invariants"]["violated"] == 0
        assert report["violations"] == []


class TestChaosE4P:
    """Partial federation re-converges after partitions for every
    conflict strategy (the tentpole acceptance matrix)."""

    @pytest.fixture(scope="class")
    def report(self):
        return run("E4P", "hub-partition", seed=7)

    def test_hub_partition_golden(self, report):
        assert report["result"]["strategy"] == "lww"
        assert report["result"]["posted"] == 6
        assert report["result"]["topic_writes"] == 11
        assert report["result"]["reads_ok"] == 6
        assert report["result"]["reads_failed"] == 0
        assert report["result"]["availability"] == 1.0
        assert report["result"]["final_topic"] == "north-141"

    def test_hub_partition_converges(self, report):
        assert report["result"]["divergent_keys"] == 0
        assert report["result"]["conflicts_pending"] == 0
        assert report["invariants"]["violated"] == 0
        assert report["violations"] == []

    @pytest.mark.parametrize("preset", [
        "hub-partition", "registration-partition", "churn-storm",
    ])
    @pytest.mark.parametrize("strategy", ["lww", "trust_weighted", "manual"])
    def test_every_strategy_converges_after_heal(self, preset, strategy):
        from repro.faults.scenarios import run_chaos_e4p

        report = run_chaos_e4p(preset_plan(preset), seed=7, strategy=strategy)
        assert report["result"]["strategy"] == strategy
        assert report["result"]["divergent_keys"] == 0
        assert report["result"]["conflicts_pending"] == 0
        assert report["violations"] == []
        # Availability holds through the faults, not just convergence.
        assert report["result"]["availability"] == 1.0

    def test_partition_actually_bit(self, report):
        # The golden is only meaningful if the plan injected faults that
        # the scenario then healed from.
        assert report["faults"]["injected"] == 2
        assert report["faults"]["healed"] == 2

    def test_e4p_deterministic(self):
        first = run("E4P", "hub-partition", seed=7)
        second = run("E4P", "hub-partition", seed=7)
        assert first == second


class TestE5ChurnStorm:
    """Device pings through drops, latency spikes, corruption, crashes."""

    @pytest.fixture(scope="class")
    def report(self):
        return run("E5", "churn-storm", seed=3)

    def test_ping_success_pinned(self, report):
        assert report["result"]["ping_attempts"] == 415
        assert report["result"]["ping_ok"] == 385
        assert report["result"]["ping_success_rate"] == 0.927710843373494

    def test_clean_invariants(self, report):
        assert report["violations"] == []
        assert report["flow"]["in_flight"] == 0


class TestE6RegistrationPartition:
    """Registration retries across a healed CA partition."""

    @pytest.fixture(scope="class")
    def report(self):
        return run("E6", "registration-partition", seed=2)

    def test_registration_latency_pinned(self, report):
        assert report["result"]["registered"] is True
        assert report["result"]["attempts"] == 4
        assert report["result"]["latency"] == pytest.approx(90.1, abs=0.01)

    def test_clean_invariants(self, report):
        assert report["violations"] == []

    def test_unhealed_partition_trips_liveness(self):
        report = run("E6", "registration-partition-noheal", seed=2)
        assert report["result"]["registered"] is False
        assert report["result"]["attempts"] == 7
        names = [v["name"] for v in report["violations"]]
        assert names == ["registration_completes"]
        assert report["violations"][0]["at"] == 150.0


class TestE9DeviceFlap:
    """Replicated blob storage heals through rolling provider crashes."""

    @pytest.fixture(scope="class")
    def report(self):
        return run("E9", "device-flap", seed=2)

    def test_repair_and_availability_pinned(self, report):
        assert report["result"]["repair_bytes"] == 12288
        assert report["result"]["probe_attempts"] == 11
        assert report["result"]["probe_ok"] == 11
        assert report["result"]["availability"] == 1.0

    def test_clean_invariants(self, report):
        assert report["violations"] == []


class TestCensorGoldens:
    """Seed-1 goldens for the censorship scenarios: reachability,
    time-to-reblock, and the censor cost model (the PR-10 acceptance
    pins)."""

    @pytest.fixture(scope="class")
    def e5c_probing(self):
        return run("E5C", "border-block-probing", seed=1)

    def test_static_blocklist_relays_keep_full_reachability(self):
        report = run("E4C", "border-block", seed=1)
        assert report["result"]["reachability"] == 1.0
        assert report["result"]["relays_reblocked"] == 0
        # Every hard kill under the static plan hit unfingerprinted
        # direct traffic: pure collateral damage.
        assert report["result"]["censor_cost"] == {
            "blocked_flows": 39, "collateral_flows": 39,
            "degraded_drops": 0, "relays_reblocked": 0,
        }
        assert report["invariants"]["violated"] == 0

    def test_probing_campaign_reblocks_every_relay(self, e5c_probing):
        result = e5c_probing["result"]
        assert result["reachability"] == 0.85
        assert result["relays_detected"] == 4
        assert result["relays_reblocked"] == 4
        assert result["first_detection_at"] == pytest.approx(65.550045056)
        assert result["first_reblock_at"] == pytest.approx(80.550045056)
        assert result["censor_cost"] == {
            "blocked_flows": 88, "collateral_flows": 24,
            "degraded_drops": 23, "relays_reblocked": 4,
        }

    def test_probing_reachability_collapses_then_recovers(self, e5c_probing):
        timeline = e5c_probing["result"]["timeline"]
        assert timeline[0]["ok"] == timeline[0]["attempts"]  # pre-campaign
        mid = [b for b in timeline if b["t"] in (100.0, 200.0)]
        assert all(b["ok"] == 0 for b in mid)  # all relays reblocked
        assert timeline[-1]["ok"] == timeline[-1]["attempts"]  # healed

    def test_e9c_partial_retrievals_count_as_failures(self):
        report = run("E9C", "border-block-probing", seed=1)
        result = report["result"]
        assert result["attempts"] == 34
        assert result["ok"] == 26
        assert result["relays_reblocked"] == 4
        assert result["censor_cost"]["blocked_flows"] == 72
        assert report["invariants"]["violated"] == 0

    def test_border_flap_overlapping_campaigns(self):
        # Two overlapping campaigns: one replacement, one real heal.
        report = run("E5C", "border-flap", seed=1)
        assert report["faults"] == {"injected": 2, "healed": 1}
        assert report["result"]["relays_reblocked"] == 4
        assert report["invariants"]["violated"] == 0

    def test_censor_reports_are_deterministic(self):
        first = run("E4C", "border-block-probing", seed=1)
        second = run("E4C", "border-block-probing", seed=1)
        assert first == second


class TestScenarioRegistry:
    def test_registry_contents(self):
        assert sorted(SCENARIOS) == [
            "E4", "E4C", "E4P", "E5", "E5C", "E6", "E9", "E9C",
        ]

    def test_unknown_experiment_rejected(self):
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            run_chaos("E1", preset_plan("quiet"), seed=1)

    def test_reports_are_deterministic(self):
        first = run("E6", "registration-partition", seed=2)
        second = run("E6", "registration-partition", seed=2)
        assert first == second
