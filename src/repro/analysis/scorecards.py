"""Attach measured experiment results to the paper's property scorecards.

The paper's §2.1/§3.2 property discussion is qualitative; this module
replaces the qualitative priors with measurements from the E4/E5 drivers,
producing scorecards whose ``evidence`` fields point at experiment ids —
the "paper claim, now measured" artifact tests and benches assert on.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Dict, List, Optional

from repro.analysis.experiments import (
    run_federation_availability,
    run_social_tradeoff,
)
from repro.core.properties import PAPER_SCORECARDS, Scorecard

__all__ = ["measured_scorecards"]

_FAMILY_TO_CARD = {
    "centralized": "centralized",
    "federated_single_home": "federated_single_home",
    "federated_replicated": "federated_replicated",
    "federated_replicated_e2e": "federated_replicated",
    "socially_aware_p2p": "socially_aware_p2p",
}


def measured_scorecards(seed: int = 1) -> Dict[str, Scorecard]:
    """Scorecards with measured connectedness and privacy scores.

    * ``connectedness`` <- E5 read availability under device churn,
      refined by E4 server-failure availability for the federated models;
    * ``privacy`` <- 1 - operator exposure from the E5 audits.

    Scores not covered by an experiment keep their qualitative prior
    (evidence ``paper:qualitative``).
    """
    cards = {name: deepcopy(card) for name, card in PAPER_SCORECARDS.items()}

    tradeoff_rows = run_social_tradeoff(seed=seed)
    for row in tradeoff_rows:
        card_name = _FAMILY_TO_CARD.get(str(row["system"]))
        if card_name is None:
            continue
        card = cards[card_name]
        card.attach_measurement(
            "connectedness", float(row["availability"]), "E5"
        )
        privacy = 1.0 - float(row["operator_exposure"])
        # The E2E variant is the federated_replicated family's best
        # privacy configuration; keep the max across its variants.
        current = card.score("privacy")
        if (
            card.evidence.get("privacy") != "measured:E5"
            or current is None
            or privacy > current
        ):
            card.attach_measurement("privacy", privacy, "E5")

    federation_rows = run_federation_availability(seed=seed)
    by_model = {row["model"]: row for row in federation_rows}
    cards["federated_single_home"].attach_measurement(
        "connectedness",
        float(by_model["single_home"]["read_availability"]),
        "E4",
    )
    cards["federated_replicated"].attach_measurement(
        "connectedness",
        float(by_model["replicated_failover"]["read_availability"]),
        "E4",
    )
    return cards
