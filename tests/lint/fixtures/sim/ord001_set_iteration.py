"""Fixture: ORD001 — iterating a set inside a simulated package."""


def schedule_batches(node_ids):
    peers = {node_id for node_id in node_ids}
    batches = []
    for peer in peers:
        batches.append(peer)
    return batches
