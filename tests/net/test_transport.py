"""Tests for nodes, latency models, and the RPC transport."""

import pytest

from repro.errors import (
    NetworkError,
    NodeOfflineError,
    RemoteError,
    RpcTimeoutError,
)
from repro.net import (
    ConstantLatency,
    LogNormalLatency,
    Network,
    Node,
    NodeClass,
    PlanetLatency,
    UniformLatency,
)
from repro.sim import RngStreams, Simulator


@pytest.fixture
def net():
    sim = Simulator()
    network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
    return sim, network


class TestNodeRegistry:
    def test_create_and_lookup(self, net):
        _, network = net
        node = network.create_node("a")
        assert network.node("a") is node
        assert network.has_node("a")

    def test_duplicate_rejected(self, net):
        _, network = net
        network.create_node("a")
        with pytest.raises(NetworkError):
            network.create_node("a")

    def test_unknown_node_raises(self, net):
        _, network = net
        with pytest.raises(NetworkError):
            network.node("ghost")

    def test_unknown_node_class_rejected(self):
        with pytest.raises(NetworkError):
            Node("x", node_class="mainframe")

    def test_online_filter(self, net):
        _, network = net
        a = network.create_node("a")
        network.create_node("b")
        a.set_online(False, 0.0)
        assert [n.node_id for n in network.online_nodes()] == ["b"]


class TestNodeUptime:
    def test_uptime_accounting(self):
        node = Node("x")
        node.set_online(False, 10.0)
        node.set_online(True, 15.0)
        assert node.uptime_fraction(20.0) == pytest.approx(15.0 / 20.0)

    def test_idempotent_state_set(self):
        node = Node("x")
        node.set_online(True, 5.0)  # already online: no-op
        assert node.uptime_fraction(10.0) == 1.0


class TestLatencyModels:
    def test_constant(self):
        a, b = Node("a"), Node("b")
        model = ConstantLatency(0.1)
        assert model.delay(a, b, 0) == pytest.approx(0.1)

    def test_serialization_adds_to_delay(self):
        a = Node("a", upstream_bps=1e6)  # 1 Mbps up
        b = Node("b", downstream_bps=1e9)
        model = ConstantLatency(0.0)
        # 125000 bytes = 1 Mbit => 1 second at 1 Mbps.
        assert model.delay(a, b, 125_000) == pytest.approx(1.0)

    def test_bottleneck_is_slower_link(self):
        a = Node("a", upstream_bps=1e9)
        b = Node("b", downstream_bps=1e6)
        assert ConstantLatency(0.0).delay(a, b, 125_000) == pytest.approx(1.0)

    def test_uniform_within_bounds(self):
        streams = RngStreams(2)
        model = UniformLatency(streams, 0.01, 0.02)
        a, b = Node("a"), Node("b")
        for _ in range(100):
            assert 0.01 <= model.propagation_delay(a, b) <= 0.02

    def test_lognormal_positive(self):
        model = LogNormalLatency(RngStreams(3), median=0.05)
        a, b = Node("a"), Node("b")
        assert all(model.propagation_delay(a, b) > 0 for _ in range(100))

    def test_planet_self_delay_zero_and_symmetric(self):
        model = PlanetLatency(RngStreams(4))
        a, b = Node("a"), Node("b")
        assert model.propagation_delay(a, a) == 0.0
        assert model.propagation_delay(a, b) == pytest.approx(
            model.propagation_delay(b, a)
        )

    def test_planet_placement_affects_delay(self):
        model = PlanetLatency(RngStreams(5), diameter_seconds=0.3)
        a, b, c = Node("a"), Node("b"), Node("c")
        model.place(a, 0.0, 0.0)
        model.place(b, 0.01, 0.0)
        model.place(c, 1.0, 1.0)
        assert model.propagation_delay(a, b) < model.propagation_delay(a, c)

    def test_negative_size_rejected(self):
        with pytest.raises(NetworkError):
            ConstantLatency(0.1).delay(Node("a"), Node("b"), -1)


class TestSend:
    def test_one_way_delivery(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("ping", lambda node, payload, sender: received.append((payload, sender, sim.now)))
        network.send("a", "b", "ping", {"n": 1})
        sim.run()
        assert len(received) == 1
        payload, sender, when = received[0]
        assert (payload, sender) == ({"n": 1}, "a")
        assert when == pytest.approx(0.05, abs=1e-3)

    def test_offline_destination_loses_message(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("ping", lambda *args: received.append(1))
        b.set_online(False, 0.0)
        network.send("a", "b", "ping")
        sim.run()
        assert received == []
        assert network.monitor.counters.get("messages_to_offline") == 1

    def test_node_going_offline_mid_flight_loses_message(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("ping", lambda *args: received.append(1))
        network.send("a", "b", "ping")
        sim.schedule(0.01, b.set_online, False, 0.01)  # before 0.05 arrival
        sim.run()
        assert received == []

    def test_missing_handler_counted_not_fatal(self, net):
        sim, network = net
        network.create_node("a")
        network.create_node("b")
        network.send("a", "b", "nosuch")
        sim.run()  # one-way failures must not crash the simulation
        assert network.monitor.counters.get("handler_errors") == 1

    def test_broadcast_skips_self(self, net):
        sim, network = net
        for node_id in ("a", "b", "c"):
            network.create_node(node_id)
        received = []
        for node_id in ("b", "c"):
            network.node(node_id).register_handler(
                "m", lambda node, p, s: received.append(node.node_id)
            )
        count = network.broadcast("a", ["a", "b", "c"], "m")
        sim.run()
        assert count == 2
        assert sorted(received) == ["b", "c"]

    def test_loss_rate_drops_messages(self):
        sim = Simulator()
        network = Network(sim, RngStreams(9), loss_rate=0.5)
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("m", lambda *args: received.append(1))
        for _ in range(200):
            network.send("a", "b", "m")
        sim.run()
        assert 60 < len(received) < 140  # ~100

    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(NetworkError):
            Network(Simulator(), RngStreams(1), loss_rate=1.0)


class TestRpc:
    def test_request_response_roundtrip(self, net):
        sim, network = net
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("add", lambda node, p, s: p["x"] + p["y"])

        def client():
            result = yield from network.rpc("client", "server", "add", {"x": 2, "y": 3})
            return (result, sim.now)

        result, elapsed = sim.run_process(client())
        assert result == 5
        assert elapsed == pytest.approx(0.10, abs=1e-3)  # two 50 ms hops

    def test_rpc_handler_as_process(self, net):
        sim, network = net
        network.create_node("client")
        server = network.create_node("server")

        def slow_handler(node, payload, sender):
            yield 1.0  # simulated server work
            return "done"

        server.register_handler("work", slow_handler)

        def client():
            result = yield from network.rpc("client", "server", "work")
            return (result, sim.now)

        result, elapsed = sim.run_process(client())
        assert result == "done"
        assert elapsed == pytest.approx(1.10, abs=1e-3)

    def test_rpc_timeout_on_offline_server(self, net):
        sim, network = net
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda *a: 1)
        server.set_online(False, 0.0)

        def client():
            try:
                yield from network.rpc("client", "server", "m", timeout=2.0)
            except RpcTimeoutError:
                return "timeout"

        assert sim.run_process(client()) == "timeout"
        assert sim.now >= 2.0

    def test_rpc_remote_error_propagates(self, net):
        sim, network = net
        network.create_node("client")
        server = network.create_node("server")

        def failing(node, payload, sender):
            raise NodeOfflineError("backend down")

        server.register_handler("m", failing)

        def client():
            try:
                yield from network.rpc("client", "server", "m")
            except RemoteError as exc:
                return type(exc.remote_exception).__name__

        assert sim.run_process(client()) == "NodeOfflineError"

    def test_rpc_nested_rpc_in_handler(self, net):
        sim, network = net
        network.create_node("client")
        middle = network.create_node("middle")
        backend = network.create_node("backend")
        backend.register_handler("data", lambda node, p, s: "payload")

        def middle_handler(node, payload, sender):
            result = yield from network.rpc("middle", "backend", "data")
            return f"via-middle:{result}"

        middle.register_handler("fetch", middle_handler)

        def client():
            return (yield from network.rpc("client", "middle", "fetch"))

        assert sim.run_process(client()) == "via-middle:payload"

    def test_rpc_bytes_accounted(self, net):
        sim, network = net
        network.create_node("client")
        server = network.create_node("server")
        server.register_handler("m", lambda *a: "ok")

        def client():
            yield from network.rpc("client", "server", "m", size_bytes=1000, response_bytes=2000)

        sim.run_process(client())
        assert network.bytes_sent("client") == 1000
        assert network.bytes_sent("server") == 2000


class TestPartitions:
    def test_cross_partition_send_lost(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("m", lambda *args: received.append(1))
        network.partition([["a"], ["b"]])
        network.send("a", "b", "m")
        sim.run()
        assert received == []
        assert network.monitor.counters.get("messages_partitioned") == 1

    def test_same_partition_delivers(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        network.create_node("c")
        received = []
        b.register_handler("m", lambda *args: received.append(1))
        network.partition([["a", "b"], ["c"]])
        network.send("a", "b", "m")
        sim.run()
        assert received == [1]

    def test_unlisted_nodes_share_implicit_group(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        network.create_node("island")
        received = []
        b.register_handler("m", lambda *args: received.append(1))
        network.partition([["island"]])
        network.send("a", "b", "m")  # both implicit: still connected
        sim.run()
        assert received == [1]

    def test_rpc_times_out_across_partition(self, net):
        sim, network = net
        network.create_node("a")
        server = network.create_node("b")
        server.register_handler("m", lambda *args: "pong")
        network.partition([["a"], ["b"]])

        def client():
            try:
                yield from network.rpc("a", "b", "m", timeout=2.0)
            except RpcTimeoutError:
                return "partitioned"

        assert sim.run_process(client()) == "partitioned"

    def test_heal_restores_connectivity(self, net):
        sim, network = net
        network.create_node("a")
        server = network.create_node("b")
        server.register_handler("m", lambda *args: "pong")
        network.partition([["a"], ["b"]])
        network.heal()

        def client():
            return (yield from network.rpc("a", "b", "m"))

        assert sim.run_process(client()) == "pong"
        assert not network.partitioned

    def test_duplicate_group_membership_rejected(self, net):
        sim, network = net
        network.create_node("a")
        with pytest.raises(NetworkError):
            network.partition([["a"], ["a"]])

    def test_mid_flight_partition_loses_message(self, net):
        sim, network = net
        network.create_node("a")
        b = network.create_node("b")
        received = []
        b.register_handler("m", lambda *args: received.append(1))
        network.send("a", "b", "m")  # in flight for 50 ms
        sim.schedule(0.01, network.partition, [["a"], ["b"]])
        sim.run()
        assert received == []


class TestNodeMechanics:
    def test_handler_replacement(self):
        node = Node("n")
        node.register_handler("m", lambda n, p, s: "first")
        node.register_handler("m", lambda n, p, s: "second")
        assert node.dispatch("m", None, "peer") == "second"

    def test_has_handler(self):
        node = Node("n")
        assert not node.has_handler("m")
        node.register_handler("m", lambda n, p, s: None)
        assert node.has_handler("m")

    def test_dispatch_unknown_method(self):
        node = Node("n")
        with pytest.raises(NetworkError):
            node.dispatch("ghost", None, "peer")

    def test_sessions_counted(self):
        node = Node("n")
        node.set_online(False, 1.0)
        node.set_online(True, 2.0)
        node.set_online(False, 3.0)
        node.set_online(True, 4.0)
        assert node.sessions == 2


class TestRpcLossPaths:
    def test_response_can_be_lost(self):
        # With 50% loss, some RPCs lose the *response* (request delivered,
        # handler ran, answer dropped) — the caller still times out.
        sim = Simulator()
        network = Network(
            sim, RngStreams(51), latency=ConstantLatency(0.01), loss_rate=0.5
        )
        network.create_node("client")
        server = network.create_node("server")
        calls = {"handled": 0}

        def handler(node, payload, sender):
            calls["handled"] += 1
            return "pong"

        server.register_handler("m", handler)
        outcomes = {"ok": 0, "timeout": 0}

        def client():
            for _ in range(60):
                try:
                    yield from network.rpc("client", "server", "m", timeout=1.0)
                    outcomes["ok"] += 1
                except RpcTimeoutError:
                    outcomes["timeout"] += 1

        sim.run_process(client())
        assert outcomes["timeout"] > 0
        assert outcomes["ok"] > 0
        # Some handled requests produced lost responses.
        assert calls["handled"] > outcomes["ok"]

    def test_server_dying_before_response_times_out(self):
        sim = Simulator()
        network = Network(sim, RngStreams(52), latency=ConstantLatency(0.01))
        network.create_node("client")
        server = network.create_node("server")

        def slow(node, payload, sender):
            yield 5.0  # dies mid-work
            return "never sent"

        server.register_handler("m", slow)
        sim.schedule(1.0, server.set_online, False, 1.0)

        def client():
            try:
                yield from network.rpc("client", "server", "m", timeout=10.0)
            except RpcTimeoutError:
                return "lost"

        assert sim.run_process(client()) == "lost"
