#!/usr/bin/env python3
"""Federated social networking (§3.2): three designs on one workload.

Builds the same 12-user community as (a) a centralized platform, (b) an
OStatus-style single-home federation, and (c) a Matrix-style replicated
federation with end-to-end encryption — then kills a server and audits
who can still read, and what each operator learned.

Run:  python examples/federated_social.py
"""

from repro.analysis import render_table
from repro.groupcomm import (
    CentralizedPlatform,
    RatchetSession,
    ReplicatedFederation,
    SingleHomeFederation,
    audit_centralized,
    audit_replicated_federation,
    exposure_score,
)
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator

USERS = [f"user{i}" for i in range(12)]
SERVERS = ["srv.alpha", "srv.beta", "srv.gamma"]


def centralized_run():
    sim = Simulator()
    network = Network(sim, RngStreams(1), latency=ConstantLatency(0.02))
    platform = CentralizedPlatform(network)
    for user in USERS:
        network.create_node(user)
    platform.create_room("town-square", USERS)

    def scenario():
        for i, user in enumerate(USERS[:6]):
            yield from platform.post(user, "town-square", f"hot take #{i}")
        # The operator bans a user mid-conversation.
        platform.ban("user0")
        try:
            yield from platform.fetch("user0", "town-square")
            banned_locked_out = False
        except Exception:
            banned_locked_out = True
        readers = 0
        for user in USERS[1:]:
            messages = yield from platform.fetch(user, "town-square")
            readers += bool(messages)
        return banned_locked_out, readers

    banned_locked_out, readers = sim.run_process(scenario())
    report = audit_centralized(platform, "town-square")
    return {
        "design": "centralized",
        "readers_after_incident": f"{readers}/11",
        "banned_user_locked_out": banned_locked_out,
        "operator_exposure": f"{exposure_score(report):.2f}",
    }


def single_home_run():
    sim = Simulator()
    streams = RngStreams(2)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    federation = SingleHomeFederation(network, SERVERS)
    for i, user in enumerate(USERS):
        federation.add_user(user, home=SERVERS[i % len(SERVERS)])
    federation.create_room("town-square", USERS)

    def scenario():
        for i, user in enumerate(USERS[:6]):
            yield from federation.post(user, "town-square", f"hot take #{i}")
        yield 10.0  # let pushes land
        network.node("srv.alpha").set_online(False, sim.now)  # instance dies
        readers = 0
        for user in USERS:
            try:
                messages = yield from federation.fetch(user, "town-square")
                readers += bool(messages)
            except Exception:
                pass
        return readers

    readers = sim.run_process(scenario())
    return {
        "design": "federated single-home (OStatus)",
        "readers_after_incident": f"{readers}/12",
        "banned_user_locked_out": "n/a (no global operator)",
        "operator_exposure": "1.00 (each home sees its copy)",
    }


def replicated_run():
    sim = Simulator()
    streams = RngStreams(3)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    federation = ReplicatedFederation(
        network, SERVERS, streams, gossip_interval=2.0, allow_failover=True
    )
    for i, user in enumerate(USERS):
        federation.add_user(user, home=SERVERS[i % len(SERVERS)])
    federation.create_room("town-square", USERS)
    federation.start_replication()

    # End-to-end encryption: the room shares a ratchet session.
    room_session = RatchetSession("town-square-shared-secret")

    def scenario():
        for i, user in enumerate(USERS[:6]):
            ciphertext = room_session.encrypt(f"hot take #{i}")
            yield from federation.post(
                user, "town-square", ciphertext.sealed, encrypted=True
            )
        yield 60.0  # replication converges
        network.node("srv.alpha").set_online(False, sim.now)
        readers = 0
        for user in USERS:
            try:
                messages = yield from federation.fetch(user, "town-square")
                readers += bool(messages)
            except Exception:
                pass
        federation.stop_replication()
        return readers

    readers = sim.run_process(scenario(), until=50_000.0)
    report = audit_replicated_federation(federation, "town-square")
    return {
        "design": "federated replicated + E2E (Matrix)",
        "readers_after_incident": f"{readers}/12",
        "banned_user_locked_out": "n/a (no global operator)",
        "operator_exposure": f"{exposure_score(report):.2f} (metadata only)",
    }


def main() -> None:
    rows = [centralized_run(), single_home_run(), replicated_run()]
    print(render_table(rows))
    print(
        "\nReading: the centralized platform keeps everyone connected but"
        "\nsees everything and can ban anyone; the single-home federation"
        "\nloses a third of its users when one instance dies; the"
        "\nreplicated+E2E federation keeps everyone reading after the same"
        "\nfailure while its operators see only metadata — §3.2's landscape"
        "\nin one table."
    )


if __name__ == "__main__":
    main()
