"""Tests for block validation, fork choice, and reorgs."""

import pytest

from repro.chain import (
    ChainState,
    ConsensusParams,
    LedgerRules,
    TxKind,
    make_transaction,
    required_difficulty,
)
from repro.chain.block import make_block, make_genesis
from repro.chain.transaction import make_coinbase
from repro.crypto import generate_keypair
from repro.errors import InvalidBlockError


def build_block(chain, parent, miner="m", timestamp=None, txs=(), reward=None):
    rules = chain.rules
    cb = make_coinbase(
        f"{miner}-account",
        rules.block_reward if reward is None else reward,
        parent.height + 1,
    )
    return make_block(
        parent=parent,
        timestamp=parent.timestamp + 600 if timestamp is None else timestamp,
        miner=miner,
        difficulty=1.0,
        transactions=[cb] + list(txs),
    )


@pytest.fixture
def chain():
    return ChainState()


class TestBasicGrowth:
    def test_genesis_is_tip(self, chain):
        assert chain.tip.is_genesis
        assert chain.height == 0

    def test_add_block_advances_tip(self, chain):
        b1 = build_block(chain, chain.genesis)
        assert chain.add_block(b1) is True
        assert chain.tip.block_id == b1.block_id
        assert chain.height == 1

    def test_duplicate_block_idempotent(self, chain):
        b1 = build_block(chain, chain.genesis)
        chain.add_block(b1)
        assert chain.add_block(b1) is False

    def test_coinbase_credits_state(self, chain):
        b1 = build_block(chain, chain.genesis, miner="alice")
        chain.add_block(b1)
        assert chain.state_at().balance("alice-account") == pytest.approx(
            chain.rules.block_reward
        )

    def test_orphan_rejected(self, chain):
        b1 = build_block(chain, chain.genesis)
        b2 = build_block(chain, b1)
        with pytest.raises(InvalidBlockError):
            chain.add_block(b2)  # b1 never added

    def test_wrong_height_rejected(self, chain):
        b1 = build_block(chain, chain.genesis)
        chain.add_block(b1)
        bad = make_block(
            parent=b1, timestamp=b1.timestamp + 1, miner="m",
            difficulty=1.0, transactions=[make_coinbase("m", 50.0, 99)],
        )
        object.__setattr__(bad, "height", 99)
        with pytest.raises(InvalidBlockError):
            chain.add_block(bad)

    def test_timestamp_before_parent_rejected(self, chain):
        b1 = build_block(chain, chain.genesis, timestamp=100.0)
        chain.add_block(b1)
        b2 = build_block(chain, b1, timestamp=50.0)
        with pytest.raises(InvalidBlockError):
            chain.add_block(b2)

    def test_excess_coinbase_rejected(self, chain):
        bad = build_block(chain, chain.genesis, reward=chain.rules.block_reward * 2)
        with pytest.raises(InvalidBlockError):
            chain.add_block(bad)

    def test_main_chain_listing(self, chain):
        b1 = build_block(chain, chain.genesis)
        chain.add_block(b1)
        b2 = build_block(chain, b1)
        chain.add_block(b2)
        ids = [b.block_id for b in chain.main_chain()]
        assert ids == [chain.genesis.block_id, b1.block_id, b2.block_id]

    def test_block_at_height(self, chain):
        b1 = build_block(chain, chain.genesis)
        chain.add_block(b1)
        assert chain.block_at_height(1).block_id == b1.block_id
        assert chain.block_at_height(5) is None


class TestTransactionsInBlocks:
    def test_funded_payment_applies(self):
        alice = generate_keypair("cs-alice")
        chain = ChainState(premine={alice.public_key: 100.0})
        t = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 10.0}, 0)
        b1 = build_block(chain, chain.genesis, txs=[t])
        chain.add_block(b1)
        assert chain.state_at().balance("bob") == pytest.approx(10.0)

    def test_invalid_tx_invalidates_block(self):
        alice = generate_keypair("cs-alice2")
        chain = ChainState()  # no premine: overspend
        t = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 10.0}, 0)
        b1 = build_block(chain, chain.genesis, txs=[t])
        with pytest.raises(InvalidBlockError):
            chain.add_block(b1)
        assert chain.rejected_blocks == 1

    def test_find_transaction(self):
        alice = generate_keypair("cs-alice3")
        chain = ChainState(premine={alice.public_key: 100.0})
        t = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 1.0}, 0)
        b1 = build_block(chain, chain.genesis, txs=[t])
        chain.add_block(b1)
        assert chain.find_transaction(t.txid) == 1
        assert chain.find_transaction("0" * 64) is None


class TestForksAndReorgs:
    def test_equal_work_fork_keeps_first_tip(self, chain):
        b1a = build_block(chain, chain.genesis, miner="a")
        b1b = build_block(chain, chain.genesis, miner="b")
        chain.add_block(b1a)
        tip_before = chain.tip.block_id
        chain.add_block(b1b)
        # Work equal: tip must not flap arbitrarily.
        expected = min(b1a.block_id, b1b.block_id)
        if tip_before == expected:
            assert chain.tip.block_id == tip_before
        else:
            assert chain.tip.block_id == expected

    def test_heavier_branch_wins(self, chain):
        b1a = build_block(chain, chain.genesis, miner="a")
        chain.add_block(b1a)
        b1b = build_block(chain, chain.genesis, miner="b")
        chain.add_block(b1b)
        # Extend branch b to make it strictly heavier.
        b2b = build_block(chain, b1b, miner="b")
        chain.add_block(b2b)
        assert chain.tip.block_id == b2b.block_id
        assert chain.height == 2

    def test_reorg_counted(self, chain):
        b1a = build_block(chain, chain.genesis, miner="a")
        chain.add_block(b1a)
        b1b = build_block(chain, chain.genesis, miner="b")
        chain.add_block(b1b)
        b2b = build_block(chain, b1b, miner="b")
        chain.add_block(b2b)
        assert chain.reorgs >= 1

    def test_reorg_replaces_ledger_state(self):
        alice = generate_keypair("cs-alice4")
        chain = ChainState(premine={alice.public_key: 100.0})
        pay = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 10.0}, 0)
        b1a = build_block(chain, chain.genesis, miner="a", txs=[pay])
        chain.add_block(b1a)
        assert chain.state_at().balance("bob") == pytest.approx(10.0)
        # Competing branch without the payment becomes heavier.
        b1b = build_block(chain, chain.genesis, miner="b")
        chain.add_block(b1b)
        b2b = build_block(chain, b1b, miner="b")
        chain.add_block(b2b)
        # The payment is gone from the consensus view: the 51%-rewrite effect.
        assert chain.state_at().balance("bob") == 0.0
        assert chain.find_transaction(pay.txid) is None

    def test_confirmations(self, chain):
        b1 = build_block(chain, chain.genesis)
        chain.add_block(b1)
        b2 = build_block(chain, b1)
        chain.add_block(b2)
        assert chain.confirmations(b1.block_id) == 2
        assert chain.confirmations(b2.block_id) == 1
        # Off-main-chain block has zero confirmations.
        b1x = build_block(chain, chain.genesis, miner="x")
        chain.add_block(b1x)
        assert chain.confirmations(b1x.block_id) == 0

    def test_same_sender_double_spend_on_two_branches(self):
        alice = generate_keypair("cs-alice5")
        chain = ChainState(premine={alice.public_key: 10.0})
        spend1 = make_transaction(alice, TxKind.PAY, {"to": "bob", "amount": 10.0}, 0)
        spend2 = make_transaction(alice, TxKind.PAY, {"to": "carol", "amount": 10.0}, 0)
        b1a = build_block(chain, chain.genesis, miner="a", txs=[spend1])
        b1b = build_block(chain, chain.genesis, miner="b", txs=[spend2])
        chain.add_block(b1a)
        chain.add_block(b1b)  # both branches individually valid
        # Only one can be in the consensus state at a time.
        state = chain.state_at()
        assert (state.balance("bob") > 0) != (state.balance("carol") > 0)


class TestDifficultyRetarget:
    PARAMS = ConsensusParams(
        target_block_interval=10.0, retarget_interval=5, initial_difficulty=100.0
    )

    def build_chain(self, spacing: float):
        chain = ChainState()
        parent = chain.genesis
        for height in range(1, 5):
            block = make_block(
                parent=parent,
                timestamp=parent.timestamp + spacing,
                miner="m",
                difficulty=100.0,
                transactions=[make_coinbase("m", 50.0, height)],
            )
            chain.add_block(block)
            parent = block
        return chain, parent

    def test_no_retarget_mid_window(self):
        chain, parent = self.build_chain(spacing=10.0)
        # Heights 1-4: next height 5 triggers; height 3 does not.
        mid_parent = chain.block_at_height(2)
        assert required_difficulty(chain, mid_parent, self.PARAMS) == 100.0

    def test_fast_blocks_raise_difficulty(self):
        chain, parent = self.build_chain(spacing=2.0)  # 5x too fast
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted > 100.0

    def test_slow_blocks_lower_difficulty(self):
        chain, parent = self.build_chain(spacing=50.0)  # 5x too slow
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted < 100.0

    def test_retarget_clamped(self):
        chain, parent = self.build_chain(spacing=0.01)  # 1000x too fast
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted == pytest.approx(100.0 * self.PARAMS.max_retarget_factor)

    def test_genesis_child_uses_initial(self):
        chain = ChainState()
        assert required_difficulty(
            chain, chain.genesis, self.PARAMS
        ) == self.PARAMS.initial_difficulty

    def test_params_validation(self):
        with pytest.raises(InvalidBlockError):
            ConsensusParams(target_block_interval=0.0)
        with pytest.raises(InvalidBlockError):
            ConsensusParams(retarget_interval=0)
        with pytest.raises(InvalidBlockError):
            ConsensusParams(max_retarget_factor=0.5)


class TestChainStateQueries:
    def test_cumulative_work_unknown_block(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.cumulative_work("0" * 64)

    def test_state_at_unknown_block(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.state_at("0" * 64)

    def test_state_at_returns_copy(self):
        chain = ChainState(premine={"a": 10.0})
        state = chain.state_at()
        state._credit("a", 1000.0)
        assert chain.state_at().balance("a") == 10.0

    def test_block_unknown_raises(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.block("ff" * 32)

    def test_genesis_shape_validation(self):
        genesis = make_genesis()
        genesis.validate_shape()  # no coinbase requirement at height 0
