"""Macro benchmarks: experiment-shaped end-to-end workloads.

Each body runs a full paper experiment (or a chaos/sweep leg of one)
under an ambient :func:`repro.obs.observe` block, so the simulators and
networks it builds record their own work counters — events fired,
messages delivered, cache hits — into the harness registry without the
experiment code knowing it is being benchmarked.

Two of the entries form a deliberate pair: ``macro.chaos.no_plan`` and
``macro.chaos.quiet_plan`` run the *same* transport workload without
and with the fault-plan machinery armed (with an empty plan), so the
report's wall-clock ratio between them is the standing answer to "what
does a quiet chaos plan cost?" — previously an ad-hoc, unreproducible
measurement.

Per the BEN001 contract, nothing here reads the host clock; the harness
(:mod:`repro.bench.harness`) does all timing.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Any, Generator

from repro.bench.registry import register_benchmark
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.node import Node
from repro.net.transport import Network
from repro.obs.metrics import Metrics
from repro.obs.runtime import observe
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = [
    "bench_chaos_no_plan",
    "bench_chaos_quiet_plan",
    "bench_e4_cohort_100k",
    "bench_e4_federation_scaling",
    "bench_e4_shard_4x",
    "bench_e5_churn_tradeoff",
    "bench_e6_registration_sweep",
    "bench_sweep_cold_warm_cache",
]

_CHAOS_NODES = 6
_CHAOS_RPC_ROUNDS = 120
_SWEEP_SEED = 6


@register_benchmark(
    "macro.e4.federation_scaling", "macro",
    "E4 replicated-federation availability run (5 servers, 20 users)",
)
def bench_e4_federation_scaling(metrics: Metrics) -> None:
    from repro.analysis.experiments import run_federation_availability

    with observe(metrics=metrics):
        run_federation_availability(seed=7)


@register_benchmark(
    "macro.e4_cohort_100k", "macro",
    "E4 federation availability on the cohort engine at 100k devices",
)
def bench_e4_cohort_100k(metrics: Metrics) -> None:
    from repro.analysis.cohort import run_federation_availability_cohort

    with observe(metrics=metrics):
        run_federation_availability_cohort(seed=7, devices=100_000)


@register_benchmark(
    "macro.e4_shard_4x", "macro",
    "E4 federation availability on the shard engine at K=4",
)
def bench_e4_shard_4x(metrics: Metrics) -> None:
    from repro.analysis.shard_driver import run_federation_availability_shard

    with observe(metrics=metrics):
        run_federation_availability_shard(seed=7, shards=4)


@register_benchmark(
    "macro.e5.churn_tradeoff", "macro",
    "E5 social-platform tradeoff under device churn (16 users)",
)
def bench_e5_churn_tradeoff(metrics: Metrics) -> None:
    from repro.analysis.experiments import run_social_tradeoff

    with observe(metrics=metrics):
        run_social_tradeoff(seed=3)


@register_benchmark(
    "macro.e6.registration_sweep", "macro",
    "E6a name-registration latency sweep, PKI vs blockchain",
)
def bench_e6_registration_sweep(metrics: Metrics) -> None:
    from repro.analysis.experiments import run_naming_comparison

    with observe(metrics=metrics):
        run_naming_comparison(seed=2)


def _echo(node: Node, payload: Any, sender_id: str) -> Any:
    return payload


def _chaos_leg(metrics: Metrics, armed: bool) -> None:
    """The shared workload behind the quiet-plan overhead pair: an
    all-pairs RPC ring with (optionally) an empty fault plan armed."""
    with observe(metrics=metrics):
        sim = Simulator()
        streams = RngStreams(5003)
        network = Network(sim, streams)
        for index in range(_CHAOS_NODES):
            node = network.create_node(f"n{index}")
            node.register_handler("echo", _echo)
        if armed:
            injector = FaultInjector(
                sim, network, FaultPlan([], name="quiet"), streams
            )
            injector.arm()

        def caller(sim: Simulator, src: str, dst: str) -> Generator:
            for i in range(_CHAOS_RPC_ROUNDS):
                yield from network.rpc(src, dst, "echo", payload=i)

        for index in range(_CHAOS_NODES):
            src = f"n{index}"
            dst = f"n{(index + 1) % _CHAOS_NODES}"
            sim.spawn(caller(sim, src, dst), name=f"bench.caller.{src}")
        sim.run()


@register_benchmark(
    "macro.chaos.no_plan", "macro",
    "RPC ring with no fault machinery (baseline for quiet_plan)",
)
def bench_chaos_no_plan(metrics: Metrics) -> None:
    _chaos_leg(metrics, armed=False)


@register_benchmark(
    "macro.chaos.quiet_plan", "macro",
    "the same RPC ring with an empty FaultPlan armed (overhead probe)",
)
def bench_chaos_quiet_plan(metrics: Metrics) -> None:
    _chaos_leg(metrics, armed=True)


@register_benchmark(
    "macro.sweep.cold_warm_cache", "macro",
    "E8 swarm sweep through SweepRunner: cold cache then warm replay",
)
def bench_sweep_cold_warm_cache(metrics: Metrics) -> None:
    from repro.analysis.experiments import run_swarm_availability
    from repro.analysis.runner import SweepCache, SweepRunner

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        with observe(metrics=metrics):
            for _phase in ("cold", "warm"):
                runner = SweepRunner(
                    workers=1, cache=SweepCache(cache_dir)
                )
                run_swarm_availability(seed=_SWEEP_SEED, runner=runner)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
