"""Tests for deals, payment rails, the marketplace loop, and Table 2 profiles."""

import pytest

from repro.errors import ContractError, StorageError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import (
    DealState,
    DirectLedger,
    ProofKind,
    StorageMarketplace,
    StorageProvider,
    TABLE2_SYSTEMS,
    make_random_blob,
    profile_for,
    table2_rows,
)


def setup_market(seed=1, n_providers=3, deadline=0.5):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    market = StorageMarketplace(network, streams, response_deadline=deadline)
    providers = []
    for i in range(n_providers):
        provider = StorageProvider(
            network, f"prov{i}", price_per_gb_epoch=0.01 * (i + 1)
        )
        market.register_provider(provider)
        providers.append(provider)
    network.create_node("consumer")
    market.ledger.credit("consumer", 1000.0)
    return sim, streams, network, market, providers


class TestDirectLedger:
    def test_escrow_lifecycle(self):
        ledger = DirectLedger()
        ledger.credit("alice", 100.0)
        sim = Simulator()
        sim.run_process(ledger.open_escrow("d1", "alice", 30.0))
        assert ledger.balance("alice") == pytest.approx(70.0)
        assert ledger.escrowed("d1") == pytest.approx(30.0)
        ledger.pay_from_escrow("d1", "bob", 10.0)
        assert ledger.balance("bob") == pytest.approx(10.0)
        refunded = ledger.refund_escrow("d1", "alice")
        assert refunded == pytest.approx(20.0)
        assert ledger.total_supply() == pytest.approx(100.0)

    def test_insufficient_balance_rejected(self):
        ledger = DirectLedger()
        sim = Simulator()
        with pytest.raises(ContractError):
            sim.run_process(ledger.open_escrow("d1", "poor", 5.0))

    def test_double_escrow_rejected(self):
        ledger = DirectLedger()
        ledger.credit("a", 100.0)
        sim = Simulator()
        sim.run_process(ledger.open_escrow("d1", "a", 10.0))
        with pytest.raises(ContractError):
            sim.run_process(ledger.open_escrow("d1", "a", 10.0))

    def test_overpay_from_escrow_rejected(self):
        ledger = DirectLedger()
        ledger.credit("a", 100.0)
        sim = Simulator()
        sim.run_process(ledger.open_escrow("d1", "a", 10.0))
        with pytest.raises(ContractError):
            ledger.pay_from_escrow("d1", "b", 11.0)


class TestMarketplace:
    def test_deal_lifecycle_honest_provider(self):
        sim, streams, network, market, providers = setup_market()
        blob = make_random_blob(streams, 10 * 1024, chunk_size=1024)

        def scenario():
            deal = yield from market.make_deal(
                "consumer", blob, epochs=3, proof_kind=ProofKind.STORAGE
            )
            for _ in range(3):
                yield from market.run_epoch()
            return deal

        deal = sim.run_process(scenario())
        assert deal.state == DealState.COMPLETED
        assert deal.epochs_paid == 3
        assert market.provider_earnings(deal.provider_id) == pytest.approx(
            deal.total_price
        )

    def test_cheapest_provider_selected(self):
        sim, streams, network, market, providers = setup_market()
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            return (yield from market.make_deal("consumer", blob, epochs=1))

        deal = sim.run_process(scenario())
        assert deal.provider_id == "prov0"  # lowest price

    def test_cheating_provider_slashed(self):
        sim, streams, network, market, providers = setup_market(seed=3)
        blob = make_random_blob(streams, 50 * 1024, chunk_size=1024)

        def scenario():
            deal = yield from market.make_deal(
                "consumer", blob, epochs=10, proof_kind=ProofKind.RETRIEVABILITY
            )
            # Provider drops most of the data after the deal opens.
            providers[0].drop_chunks(blob.merkle_root, 0.8, streams.stream("x"))
            results = yield from market.run_epoch()
            return deal, results

        deal, results = sim.run_process(scenario())
        assert results[deal.deal_id] is False
        assert deal.state == DealState.FAILED
        # Remaining escrow went back to the consumer, not the cheater.
        assert market.ledger.balance("consumer") == pytest.approx(1000.0)
        assert market.provider_earnings("prov0") == 0.0

    def test_offline_provider_fails_audit(self):
        sim, streams, network, market, providers = setup_market(seed=4)
        blob = make_random_blob(streams, 4096, chunk_size=1024)

        def scenario():
            deal = yield from market.make_deal("consumer", blob, epochs=5)
            network.node(deal.provider_id).set_online(False, sim.now)
            yield from market.run_epoch()
            return deal

        deal = sim.run_process(scenario())
        assert deal.state == DealState.FAILED

    def test_none_proof_always_pays(self):
        # IPFS-style: no audits; even a provider that dropped data is paid.
        sim, streams, network, market, providers = setup_market(seed=5)
        blob = make_random_blob(streams, 8 * 1024, chunk_size=1024)

        def scenario():
            deal = yield from market.make_deal(
                "consumer", blob, epochs=1, proof_kind=ProofKind.NONE
            )
            providers[0].drop_chunks(blob.merkle_root, 1.0, streams.stream("x"))
            yield from market.run_epoch()
            return deal

        deal = sim.run_process(scenario())
        assert deal.state == DealState.COMPLETED  # nothing checked!

    def test_insufficient_providers_raises(self):
        sim, streams, network, market, providers = setup_market(n_providers=1)
        network.node("prov0").set_online(False, 0.0)
        blob = make_random_blob(streams, 1024)

        def scenario():
            try:
                yield from market.make_deal("consumer", blob, epochs=1)
            except StorageError:
                return "no-providers"

        assert sim.run_process(scenario()) == "no-providers"

    def test_unknown_proof_kind_rejected(self):
        sim, streams, network, market, providers = setup_market()
        blob = make_random_blob(streams, 1024)

        def scenario():
            yield from market.make_deal(
                "consumer", blob, epochs=1, proof_kind="proof_of_vibes"
            )

        with pytest.raises(ContractError):
            sim.run_process(scenario())

    def test_duplicate_provider_registration_rejected(self):
        sim, streams, network, market, providers = setup_market()
        with pytest.raises(StorageError):
            market.register_provider(providers[0])


class TestTable2Profiles:
    def test_eight_systems_like_the_paper(self):
        # Table 2 lists 7 systems + Blockstack's special row = 7 rows; we
        # model all of them (IPFS, MaidSafe, Sia, Storj, Swarm, Filecoin,
        # Blockstack).
        assert len(TABLE2_SYSTEMS) == 7

    def test_rows_match_paper_columns(self):
        rows = {r["system"]: r for r in table2_rows()}
        assert rows["IPFS"]["blockchain_usage"] == "None"
        assert rows["IPFS"]["incentive_scheme"] == "Bitswap Ledgers"
        assert rows["Sia"]["incentive_scheme"] == "Proof-of-storage"
        assert "storjcoin" in rows["Storj"]["blockchain_usage"]
        assert "Proof-of-replication" in rows["Filecoin"]["incentive_scheme"]
        assert rows["Blockstack"]["incentive_scheme"] == "N/A"

    def test_profiles_runnable_in_marketplace(self):
        # Every non-chain profile's proof kind must be executable.
        sim, streams, network, market, providers = setup_market(seed=6)
        blob = make_random_blob(streams, 8 * 1024, chunk_size=1024)

        def scenario(kind):
            deal = yield from market.make_deal(
                "consumer", blob, epochs=1, proof_kind=kind
            )
            yield from market.run_epoch()
            return deal

        for profile in TABLE2_SYSTEMS:
            market2_deal = sim.run_process(scenario(profile.proof_kind))
            assert market2_deal.state in (DealState.COMPLETED, DealState.ACTIVE)

    def test_profile_lookup(self):
        assert profile_for("filecoin").name == "Filecoin"
        with pytest.raises(StorageError):
            profile_for("dropbox")


class TestMarketplaceEdges:
    def test_cheapest_skips_offline(self):
        sim = Simulator()
        streams = RngStreams(41)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        market = StorageMarketplace(network, streams)
        cheap = StorageProvider(network, "cheap", price_per_gb_epoch=0.001)
        pricey = StorageProvider(network, "pricey", price_per_gb_epoch=1.0)
        market.register_provider(cheap)
        market.register_provider(pricey)
        network.node("cheap").set_online(False, 0.0)
        [chosen] = market.cheapest_providers(100, 1)
        assert chosen.node_id == "pricey"

    def test_deal_lookup(self):
        sim = Simulator()
        streams = RngStreams(42)
        network = Network(sim, streams)
        market = StorageMarketplace(network, streams)
        with pytest.raises(ContractError):
            market.deal("ghost")

    def test_provider_lookup(self):
        sim = Simulator()
        streams = RngStreams(43)
        network = Network(sim, streams)
        market = StorageMarketplace(network, streams)
        with pytest.raises(StorageError):
            market.provider("ghost")
