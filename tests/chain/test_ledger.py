"""Unit tests for transactions and the ledger state machine."""

import pytest

from repro.chain import (
    LedgerRules,
    LedgerState,
    TxKind,
    apply_transaction,
    make_transaction,
)
from repro.chain.transaction import make_coinbase
from repro.crypto import generate_keypair
from repro.errors import InvalidTransactionError

RULES = LedgerRules()


@pytest.fixture
def alice():
    return generate_keypair("ledger-alice")


@pytest.fixture
def bob():
    return generate_keypair("ledger-bob")


@pytest.fixture
def funded(alice):
    state = LedgerState()
    state._credit(alice.public_key, 100.0)
    return state


def tx(keypair, kind, payload, nonce, fee=0.0):
    return make_transaction(keypair, kind, payload, nonce, fee)


class TestTransactionShape:
    def test_signed_tx_validates(self, alice):
        t = tx(alice, TxKind.PAY, {"to": "x", "amount": 1.0}, 0)
        t.validate_shape()

    def test_txid_stable_and_unique(self, alice):
        t1 = tx(alice, TxKind.PAY, {"to": "x", "amount": 1.0}, 0)
        t2 = tx(alice, TxKind.PAY, {"to": "x", "amount": 1.0}, 1)
        assert t1.txid != t2.txid
        assert t1.txid == tx(alice, TxKind.PAY, {"to": "x", "amount": 1.0}, 0).txid

    def test_unsigned_tx_rejected(self, alice):
        from repro.chain.transaction import Transaction

        t = Transaction(alice.public_key, TxKind.PAY, {"to": "x", "amount": 1}, 0.0, 0)
        with pytest.raises(InvalidTransactionError):
            t.validate_shape()

    def test_unknown_kind_rejected(self, alice):
        with pytest.raises(InvalidTransactionError):
            tx(alice, "teleport", {}, 0).validate_shape()

    def test_negative_fee_rejected(self, alice):
        with pytest.raises(InvalidTransactionError):
            tx(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0, fee=-1).validate_shape()

    def test_tampered_payload_fails_signature(self, alice):
        from repro.chain.transaction import Transaction

        original = tx(alice, TxKind.PAY, {"to": "x", "amount": 1.0}, 0)
        tampered = Transaction(
            original.sender, original.kind, {"to": "x", "amount": 99.0},
            original.fee, original.nonce, original.signature,
        )
        with pytest.raises(InvalidTransactionError):
            tampered.validate_shape()


class TestPayments:
    def test_pay_moves_balance(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 30.0}, 0)
        apply_transaction(funded, t, 1, RULES)
        assert funded.balance(alice.public_key) == pytest.approx(70.0)
        assert funded.balance(bob.public_key) == pytest.approx(30.0)

    def test_overspend_rejected(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 1000.0}, 0)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 1, RULES)

    def test_nonce_replay_rejected(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 1.0}, 0)
        apply_transaction(funded, t, 1, RULES)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 2, RULES)

    def test_out_of_order_nonce_rejected(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 1.0}, 5)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 1, RULES)

    def test_fee_goes_to_miner(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 1.0}, 0, fee=2.0)
        apply_transaction(funded, t, 1, RULES, fees_to="miner")
        assert funded.balance("miner") == pytest.approx(2.0)
        assert funded.balance(alice.public_key) == pytest.approx(97.0)

    def test_fee_burned_without_miner(self, alice, bob, funded):
        t = tx(alice, TxKind.PAY, {"to": bob.public_key, "amount": 1.0}, 0, fee=2.0)
        apply_transaction(funded, t, 1, RULES)
        assert funded.burned == pytest.approx(2.0)

    def test_coinbase_credits_reward(self):
        state = LedgerState()
        cb = make_coinbase("miner-key", 50.0, 1)
        apply_transaction(state, cb, 1, RULES)
        assert state.balance("miner-key") == pytest.approx(50.0)

    def test_coinbase_over_reward_rejected(self):
        state = LedgerState()
        cb = make_coinbase("miner-key", RULES.block_reward + 1, 1)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(state, cb, 1, RULES)


class TestNames:
    def test_register_and_resolve(self, alice, funded):
        t = tx(alice, TxKind.NAME_REGISTER, {"name": "alice.id", "value": "v1"}, 0)
        apply_transaction(funded, t, 1, RULES)
        entry = funded.live_name("alice.id", 1)
        assert entry is not None
        assert entry.owner == alice.public_key
        assert entry.value == "v1"

    def test_register_charges_cost(self, alice, funded):
        t = tx(alice, TxKind.NAME_REGISTER, {"name": "alice.id", "value": "v"}, 0)
        apply_transaction(funded, t, 1, RULES)
        assert funded.balance(alice.public_key) == pytest.approx(
            100.0 - RULES.name_register_cost
        )

    def test_double_register_rejected(self, alice, bob, funded):
        funded._credit(bob.public_key, 10.0)
        t1 = tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0)
        apply_transaction(funded, t1, 1, RULES)
        t2 = tx(bob, TxKind.NAME_REGISTER, {"name": "n", "value": "b"}, 0)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t2, 2, RULES)

    def test_update_by_owner(self, alice, funded):
        apply_transaction(
            funded, tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0),
            1, RULES,
        )
        apply_transaction(
            funded, tx(alice, TxKind.NAME_UPDATE, {"name": "n", "value": "b"}, 1),
            2, RULES,
        )
        assert funded.live_name("n", 2).value == "b"

    def test_update_by_non_owner_rejected(self, alice, bob, funded):
        funded._credit(bob.public_key, 10.0)
        apply_transaction(
            funded, tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0),
            1, RULES,
        )
        with pytest.raises(InvalidTransactionError):
            apply_transaction(
                funded, tx(bob, TxKind.NAME_UPDATE, {"name": "n", "value": "x"}, 0),
                2, RULES,
            )

    def test_transfer_changes_owner(self, alice, bob, funded):
        apply_transaction(
            funded, tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0),
            1, RULES,
        )
        apply_transaction(
            funded,
            tx(alice, TxKind.NAME_TRANSFER, {"name": "n", "to": bob.public_key}, 1),
            2, RULES,
        )
        assert funded.live_name("n", 2).owner == bob.public_key

    def test_expired_name_reregisterable(self, alice, bob, funded):
        funded._credit(bob.public_key, 10.0)
        apply_transaction(
            funded, tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0),
            1, RULES,
        )
        expiry = 1 + RULES.name_lifetime_blocks
        assert funded.live_name("n", expiry) is None
        apply_transaction(
            funded, tx(bob, TxKind.NAME_REGISTER, {"name": "n", "value": "b"}, 0),
            expiry, RULES,
        )
        assert funded.live_name("n", expiry).owner == bob.public_key

    def test_renew_extends_expiry(self, alice, funded):
        apply_transaction(
            funded, tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": "a"}, 0),
            1, RULES,
        )
        mid = RULES.name_lifetime_blocks // 2
        apply_transaction(
            funded, tx(alice, TxKind.NAME_RENEW, {"name": "n"}, 1), mid, RULES
        )
        assert funded.live_name("n", mid).expires_height == (
            mid + RULES.name_lifetime_blocks
        )

    def test_oversized_value_rejected(self, alice, funded):
        big = "x" * (RULES.max_value_bytes + 1)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(
                funded,
                tx(alice, TxKind.NAME_REGISTER, {"name": "n", "value": big}, 0),
                1, RULES,
            )

    def test_overlong_name_rejected(self, alice, funded):
        name = "n" * (RULES.max_name_length + 1)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(
                funded,
                tx(alice, TxKind.NAME_REGISTER, {"name": name, "value": "v"}, 0),
                1, RULES,
            )


class TestContracts:
    def open_contract(self, alice, bob, state, escrow=10.0, nonce=0):
        t = tx(
            alice,
            TxKind.CONTRACT_OPEN,
            {
                "contract_id": "c1",
                "provider": bob.public_key,
                "escrow": escrow,
                "terms": {"size_gb": 1},
            },
            nonce,
        )
        apply_transaction(state, t, 1, RULES)

    def test_open_escrows_funds(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        assert funded.balance(alice.public_key) == pytest.approx(90.0)
        assert funded.contracts["c1"].escrow == pytest.approx(10.0)
        # Conservation: supply unchanged.
        assert funded.total_supply() == pytest.approx(100.0)

    def test_consumer_close_pays_provider(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        t = tx(
            alice, TxKind.CONTRACT_CLOSE,
            {"contract_id": "c1", "provider_share": 0.8}, 1,
        )
        apply_transaction(funded, t, 2, RULES)
        assert funded.balance(bob.public_key) == pytest.approx(8.0)
        assert funded.balance(alice.public_key) == pytest.approx(92.0)
        assert funded.contracts["c1"].closed

    def test_provider_cannot_pay_itself(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        t = tx(
            bob, TxKind.CONTRACT_CLOSE,
            {"contract_id": "c1", "provider_share": 1.0}, 0,
        )
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 2, RULES)

    def test_provider_may_refund(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        t = tx(
            bob, TxKind.CONTRACT_CLOSE,
            {"contract_id": "c1", "provider_share": 0.0}, 0,
        )
        apply_transaction(funded, t, 2, RULES)
        assert funded.balance(alice.public_key) == pytest.approx(100.0)

    def test_third_party_cannot_close(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        eve = generate_keypair("ledger-eve")
        funded._credit(eve.public_key, 5.0)
        t = tx(
            eve, TxKind.CONTRACT_CLOSE,
            {"contract_id": "c1", "provider_share": 0.0}, 0,
        )
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 2, RULES)

    def test_double_close_rejected(self, alice, bob, funded):
        self.open_contract(alice, bob, funded)
        t1 = tx(alice, TxKind.CONTRACT_CLOSE, {"contract_id": "c1", "provider_share": 0.5}, 1)
        apply_transaction(funded, t1, 2, RULES)
        t2 = tx(alice, TxKind.CONTRACT_CLOSE, {"contract_id": "c1", "provider_share": 0.5}, 2)
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t2, 3, RULES)

    def test_open_requires_positive_escrow(self, alice, bob, funded):
        t = tx(
            alice, TxKind.CONTRACT_OPEN,
            {"contract_id": "c2", "provider": bob.public_key, "escrow": 0},
            0,
        )
        with pytest.raises(InvalidTransactionError):
            apply_transaction(funded, t, 1, RULES)
