"""The paper's conceptual contribution, made executable.

* :mod:`repro.core.axes` — the distribution x control model (§2).
* :mod:`repro.core.taxonomy` — the project registry behind Table 1 (§3).
* :mod:`repro.core.properties` — desirable-property scorecards (§2.1, §3.2).
* :mod:`repro.core.feasibility` — the capacity model behind Table 3 (§4).
* :mod:`repro.core.agenda` — the research agenda (§5).
* :mod:`repro.core.units` — unit constants and Table-3-style formatting.
"""

from repro.core.agenda import AGENDA, AgendaItem, Difficulty, items_by_difficulty
from repro.core.demand import (
    DecentralizationOverhead,
    SERVICES,
    ServiceDemand,
    demand_table,
    serveable_users,
)
from repro.core.axes import (
    Control,
    Distribution,
    ERA_PROFILES,
    SystemProfile,
    classify,
    trajectory,
)
from repro.core.feasibility import (
    Capacity,
    CloudAssumptions,
    DeviceClassAssumptions,
    FeasibilityModel,
    PAPER_CLOUD,
    PAPER_DEVICE_CLASSES,
    paper_model,
)
from repro.core.properties import (
    CommProperty,
    OperatorProperty,
    PAPER_SCORECARDS,
    Scorecard,
    UserProperty,
)
from repro.core.taxonomy import (
    NetworkModel,
    PROJECTS,
    Problem,
    Project,
    projects_for,
    table1_rows,
)
from repro.core.units import (
    EB,
    GB,
    MBPS,
    TBPS,
    format_bandwidth,
    format_cores,
    format_storage,
)

__all__ = [
    "Distribution",
    "Control",
    "SystemProfile",
    "ERA_PROFILES",
    "classify",
    "trajectory",
    "Problem",
    "NetworkModel",
    "Project",
    "PROJECTS",
    "projects_for",
    "table1_rows",
    "UserProperty",
    "OperatorProperty",
    "CommProperty",
    "Scorecard",
    "PAPER_SCORECARDS",
    "Capacity",
    "CloudAssumptions",
    "DeviceClassAssumptions",
    "FeasibilityModel",
    "PAPER_CLOUD",
    "PAPER_DEVICE_CLASSES",
    "paper_model",
    "ServiceDemand",
    "DecentralizationOverhead",
    "SERVICES",
    "serveable_users",
    "demand_table",
    "AgendaItem",
    "Difficulty",
    "AGENDA",
    "items_by_difficulty",
    "TBPS",
    "MBPS",
    "GB",
    "EB",
    "format_bandwidth",
    "format_cores",
    "format_storage",
]
