"""``python -m repro lint``: the linter's command-line front end.

Exit codes: 0 clean, 1 findings, 2 usage error (unknown rule or path).
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import LintError, all_rules, lint_paths, resolve_rules
from repro.lint.reporters import render_human, render_json

__all__ = ["add_lint_arguments", "default_lint_path", "run_lint"]


def default_lint_path() -> str:
    """The installed ``repro`` package directory, so ``python -m repro
    lint`` with no arguments checks the library from any cwd."""
    import repro

    return str(Path(repro.__file__).parent)


def add_lint_arguments(parser) -> None:
    """Attach the lint options to an ``argparse`` (sub)parser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def run_lint(args) -> int:
    """Execute the lint command from parsed arguments."""
    if args.list_rules:
        print(_list_rules())
        return 0
    selection: Optional[List[str]] = None
    if args.rules is not None:
        selection = [r for r in args.rules.split(",") if r.strip()]
    paths: Sequence[str] = args.paths or [default_lint_path()]
    try:
        rules = resolve_rules(selection)
        findings = lint_paths(paths, rules=rules)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        rendered = render_human(findings)
        if rendered:
            print(rendered)
        else:
            checked = ", ".join(str(p) for p in paths)
            print(f"lint: clean ({len(rules)} rule(s) over {checked})")
    return 1 if findings else 0
