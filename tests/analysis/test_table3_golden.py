"""Golden-value regression test for Table 3 (E3).

These are the exact numbers the paper states (and the derived values the
reproduction adds).  A feasibility refactor that drifts any of them must
fail here, loudly, rather than slip through shape-only tests.
"""

from repro.analysis import SweepCache, SweepRunner
from repro.analysis.experiments import run_feasibility

GOLDEN_TABLE3 = [
    {"resource": "Bandwidth", "cloud": "200 Tbps", "devices": "5000 Tbps"},
    {"resource": "Cores", "cloud": "400 M", "devices": "500 M"},
    {"resource": "Storage", "cloud": "80 EB", "devices": "210 EB"},
]

GOLDEN_RATIOS = {"bandwidth": 25.0, "cores": 1.25, "storage": 2.625}

GOLDEN_BREAKEVEN_CORE_DISCOUNT = 10.0


class TestTable3Golden:
    def test_exact_paper_cells(self):
        result = run_feasibility()
        assert result["table3"] == GOLDEN_TABLE3

    def test_sufficiency_verdict(self):
        result = run_feasibility()
        assert result["sufficient"] == {
            "bandwidth": True, "cores": True, "storage": True,
        }

    def test_derived_ratios_and_breakeven(self):
        result = run_feasibility()
        assert result["ratios"] == GOLDEN_RATIOS
        assert (
            result["breakeven_core_discount"]
            == GOLDEN_BREAKEVEN_CORE_DISCOUNT
        )

    def test_runner_and_cached_replay_preserve_golden_values(self, tmp_path):
        """The same goldens hold through the runner, cold and warm."""
        cold_runner = SweepRunner(cache=SweepCache(tmp_path))
        cold = run_feasibility(runner=cold_runner)
        assert cold["table3"] == GOLDEN_TABLE3
        assert cold_runner.stats.misses == 1

        warm_runner = SweepRunner(cache=SweepCache(tmp_path))
        warm = run_feasibility(runner=warm_runner)
        assert warm == cold
        assert warm["table3"] == GOLDEN_TABLE3
        assert warm["ratios"] == GOLDEN_RATIOS
        assert warm_runner.stats.misses == 0
        assert warm_runner.stats.hits == 1
