"""Gap tests: code paths not exercised by the main suites.

Covers the error-type hierarchy, difficulty retargeting details, mempool
introspection, node handler mechanics, marketplace edge cases, and misc
helpers — the long tail a downstream user will hit.
"""

import pytest

from repro import errors
from repro.chain import (
    ChainState,
    ConsensusParams,
    make_genesis,
    required_difficulty,
)
from repro.chain.block import make_block
from repro.chain.transaction import make_coinbase
from repro.errors import (
    ChainError,
    InvalidBlockError,
    NetworkError,
    ReproError,
    StorageError,
)
from repro.net import ConstantLatency, Network, Node
from repro.sim import RngStreams, Simulator


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_types = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        for error_type in error_types:
            assert issubclass(error_type, ReproError) or error_type is ReproError

    def test_specific_parentage(self):
        assert issubclass(errors.NodeOfflineError, errors.NetworkError)
        assert issubclass(errors.RpcTimeoutError, errors.NetworkError)
        assert issubclass(errors.InvalidBlockError, errors.ChainError)
        assert issubclass(errors.ProofFailedError, errors.StorageError)
        assert issubclass(errors.NameTakenError, errors.NamingError)
        assert issubclass(errors.AccessDeniedError, errors.GroupCommError)

    def test_remote_error_carries_cause(self):
        inner = errors.StorageError("disk full")
        wrapped = errors.RemoteError(inner)
        assert wrapped.remote_exception is inner
        assert "disk full" in str(wrapped)


class TestDifficultyRetarget:
    PARAMS = ConsensusParams(
        target_block_interval=10.0, retarget_interval=5, initial_difficulty=100.0
    )

    def build_chain(self, spacing: float):
        chain = ChainState()
        parent = chain.genesis
        for height in range(1, 5):
            block = make_block(
                parent=parent,
                timestamp=parent.timestamp + spacing,
                miner="m",
                difficulty=100.0,
                transactions=[make_coinbase("m", 50.0, height)],
            )
            chain.add_block(block)
            parent = block
        return chain, parent

    def test_no_retarget_mid_window(self):
        chain, parent = self.build_chain(spacing=10.0)
        # Heights 1-4: next height 5 triggers; height 3 does not.
        mid_parent = chain.block_at_height(2)
        assert required_difficulty(chain, mid_parent, self.PARAMS) == 100.0

    def test_fast_blocks_raise_difficulty(self):
        chain, parent = self.build_chain(spacing=2.0)  # 5x too fast
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted > 100.0

    def test_slow_blocks_lower_difficulty(self):
        chain, parent = self.build_chain(spacing=50.0)  # 5x too slow
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted < 100.0

    def test_retarget_clamped(self):
        chain, parent = self.build_chain(spacing=0.01)  # 1000x too fast
        adjusted = required_difficulty(chain, parent, self.PARAMS)
        assert adjusted == pytest.approx(100.0 * self.PARAMS.max_retarget_factor)

    def test_genesis_child_uses_initial(self):
        chain = ChainState()
        assert required_difficulty(
            chain, chain.genesis, self.PARAMS
        ) == self.PARAMS.initial_difficulty

    def test_params_validation(self):
        with pytest.raises(InvalidBlockError):
            ConsensusParams(target_block_interval=0.0)
        with pytest.raises(InvalidBlockError):
            ConsensusParams(retarget_interval=0)
        with pytest.raises(InvalidBlockError):
            ConsensusParams(max_retarget_factor=0.5)


class TestMempoolIntrospection:
    def test_contains_and_pending_order(self):
        from repro.chain import Mempool, TxKind, make_transaction
        from repro.crypto import generate_keypair

        alice = generate_keypair("gap-alice")
        pool = Mempool()
        low = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0, fee=0.1)
        high = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 1, fee=0.9)
        pool.add(low)
        pool.add(high)
        assert low.txid in pool
        assert len(pool) == 2
        assert pool.pending()[0].fee == 0.9  # fee-descending

    def test_full_pool_rejects(self):
        from repro.chain import Mempool, TxKind, make_transaction
        from repro.crypto import generate_keypair

        alice = generate_keypair("gap-alice2")
        pool = Mempool(max_size=1)
        t1 = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0)
        t2 = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 1)
        assert pool.add(t1)
        assert not pool.add(t2)
        assert pool.rejected == 1

    def test_remove(self):
        from repro.chain import Mempool, TxKind, make_transaction
        from repro.crypto import generate_keypair

        alice = generate_keypair("gap-alice3")
        pool = Mempool()
        tx = make_transaction(alice, TxKind.PAY, {"to": "x", "amount": 1}, 0)
        pool.add(tx)
        pool.remove(tx.txid)
        assert tx.txid not in pool


class TestNodeMechanics:
    def test_handler_replacement(self):
        node = Node("n")
        node.register_handler("m", lambda n, p, s: "first")
        node.register_handler("m", lambda n, p, s: "second")
        assert node.dispatch("m", None, "peer") == "second"

    def test_has_handler(self):
        node = Node("n")
        assert not node.has_handler("m")
        node.register_handler("m", lambda n, p, s: None)
        assert node.has_handler("m")

    def test_dispatch_unknown_method(self):
        node = Node("n")
        with pytest.raises(NetworkError):
            node.dispatch("ghost", None, "peer")

    def test_sessions_counted(self):
        node = Node("n")
        node.set_online(False, 1.0)
        node.set_online(True, 2.0)
        node.set_online(False, 3.0)
        node.set_online(True, 4.0)
        assert node.sessions == 2


class TestChainStateQueries:
    def test_cumulative_work_unknown_block(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.cumulative_work("0" * 64)

    def test_state_at_unknown_block(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.state_at("0" * 64)

    def test_state_at_returns_copy(self):
        chain = ChainState(premine={"a": 10.0})
        state = chain.state_at()
        state._credit("a", 1000.0)
        assert chain.state_at().balance("a") == 10.0

    def test_block_unknown_raises(self):
        chain = ChainState()
        with pytest.raises(InvalidBlockError):
            chain.block("ff" * 32)

    def test_genesis_shape_validation(self):
        genesis = make_genesis()
        genesis.validate_shape()  # no coinbase requirement at height 0


class TestMarketplaceEdges:
    def test_cheapest_skips_offline(self):
        from repro.storage import StorageMarketplace, StorageProvider

        sim = Simulator()
        streams = RngStreams(41)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        market = StorageMarketplace(network, streams)
        cheap = StorageProvider(network, "cheap", price_per_gb_epoch=0.001)
        pricey = StorageProvider(network, "pricey", price_per_gb_epoch=1.0)
        market.register_provider(cheap)
        market.register_provider(pricey)
        network.node("cheap").set_online(False, 0.0)
        [chosen] = market.cheapest_providers(100, 1)
        assert chosen.node_id == "pricey"

    def test_deal_lookup(self):
        from repro.errors import ContractError
        from repro.storage import StorageMarketplace

        sim = Simulator()
        streams = RngStreams(42)
        network = Network(sim, streams)
        market = StorageMarketplace(network, streams)
        with pytest.raises(ContractError):
            market.deal("ghost")

    def test_provider_lookup(self):
        from repro.storage import StorageMarketplace

        sim = Simulator()
        streams = RngStreams(43)
        network = Network(sim, streams)
        market = StorageMarketplace(network, streams)
        with pytest.raises(StorageError):
            market.provider("ghost")


class TestSwarmEdges:
    def test_register_peer_idempotent(self):
        from repro.webapps import SiteSwarm, Tracker

        sim = Simulator()
        streams = RngStreams(44)
        network = Network(sim, streams)
        swarm = SiteSwarm(network, Tracker(network))
        swarm.register_peer("p")
        swarm.register_peer("p")  # no duplicate-node error
        assert network.has_node("p")

    def test_refusing_unverifiable_bundle(self):
        from repro.errors import WebAppError
        from repro.webapps import HostlessSite, SiteBundle, SiteSwarm, Tracker

        sim = Simulator()
        streams = RngStreams(45)
        network = Network(sim, streams)
        swarm = SiteSwarm(network, Tracker(network))
        site = HostlessSite("gap-site")
        site.write_file("a", b"data")
        bundle = site.publish()
        bad = SiteBundle(manifest=bundle.manifest, files={"a": b"tampered"})

        def scenario():
            yield from swarm.seed("peer", bad)

        with pytest.raises(WebAppError):
            sim.run_process(scenario())


class TestZookoBehavioural:
    """The Zooko table is earned: each assessment's 'secure'/'decentralized'
    bit corresponds to an attack that does or does not exist."""

    def test_centralized_not_decentralized_bit(self):
        # Backed by: CentralizedPKI.seize_name works (tested in naming).
        from repro.naming import assess

        assert assess("centralized").decentralized is False

    def test_wot_not_secure_bit(self):
        # Backed by: WebOfTrust.sybil_attack succeeds with infiltration.
        from repro.naming import assess

        assert assess("web_of_trust").secure is False

    def test_blockchain_rationale_mentions_caveat(self):
        from repro.naming import assess

        assert "51" in assess("blockchain").rationale
