"""Whole-program rules: DET005/DET006/IMP001 (project) and ORD001 (file).

These rules exist because the per-file pack has a blind spot the exact
shape of one module: two components constructing the *same* RNG stream
name never appear in one file (DET005), a simulated function reaching
the wall clock through a helper module is invisible to DET002's
file-at-a-time scope (DET006), and an import cycle is by definition a
multi-file property (IMP001).  ORD001 is per-file but ships with the
pack: iteration order over a ``set`` feeding scheduling or draws is the
same replay hazard, just intra-module.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import LintContext, ProjectRule, Rule, register
from repro.lint.findings import Finding
from repro.lint.index import (
    SIMULATED_PACKAGES,
    HazardCall,
    ModuleFragment,
    ProjectIndex,
    StreamSite,
    attr_chain,
)

__all__ = [
    "ImportCycle",
    "SetIterationInSim",
    "StreamNameCollision",
    "TransitiveNondeterminism",
]


def _may_share_root(a: StreamSite, b: StreamSite) -> bool:
    """Two sites can share a seed root unless both roots are known
    integer literals that differ."""
    return a.root is None or b.root is None or a.root == b.root


@register
class StreamNameCollision(ProjectRule):
    rule_id = "DET005"
    title = "RNG stream name collision or generic stream name"
    rationale = (
        "Two sites constructing the same stream name from the same seed"
        " root draw the *same* sequence — correlated draws, the exact"
        " federation_homes/selfish_mining bug class DET001 was born"
        " from. Generic undotted names ('drop', 'probes') are"
        " collisions waiting to happen; use dotted component-prefixed"
        " names ('analysis.drop')."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        sites: List[Tuple[ModuleFragment, StreamSite]] = [
            (fragment, site)
            for fragment, site in index.stream_sites()
            if not fragment.is_module("sim", "rng.py")
        ]
        sites.sort(key=lambda pair: (pair[0].path, pair[1].line, pair[1].col))
        exact_by_name: Dict[str, List[Tuple[ModuleFragment, StreamSite]]] = {}
        families: List[Tuple[ModuleFragment, StreamSite]] = []
        for fragment, site in sites:
            if site.exact:
                exact_by_name.setdefault(site.prefix, []).append(
                    (fragment, site)
                )
            elif site.prefix:
                families.append((fragment, site))

        for fragment, site in sites:
            finding = self._check_site(
                fragment, site, exact_by_name, families
            )
            if finding is not None:
                yield finding

    def _check_site(
        self,
        fragment: ModuleFragment,
        site: StreamSite,
        exact_by_name: Dict[str, List[Tuple[ModuleFragment, StreamSite]]],
        families: List[Tuple[ModuleFragment, StreamSite]],
    ) -> Optional[Finding]:
        if site.exact:
            name = site.prefix
            for other_fragment, other in exact_by_name.get(name, ()):
                if other is site:
                    continue
                if (other_fragment.path, other.line, other.col) == (
                    fragment.path, site.line, site.col
                ):
                    continue
                if _may_share_root(site, other):
                    return Finding(
                        self.rule_id, fragment.path, site.line, site.col,
                        f"stream name '{name}' is also constructed at"
                        f" {other_fragment.path}:{other.line} and the two"
                        " sites can share a seed root; identical names"
                        " mean identical draws — prefix each with its"
                        " component (e.g. '<component>.<stream>')",
                    )
            for family_fragment, family in families:
                if name.startswith(family.prefix) and _may_share_root(
                    site, family
                ):
                    return Finding(
                        self.rule_id, fragment.path, site.line, site.col,
                        f"stream name '{name}' falls inside the dynamic"
                        f" stream family '{family.prefix}*' constructed at"
                        f" {family_fragment.path}:{family.line}; a runtime"
                        " value there can collide with this name — rename"
                        " one side",
                    )
            if "." not in name:
                return Finding(
                    self.rule_id, fragment.path, site.line, site.col,
                    f"generic stream name '{name}'; use a dotted,"
                    f" component-prefixed name (e.g. '<component>.{name}')"
                    " so independent subsystems cannot silently share a"
                    " stream",
                )
            return None
        if site.prefix and "." not in site.prefix:
            return Finding(
                self.rule_id, fragment.path, site.line, site.col,
                f"dynamic stream family with generic prefix"
                f" '{site.prefix}*'; start the f-string with a dotted"
                " component prefix (e.g. '<component>.<stream>.') so the"
                " family cannot overlap other subsystems' names",
            )
        return None


@register
class TransitiveNondeterminism(ProjectRule):
    rule_id = "DET006"
    title = "simulated code reaching wall clock / global RNG transitively"
    rationale = (
        "DET001-DET003 check one file at a time, so a simulated function"
        " calling a helper in analysis/ or util/ that reads time.time()"
        " or random.random() passes the per-file pack untouched. The"
        " call-graph closure closes that hole: simulated code must stay"
        " on the simulator clock and named streams no matter how many"
        " hops the hazard hides behind."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        routes = index.hazard_routes()
        for fragment in index.fragments:
            if index.modules[fragment.module] is not fragment:
                continue
            if not fragment.in_package(*SIMULATED_PACKAGES):
                continue
            if fragment.is_module("sim", "rng.py"):
                continue
            for info in fragment.functions:
                qname = f"{fragment.module}.{info.qname}"
                hop = routes.get(qname)
                if hop is None:
                    continue
                _, endpoint, hazard = hop
                chain = index.hazard_chain(qname, routes)
                kind = ("wall-clock" if hazard.kind == "wall_clock"
                        else "global-RNG")
                yield Finding(
                    self.rule_id, fragment.path, info.line, info.col,
                    f"'{info.qname}' reaches {kind} call"
                    f" '{hazard.detail}' in non-simulated code via"
                    f" {' -> '.join(chain)}; simulated code must use the"
                    " simulator clock / named streams even through"
                    " helpers",
                )


@register
class ImportCycle(ProjectRule):
    rule_id = "IMP001"
    title = "import cycle between indexed modules"
    rationale = (
        "Import cycles make module initialization order-dependent:"
        " which half-initialized module you observe depends on the"
        " entry point, the classic source of 'works from the CLI, fails"
        " from tests' bugs. Break cycles with a lazy (function-scoped)"
        " import or an 'if TYPE_CHECKING:' guard — both are excluded"
        " from this graph on purpose."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        graph = index.import_graph()
        for scc in _strongly_connected(graph):
            if len(scc) < 2:
                continue
            members = sorted(scc)
            head = members[0]
            cycle = _cycle_order(graph, head, scc)
            fragment = index.modules[head]
            line = min(
                (edge_line for target, edge_line in graph.get(head, [])
                 if target in scc),
                default=1,
            )
            yield Finding(
                self.rule_id, fragment.path, line, 0,
                "import cycle: " + " -> ".join(cycle + [head]) + "; break"
                " it with a lazy (function-scoped) import or an"
                " 'if TYPE_CHECKING:' guard",
            )


def _strongly_connected(
    graph: Dict[str, List[Tuple[str, int]]]
) -> List[Set[str]]:
    """Tarjan's algorithm, iterative, deterministic over sorted nodes."""
    index_of: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[Set[str]] = []
    counter = [0]

    def neighbors(node: str) -> List[str]:
        return sorted({t for t, _ in graph.get(node, []) if t in graph})

    for root in sorted(graph):
        if root in index_of:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = neighbors(node)
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                scc: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return sccs


def _cycle_order(
    graph: Dict[str, List[Tuple[str, int]]], head: str, scc: Set[str]
) -> List[str]:
    """A deterministic walk through the SCC starting at ``head``."""
    order = [head]
    seen = {head}
    current = head
    while True:
        nxt = min(
            (t for t, _ in graph.get(current, [])
             if t in scc and t not in seen),
            default=None,
        )
        if nxt is None:
            break
        order.append(nxt)
        seen.add(nxt)
        current = nxt
    order.extend(sorted(scc - seen))
    return order


#: Methods on a set that return another set.
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

#: Builtins that consume iteration order (conversions keep the arbitrary
#: order; ``sorted``/``min``/``max``/``sum``/``len`` and membership do
#: not depend on it).
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "enumerate"})

#: Builtins whose *result* does not depend on iteration order, so a
#: comprehension feeding them directly is harmless even over a set.
_ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "any", "all", "sum", "min", "max", "sorted", "len", "set", "frozenset",
})


@register
class SetIterationInSim(Rule):
    rule_id = "ORD001"
    title = "iteration over a set in a simulated package"
    rationale = (
        "Set iteration order depends on insertion history and string"
        " hashing; when it feeds scheduling or draws, two runs of the"
        " 'same' experiment diverge. Iterate sorted(...) or keep an"
        " ordered container (dict keys preserve insertion order);"
        " membership tests, len(), and sorted()/min()/max() are fine."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not ctx.in_package(*SIMULATED_PACKAGES):
            return
        set_defs = _collect_set_returning_defs(ctx.tree)
        for scope_node, set_names, set_attrs in _iter_scopes(ctx.tree):
            yield from self._check_scope(ctx, scope_node, set_names,
                                         set_attrs, set_defs)

    def _check_scope(
        self,
        ctx: LintContext,
        body: Sequence[ast.stmt],
        set_names: Set[str],
        set_attrs: Set[str],
        set_defs: Set[str],
    ) -> Iterator[Finding]:
        def is_set(expr: ast.expr) -> bool:
            return _is_set_expr(expr, set_names, set_attrs, set_defs)

        # Comprehensions handed straight to an order-insensitive
        # consumer (any(x in s for ...), sum(...), min(...)) cannot leak
        # set order into results; exempt them.
        exempt: Set[int] = set()
        for node in _walk_scope(body):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if len(chain) == 1 and chain[0] in (
                    _ORDER_INSENSITIVE_CONSUMERS
                ):
                    exempt.update(id(arg) for arg in node.args)

        for node in _walk_scope(body):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set(node.iter):
                    yield self._finding(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp,
                                   ast.GeneratorExp)):
                # (a set comprehension *over* a set keeps orderlessness,
                # so ast.SetComp is deliberately not in this list)
                if id(node) in exempt:
                    continue
                for generator in node.generators:
                    if is_set(generator.iter):
                        yield self._finding(ctx, generator.iter)
            elif isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if (
                    len(chain) == 1
                    and chain[0] in _ORDER_SENSITIVE_BUILTINS
                    and node.args
                    and is_set(node.args[0])
                ):
                    yield self._finding(ctx, node.args[0])

    def _finding(self, ctx: LintContext, expr: ast.expr) -> Finding:
        label = ""
        if isinstance(expr, ast.Name):
            label = f" '{expr.id}'"
        else:
            chain = attr_chain(expr)
            if chain:
                label = f" '{'.'.join(chain)}'"
        return ctx.finding(
            self.rule_id, expr,
            f"iteration over set{label} in simulated code; set order is"
            " not deterministic across runs — iterate sorted(...) or use"
            " an ordered container",
        )


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[Tuple[Sequence[ast.stmt], Set[str], Set[str]]]:
    """Yield (body, set-valued names, set-valued self attrs) per scope.

    Module scope first, then every function (methods see the set-valued
    ``self.X`` attributes assigned anywhere in their class).
    """
    module_sets = _collect_set_names(tree.body)

    def walk(
        body: Sequence[ast.stmt], inherited: Set[str], self_attrs: Set[str]
    ) -> Iterator[Tuple[Sequence[ast.stmt], Set[str], Set[str]]]:
        for node in _scope_children(body):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = _collect_set_names(node.body)
                yield node.body, inherited | local, self_attrs
                yield from walk(node.body, inherited | local, self_attrs)
            elif isinstance(node, ast.ClassDef):
                attrs = _collect_self_set_attrs(node)
                yield from walk(node.body, inherited, attrs)

    yield tree.body, module_sets, set()
    yield from walk(tree.body, module_sets, set())


def _scope_children(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Function/class definitions belonging to this scope, at any
    statement nesting depth (inside ``if``/``try``/``with`` blocks) but
    not inside nested scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            yield node
            continue
        stack.extend(ast.iter_child_nodes(node))


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk one scope's statements without descending into nested
    function/class scopes (those are visited as their own scopes)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _collect_set_names(body: Sequence[ast.stmt]) -> Set[str]:
    """Names assigned a syntactic set in this scope and never re-bound
    to anything else (conservative: one contrary assignment unmarks)."""
    sets: Set[str] = set()
    rebound: Set[str] = set()
    for node in _walk_scope(body):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if target is None or not isinstance(target, ast.Name):
            continue
        assert value is not None
        if _is_syntactic_set(value):
            sets.add(target.id)
        else:
            rebound.add(target.id)
    return sets - rebound


def _collect_self_set_attrs(cls: ast.ClassDef) -> Set[str]:
    attrs: Set[str] = set()
    rebound: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id == "self":
                if _is_syntactic_set(node.value):
                    attrs.add(target.attr)
                else:
                    rebound.add(target.attr)
    return attrs - rebound


def _is_syntactic_set(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        chain = attr_chain(expr.func)
        if len(chain) == 1 and chain[0] in ("set", "frozenset"):
            return True
    return False


#: Return-annotation names that mark a function as set-returning.
_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet",
})


def _annotation_is_set(annotation: ast.expr) -> bool:
    """Does a return annotation denote a set type (``Set[str]``,
    ``set``, ``typing.FrozenSet[int]``, or their string forms)?"""
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        head = annotation.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    chain = attr_chain(annotation)
    return bool(chain) and chain[-1] in _SET_ANNOTATIONS


def _collect_set_returning_defs(tree: ast.Module) -> Set[str]:
    """Names of functions/methods defined in this module whose return
    annotation is a set type — calling one yields an unordered value
    just like a set literal (``self.servers_for_room(...)`` et al.)."""
    defs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.returns is not None and _annotation_is_set(node.returns):
                defs.add(node.name)
    return defs


def _is_set_expr(
    expr: ast.expr,
    set_names: Set[str],
    set_attrs: Set[str],
    set_defs: Set[str] = frozenset(),  # type: ignore[assignment]
) -> bool:
    if _is_syntactic_set(expr):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    chain = attr_chain(expr)
    if len(chain) == 2 and chain[0] == "self" and chain[1] in set_attrs:
        return True
    if isinstance(expr, ast.Call):
        func_chain = attr_chain(expr.func)
        # A call to a locally-defined function/method annotated to
        # return a set (plain `servers_for_room(...)` or
        # `self.servers_for_room(...)`).
        if func_chain and func_chain[-1] in set_defs:
            return True
        if len(func_chain) >= 2 and func_chain[-1] in (
            _SET_RETURNING_METHODS
        ):
            receiver: ast.expr = expr.func
            while isinstance(receiver, ast.Attribute):
                receiver = receiver.value
            if isinstance(receiver, ast.Name) and (
                receiver.id in set_names
            ):
                return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return (
            _is_set_expr(expr.left, set_names, set_attrs, set_defs)
            or _is_set_expr(expr.right, set_names, set_attrs, set_defs)
        )
    return False
