"""Named, seeded random-number streams.

Every stochastic component in the library draws from its own named stream so
that (a) whole experiments are reproducible from a single root seed, and
(b) adding randomness to one component does not perturb the draws another
component sees (the classic "common random numbers" discipline from the
simulation literature).

Example::

    streams = RngStreams(root_seed=42)
    churn_rng = streams.stream("churn")
    link_rng = streams.stream("links")
    # churn_rng draws never affect link_rng draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    import numpy

__all__ = ["RngStreams", "derive_seed", "seeded_generator", "seeded_rng"]

T = TypeVar("T")


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    platforms (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_rng(root_seed: int, name: str) -> random.Random:
    """A standalone ``random.Random`` on the named stream.

    For free functions that take a ``seed`` argument but no
    :class:`RngStreams` (e.g. topology builders): the name keeps their
    draws decorrelated from every other consumer of the same root seed,
    exactly like :meth:`RngStreams.stream`.
    """
    return random.Random(derive_seed(root_seed, name))


def seeded_generator(root_seed: int, name: str) -> "numpy.random.Generator":
    """A ``numpy.random.Generator`` (PCG64) on the named stream.

    The vectorized sibling of :func:`seeded_rng`, used by the cohort
    engine (:mod:`repro.sim.cohort`) for whole-array draws.  The child
    seed comes from the same :func:`derive_seed` mapping, so scalar and
    vectorized consumers share one stream namespace without sharing (or
    perturbing) each other's draw sequences.

    This is the one sanctioned constructor for numpy generators: the
    DET004 lint rule flags ungoverned ``Generator``/``default_rng``
    construction anywhere else in the library.
    """
    import numpy

    return numpy.random.Generator(numpy.random.PCG64(derive_seed(root_seed, name)))


class RngStreams:
    """A factory for independent, named ``random.Random`` streams.

    Requesting the same name twice returns the same stream object, so
    components can share a stream by agreeing on its name.
    """

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}
        self._generators: Dict[str, "numpy.random.Generator"] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def generator(self, name: str) -> "numpy.random.Generator":
        """The vectorized (numpy) stream for ``name``, created on first use.

        Generators live in their own namespace-by-type: ``stream(n)`` and
        ``generator(n)`` share a child seed but never each other's state,
        so mixing scalar and array draws under one name stays safe.
        """
        gen = self._generators.get(name)
        if gen is None:
            gen = seeded_generator(self.root_seed, name)
            self._generators[name] = gen
        return gen

    def fork(self, name: str) -> "RngStreams":
        """Create a child stream-space, e.g. one per simulated node."""
        return RngStreams(derive_seed(self.root_seed, f"fork:{name}"))

    def names(self) -> List[str]:
        """Names of every stream created so far (for debugging)."""
        return sorted(self._streams)

    # -- convenience draws used pervasively ------------------------------

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on the named stream."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, lo: float, hi: float) -> float:
        return self.stream(name).uniform(lo, hi)

    def choice(self, name: str, seq: Sequence[T]) -> T:
        return self.stream(name).choice(seq)

    def sample(self, name: str, population: Sequence[T], k: int) -> List[T]:
        return self.stream(name).sample(population, k)

    def shuffled(self, name: str, items: Iterable[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (the input is untouched)."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
