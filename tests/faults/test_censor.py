"""Censorship campaigns: Censor plan events, border semantics, relay
detection and re-blocking, and the censor cost model."""

import pytest

from repro.errors import FaultError
from repro.faults import Censor, FaultInjector, FaultPlan
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator


def build(seed=1, inside=("in0", "in1"), outside=("svc0", "relay0", "relay1")):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.05))
    for node_id in (*inside, *outside):
        network.create_node(node_id)
    return sim, streams, network


def campaign(**overrides):
    fields = dict(
        inside=("in0", "in1"),
        at=10.0,
        heal_at=200.0,
        blocked=("svc0",),
        direction="outbound",
        degrade_prob=0.0,
        fingerprints=("relay.",),
        detect_prob=0.0,
        reblock_delay=0.0,
    )
    fields.update(overrides)
    return Censor(**fields)


class TestCensorEvent:
    def test_validation_rejects_bad_fields(self):
        with pytest.raises(FaultError):
            Censor(inside=(), at=0.0)
        with pytest.raises(FaultError):
            campaign(blocked=("in0",))  # blocked must be outside
        with pytest.raises(FaultError):
            campaign(heal_at=5.0)  # heal before start
        with pytest.raises(FaultError):
            campaign(direction="inbound")
        with pytest.raises(FaultError):
            campaign(detect_prob=1.5)
        with pytest.raises(FaultError):
            campaign(degrade_prob=-0.1)
        with pytest.raises(FaultError):
            campaign(fingerprints=("",))
        with pytest.raises(FaultError):
            campaign(reblock_delay=-1.0)

    def test_round_trips_through_json(self):
        plan = FaultPlan([campaign(degrade_prob=0.25, detect_prob=0.5,
                                   reblock_delay=3.0)],
                         name="border")
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.fingerprint() == plan.fingerprint()
        event = restored.events[0]
        assert isinstance(event, Censor)
        assert event.inside == ("in0", "in1")
        assert event.fingerprints == ("relay.",)
        assert event.detect_prob == 0.5

    def test_node_ids_cover_inside_and_blocked(self):
        plan = FaultPlan([campaign()])
        assert plan.node_ids() == ["in0", "in1", "svc0"]

    def test_arm_validates_node_ids(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(blocked=("ghost",))])
        with pytest.raises(FaultError):
            FaultInjector(sim, network, plan, streams).arm()


class TestBorderSemantics:
    def test_outbound_block_is_asymmetric(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign()])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=5.0)
        assert network.can_reach("in0", "svc0")  # campaign not yet open
        sim.run(until=20.0)
        assert injector.censor_active
        # inside -> blocked outside endpoint: hard block
        assert not network.can_reach("in0", "svc0")
        # the reverse direction is merely degraded, not blocked
        assert network.can_reach("svc0", "in0")
        # non-blocklisted cross-border endpoints still reachable
        assert network.can_reach("in0", "relay0")
        # purely-inside and purely-outside traffic untouched
        assert network.can_reach("in0", "in1")
        assert network.can_reach("svc0", "relay0")
        sim.run(until=250.0)
        assert not injector.censor_active
        assert network.can_reach("in0", "svc0")
        assert injector.last_heal_at == 200.0

    def test_both_direction_blocks_both_ways(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(direction="both")])
        FaultInjector(sim, network, plan, streams).arm()
        sim.run(until=20.0)
        assert not network.can_reach("in0", "svc0")
        assert not network.can_reach("svc0", "in0")

    def test_blocked_message_dropped_with_censor_reason(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign()])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        delivered = []
        network.node("svc0").register_handler(
            "m", lambda node, payload, sender: delivered.append(payload))
        sim.schedule_at(20.0, network.send, "in0", "svc0", "m", 1)
        sim.run(until=30.0)
        assert delivered == []
        assert network.monitor.counters.get("messages_censored") == 1
        assert injector.censor_cost()["blocked_flows"] == 1

    def test_degrade_drops_probabilistically_inbound(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(degrade_prob=0.5, heal_at=None)])
        FaultInjector(sim, network, plan, streams).arm()
        delivered = []
        network.node("in0").register_handler(
            "m", lambda node, payload, sender: delivered.append(payload))
        for i in range(200):
            sim.schedule_at(20.0 + i, network.send, "svc0", "in0", "m", i)
        sim.run(until=300.0)
        # roughly half survive; all-blocked or all-pass would be a bug
        assert 40 < len(delivered) < 160
        censored = network.monitor.counters.get("messages_censored")
        assert censored == 200 - len(delivered)

    def test_mid_flight_campaign_kills_in_flight_message(self):
        # The censor verdict is consulted at delivery time, so a message
        # launched just before the border goes up still dies at it.
        sim, streams, network = build()
        plan = FaultPlan([campaign(at=10.0)])
        FaultInjector(sim, network, plan, streams).arm()
        delivered = []
        network.node("svc0").register_handler(
            "m", lambda node, payload, sender: delivered.append(payload))
        sim.schedule_at(9.99, network.send, "in0", "svc0", "m", 1)
        sim.run(until=20.0)
        assert delivered == []
        assert network.monitor.counters.get("messages_censored") == 1


class TestDetectionAndReblock:
    def test_relay_detected_and_reblocked_after_delay(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(detect_prob=1.0, reblock_delay=5.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        network.node("relay0").register_handler(
            "relay.fwd", lambda node, payload, sender: None)
        sim.schedule_at(20.0, network.send, "in0", "relay0", "relay.fwd", 1)
        sim.run(until=22.0)
        # detected immediately, but the block order is still in flight
        assert network.can_reach("in0", "relay0")
        sim.run(until=30.0)
        assert not network.can_reach("in0", "relay0")
        assert injector.relays_reblocked == 1
        assert injector.censor_cost()["relays_reblocked"] == 1

    def test_unfingerprinted_traffic_is_never_detected(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(detect_prob=1.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        network.node("relay0").register_handler(
            "fetch", lambda node, payload, sender: None)
        for i in range(10):
            sim.schedule_at(20.0 + i, network.send, "in0", "relay0",
                            "fetch", i)
        sim.run(until=50.0)
        assert network.can_reach("in0", "relay0")
        assert injector.relays_reblocked == 0

    def test_each_relay_detected_at_most_once(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(detect_prob=1.0, reblock_delay=1.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        network.node("relay0").register_handler(
            "relay.fwd", lambda node, payload, sender: None)
        for i in range(5):
            sim.schedule_at(20.0 + 0.01 * i, network.send, "in0", "relay0",
                            "relay.fwd", i)
        sim.run(until=40.0)
        assert injector.relays_reblocked == 1

    def test_reblock_after_heal_is_a_noop(self):
        sim, streams, network = build()
        plan = FaultPlan([campaign(at=10.0, heal_at=25.0, detect_prob=1.0,
                                   reblock_delay=10.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        network.node("relay0").register_handler(
            "relay.fwd", lambda node, payload, sender: None)
        sim.schedule_at(20.0, network.send, "in0", "relay0", "relay.fwd", 1)
        sim.run(until=40.0)  # reblock lands at ~30, after the 25.0 heal
        assert injector.relays_reblocked == 0
        assert network.can_reach("in0", "relay0")

    def test_detection_emits_traces_and_metrics(self):
        from repro.obs import Metrics, Tracer

        tracer, metrics = Tracer(), Metrics()
        sim = Simulator(tracer=tracer, metrics=metrics)
        streams = RngStreams(1)
        network = Network(sim, streams, latency=ConstantLatency(0.05))
        for node_id in ("in0", "in1", "svc0", "relay0", "relay1"):
            network.create_node(node_id)
        plan = FaultPlan([campaign(detect_prob=1.0, reblock_delay=2.0)])
        FaultInjector(sim, network, plan, streams).arm()
        network.node("relay0").register_handler(
            "relay.fwd", lambda node, payload, sender: None)
        sim.schedule_at(20.0, network.send, "in0", "relay0",
                        "relay.fwd", 1)
        sim.run(until=40.0)
        kinds = [e["kind"] for e in tracer.events]
        assert "censor_detected" in kinds
        assert "censor_reblocked" in kinds
        assert metrics.counter("faults.censor.detected") == 1
        assert metrics.counter("faults.censor.reblocked") == 1


class TestCampaignComposition:
    def test_overlapping_campaigns_heal_only_the_active_one(self):
        # Same guarded-heal discipline as partitions: A(10-100) replaced
        # by B(50-150); A's heal must not lift B's border.
        sim, streams, network = build()
        plan = FaultPlan([
            campaign(at=10.0, heal_at=100.0, blocked=("svc0",)),
            campaign(at=50.0, heal_at=150.0, blocked=("relay0",)),
        ])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=60.0)
        assert not network.can_reach("in0", "relay0")  # B active
        assert network.can_reach("in0", "svc0")  # A's blocklist replaced
        sim.run(until=120.0)  # past A's heal
        assert injector.censor_active
        assert not network.can_reach("in0", "relay0")
        assert injector.last_heal_at is None
        assert injector.healed == 0
        sim.run(until=160.0)
        assert not injector.censor_active
        assert injector.last_heal_at == 150.0
        assert injector.healed == 1

    def test_replaced_campaign_cost_is_not_lost(self):
        sim, streams, network = build()
        plan = FaultPlan([
            campaign(at=10.0, heal_at=100.0, blocked=("svc0",)),
            campaign(at=50.0, heal_at=150.0, blocked=("relay0",)),
        ])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.schedule_at(20.0, network.send, "in0", "svc0", "m", 1)  # A kills
        sim.schedule_at(60.0, network.send, "in0", "relay0", "m", 2)  # B kills
        sim.run(until=200.0)
        cost = injector.censor_cost()
        assert cost["blocked_flows"] == 2

    def test_censor_and_partition_occupy_separate_slots(self):
        from repro.faults import Partition

        sim, streams, network = build()
        plan = FaultPlan([
            Partition((("in0",), ("in1",)), at=10.0, heal_at=30.0),
            campaign(at=20.0, heal_at=40.0),
        ])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=25.0)
        assert injector.partition_active and injector.censor_active
        sim.run(until=35.0)  # partition healed, campaign still up
        assert not injector.partition_active
        assert injector.censor_active
        assert not network.can_reach("in0", "svc0")
        sim.run(until=50.0)
        assert not injector.censor_active
        assert injector.injected == 2 and injector.healed == 2

    def test_faults_quiet_sees_open_campaign(self):
        from repro.faults import InvariantContext

        sim, streams, network = build()
        plan = FaultPlan([campaign(at=10.0, heal_at=30.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        ctx = InvariantContext(sim=sim, network=network, injector=injector)
        sim.run(until=20.0)
        assert not ctx.faults_quiet
        sim.run(until=40.0)
        assert ctx.faults_quiet


class TestRngIsolation:
    def test_campaign_does_not_perturb_base_loss_stream(self):
        """Detection/degrade draws must not shift net.loss decisions."""

        def survivors(plan):
            sim = Simulator()
            streams = RngStreams(9)
            network = Network(sim, streams, latency=ConstantLatency(0.05),
                              loss_rate=0.3)
            for node_id in ("in0", "in1", "svc0", "relay0", "relay1"):
                network.create_node(node_id)
            FaultInjector(sim, network, plan, streams).arm()
            received = []
            network.node("in1").register_handler(
                "m", lambda node, payload, sender: received.append(payload))
            for i in range(40):
                sim.schedule_at(float(i), network.send, "in0", "in1", "m", i)
            sim.run(until=100.0)
            return received

        quiet = survivors(FaultPlan([]))
        # inside->inside traffic never crosses the border, so the only
        # way the campaign could change it is by stealing loss draws.
        noisy = survivors(FaultPlan([
            campaign(at=0.5, heal_at=90.0, degrade_prob=0.5,
                     detect_prob=0.5),
        ]))
        assert noisy == quiet
