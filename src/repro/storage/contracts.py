"""Storage deals and payment rails.

The paper's Table 2 observation: most decentralized storage systems use a
blockchain to record contracts and move payments, while IPFS/MaidSafe use
direct pairwise accounting.  Both rails are implemented behind one
interface so the marketplace and the incentive experiments can swap them:

* :class:`DirectLedger` — instant pairwise balances (Bitswap-ledger-like);
* :class:`ChainRail` — escrowed on-chain contracts
  (:mod:`repro.chain.ledger`'s CONTRACT_OPEN/CLOSE), paying the
  confirmation-latency cost the paper attributes to blockchains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, Optional

from repro.errors import ContractError
from repro.storage.proofs import Commitment

__all__ = ["DealState", "StorageDeal", "DirectLedger", "ChainRail"]


class DealState:
    ACTIVE = "active"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class StorageDeal:
    """One storage agreement between a consumer and a provider."""

    deal_id: str
    consumer: str
    provider_id: str
    commitment: Commitment
    size_bytes: int
    price_per_epoch: float
    epochs_total: int
    proof_kind: str
    state: str = DealState.ACTIVE
    epochs_paid: int = 0
    epochs_failed: int = 0

    @property
    def total_price(self) -> float:
        return self.price_per_epoch * self.epochs_total

    @property
    def remaining_escrow(self) -> float:
        return self.total_price - self.epochs_paid * self.price_per_epoch


class DirectLedger:
    """Instant pairwise balances: the no-blockchain rail."""

    def __init__(self) -> None:
        self._balances: Dict[str, float] = {}
        self._escrow: Dict[str, float] = {}

    def credit(self, account: str, amount: float) -> None:
        if amount < 0:
            raise ContractError(f"cannot credit negative amount {amount}")
        self._balances[account] = self._balances.get(account, 0.0) + amount

    def balance(self, account: str) -> float:
        return self._balances.get(account, 0.0)

    def escrowed(self, deal_id: str) -> float:
        return self._escrow.get(deal_id, 0.0)

    def open_escrow(
        self, deal_id: str, consumer: str, amount: float, provider: str = ""
    ) -> Generator:
        """Lock consumer funds for a deal (instant; generator for rail
        interface uniformity).  ``provider`` is unused on this rail."""
        if self._balances.get(consumer, 0.0) < amount:
            raise ContractError(
                f"{consumer!r} cannot escrow {amount}: balance"
                f" {self._balances.get(consumer, 0.0)}"
            )
        if deal_id in self._escrow:
            raise ContractError(f"escrow for {deal_id!r} already open")
        self._balances[consumer] -= amount
        self._escrow[deal_id] = amount
        if False:  # pragma: no cover - generator-shape marker
            yield
        return deal_id

    def pay_from_escrow(self, deal_id: str, provider: str, amount: float) -> None:
        held = self._escrow.get(deal_id, 0.0)
        if held + 1e-9 < amount:
            raise ContractError(
                f"escrow {deal_id!r} holds {held}, cannot pay {amount}"
            )
        self._escrow[deal_id] = held - amount
        self.credit(provider, amount)

    def refund_escrow(self, deal_id: str, consumer: str) -> float:
        held = self._escrow.pop(deal_id, 0.0)
        self.credit(consumer, held)
        return held

    def total_supply(self) -> float:
        return sum(self._balances.values()) + sum(self._escrow.values())


class ChainRail:
    """Escrow and settlement on the simulated blockchain.

    Slower (confirmation latency) but auditable by every participant —
    the trade Table 2's blockchain-using systems make.
    """

    def __init__(self, chain_network, reference, keypairs: Dict[str, Any],
                 confirmations: int = 3, fee: float = 0.05):
        self.chain = chain_network
        self.reference = reference
        self.keypairs = dict(keypairs)  # account name -> KeyPair
        self.confirmations = confirmations
        self.fee = fee

    def balance(self, account: str) -> float:
        keypair = self._keypair(account)
        return self.reference.chain.state_at().balance(keypair.public_key)

    def _keypair(self, account: str):
        keypair = self.keypairs.get(account)
        if keypair is None:
            raise ContractError(f"no keypair registered for {account!r}")
        return keypair

    def _submit_and_wait(self, tx) -> Generator:
        from repro.chain.transaction import Transaction  # typing only

        self.chain.submit_transaction(tx, origin=self.reference.name)
        poll = self.chain.params.target_block_interval / 4
        deadline = self.reference.chain.height + 100
        while True:
            yield poll
            height = self.reference.chain.find_transaction(tx.txid)
            if height is not None:
                if self.reference.chain.height - height + 1 >= self.confirmations:
                    return height
            elif self.reference.chain.height > deadline:
                raise ContractError(f"tx {tx.txid[:12]} never confirmed")

    def open_escrow(
        self, deal_id: str, consumer: str, amount: float, provider: str = ""
    ) -> Generator:
        from repro.chain.transaction import TxKind, make_transaction

        keypair = self._keypair(consumer)
        provider_keypair = self._keypair(provider) if provider else keypair
        state = self.reference.chain.state_at()
        tx = make_transaction(
            keypair,
            TxKind.CONTRACT_OPEN,
            {
                "contract_id": deal_id,
                "provider": provider_keypair.public_key,
                "escrow": amount,
                "terms": {"deal_id": deal_id},
            },
            state.next_nonce(keypair.public_key),
            fee=self.fee,
        )
        yield from self._submit_and_wait(tx)
        return deal_id

    def close_with_share(
        self, deal_id: str, consumer: str, provider_share: float
    ) -> Generator:
        from repro.chain.transaction import TxKind, make_transaction

        keypair = self._keypair(consumer)
        state = self.reference.chain.state_at()
        tx = make_transaction(
            keypair,
            TxKind.CONTRACT_CLOSE,
            {"contract_id": deal_id, "provider_share": provider_share},
            state.next_nonce(keypair.public_key),
            fee=self.fee,
        )
        yield from self._submit_and_wait(tx)
        return deal_id
