"""Unit tests for the metrics registry and streaming histograms."""

import json
import math

import pytest

from repro.obs import Metrics
from repro.obs.metrics import RAW_SAMPLE_CAP, Histogram, _bucket_of


class TestHistogram:
    def test_streaming_aggregates(self):
        hist = Histogram()
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0
        assert hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_empty_mean_and_percentile_raise(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.mean
        with pytest.raises(ValueError):
            hist.percentile(0.5)

    def test_percentiles_nearest_rank(self):
        hist = Histogram()
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(0.50) == 50.0
        assert hist.percentile(0.90) == 90.0
        assert hist.percentile(0.99) == 99.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 100.0

    def test_raw_retention_caps_but_aggregates_stay_exact(self):
        hist = Histogram()
        n = RAW_SAMPLE_CAP + 100
        for value in range(n):
            hist.observe(float(value))
        assert hist.count == n
        assert len(hist.values()) == RAW_SAMPLE_CAP
        assert hist.truncated
        assert hist.maximum == float(n - 1)  # exact despite truncation
        assert hist.summary()["truncated"] is True

    def test_merge_combines_runs(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        a.observe(2.0)
        b.observe(10.0)
        a.merge(b)
        assert a.count == 3
        assert a.maximum == 10.0
        assert a.total == 13.0
        assert sorted(a.values()) == [1.0, 2.0, 10.0]

    def test_summary_empty(self):
        assert Histogram().summary() == {"count": 0}

    def test_summary_fields(self):
        hist = Histogram()
        for value in (0.5, 1.5, 2.5):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 0.5
        assert summary["max"] == 2.5
        assert summary["mean"] == pytest.approx(1.5)
        assert "p50" in summary and "p99" in summary
        assert "truncated" not in summary

    def test_bucket_edges(self):
        assert _bucket_of(0.0) == 0
        assert _bucket_of(0.999) == 0
        assert _bucket_of(1.0) == 1
        assert _bucket_of(2.0) == 2
        assert _bucket_of(1024.0) == 11
        assert _bucket_of(-1.0) < 0
        assert _bucket_of(math.inf) == _bucket_of(math.nan)


class TestMetrics:
    def test_counters(self):
        metrics = Metrics()
        metrics.inc("a")
        metrics.inc("a", 4)
        assert metrics.counter("a") == 5
        assert metrics.counter("missing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Metrics().inc("a", -1)

    def test_gauges(self):
        metrics = Metrics()
        metrics.set_gauge("g", 1.5)
        metrics.set_gauge("g", 2.5)  # last write wins
        assert metrics.gauge("g") == 2.5
        assert metrics.gauge("missing") == 0.0
        assert metrics.gauge("missing", -1.0) == -1.0

    def test_observe_creates_histogram(self):
        metrics = Metrics()
        metrics.observe("h", 1.0)
        metrics.observe("h", 3.0)
        assert metrics.histogram("h").count == 2
        assert metrics.histogram("h").mean == 2.0

    def test_names_sorted_by_kind_then_name(self):
        metrics = Metrics()
        metrics.inc("z.count")
        metrics.inc("a.count")
        metrics.set_gauge("m.gauge", 1.0)
        metrics.observe("h.hist", 1.0)
        assert list(metrics.names()) == [
            ("counter", "a.count"),
            ("counter", "z.count"),
            ("gauge", "m.gauge"),
            ("histogram", "h.hist"),
        ]

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.inc("c", 2)
        b.inc("c", 3)
        b.set_gauge("g", 9.0)
        b.observe("h", 1.0)
        a.merge(b)
        assert a.counter("c") == 5
        assert a.gauge("g") == 9.0
        assert a.histogram("h").count == 1

    def test_snapshot_is_sorted_and_json_able(self):
        metrics = Metrics()
        metrics.inc("b")
        metrics.inc("a")
        metrics.observe("lat", 0.25)
        metrics.set_gauge("util", 0.5)
        snapshot = metrics.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a", "b"]
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(snapshot)) == snapshot
