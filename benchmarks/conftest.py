"""Shared bench plumbing.

Each bench regenerates one paper table or one DESIGN.md experiment and
prints the rows (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them).  Benches assert the *shape* of each result — who wins, by
roughly what factor, where crossovers fall — per the reproduction targets
in DESIGN.md §3.
"""

import pytest


def emit(title: str, body: str) -> None:
    """Print a bench artifact under a clear banner."""
    print(f"\n=== {title} ===\n{body}")
