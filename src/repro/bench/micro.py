"""Micro benchmarks: tight loops over one library primitive each.

Each body does a fixed, seed-derived amount of work against the
primitive it names — the event loop, a transport leg, an RPC
round-trip, a named RNG stream, the metrics histogram — and records
work counters into the harness-supplied registry.  Sizes are chosen so
a body lands in the low tens of milliseconds: long enough to time
meaningfully, short enough that CI can afford repetitions.

Per the BEN001 contract, nothing here reads the host clock; the harness
(:mod:`repro.bench.harness`) does all timing.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.bench.registry import register_benchmark
from repro.net.node import Node
from repro.net.transport import Network
from repro.obs.metrics import Histogram, Metrics
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams, seeded_rng

__all__ = [
    "bench_cohort_step",
    "bench_engine_schedule_fire_cancel",
    "bench_histogram_observe_merge",
    "bench_lint_index",
    "bench_rng_stream_draw",
    "bench_rpc_roundtrip",
    "bench_shard_sync",
    "bench_transport_send_deliver",
]

#: Loop sizes, fixed so work counters are identical everywhere.
_ENGINE_EVENTS = 6000
_COHORT_DEVICES = 50_000
_COHORT_HORIZON = 2000.0
_COHORT_TICK = 50.0
_SEND_MESSAGES = 1500
_RPC_ROUNDS = 400
_RNG_DRAWS_PER_STREAM = 20000
_HIST_SHARDS = 6
_HIST_OBSERVATIONS_PER_SHARD = 1500
_LINT_HELPERS = 12
_LINT_SIM_MODULES = 84
_SHARD_NODES = 6
_SHARD_HOPS = 40
_SHARD_COUNT = 2


def _noop() -> None:
    return None


@register_benchmark(
    "micro.engine.schedule_fire_cancel", "micro",
    "schedule/cancel/fire a dense event queue through Simulator.run",
)
def bench_engine_schedule_fire_cancel(metrics: Metrics) -> None:
    sim = Simulator(metrics=metrics)
    events = [
        sim.schedule(float(i % 50), _noop) for i in range(_ENGINE_EVENTS)
    ]
    # Cancel every third event: exercises tombstoning and drain.
    for event in events[::3]:
        event.cancel()
    sim.run()


@register_benchmark(
    "micro.transport.send_deliver", "micro",
    "one-way message legs (send -> deliver) across a two-node fabric",
)
def bench_transport_send_deliver(metrics: Metrics) -> None:
    sim = Simulator(metrics=metrics)
    network = Network(sim, RngStreams(1009))
    network.create_node("src")
    sink = network.create_node("dst")
    sink.register_handler("ping", _return_payload)
    for i in range(_SEND_MESSAGES):
        network.send("src", "dst", "ping", payload=i)
    sim.run()


def _return_payload(node: Node, payload: Any, sender_id: str) -> Any:
    return payload


@register_benchmark(
    "micro.transport.rpc_roundtrip", "micro",
    "request/response RPC round-trips through AnyOf(response, timeout)",
)
def bench_rpc_roundtrip(metrics: Metrics) -> None:
    sim = Simulator(metrics=metrics)
    network = Network(sim, RngStreams(2003))
    network.create_node("client")
    server = network.create_node("server")
    server.register_handler("echo", _return_payload)

    def client(sim: Simulator, network: Network) -> Generator:
        for i in range(_RPC_ROUNDS):
            yield from network.rpc("client", "server", "echo", payload=i)

    sim.run_process(client(sim, network), name="bench.rpc_client")


def _shard_token_workload() -> Any:
    """A token ring across shards: every hop is a barrier crossing
    candidate, so the body is dominated by the sync loop itself."""
    from repro.net.latency import ConstantLatency
    from repro.sim.shard import Shard, ShardWorkload

    ids = tuple(f"r{i}" for i in range(_SHARD_NODES))

    def build(shard: Shard) -> None:
        network, sim = shard.network, shard.sim
        hops = {"count": 0}
        shard.state["hops"] = hops

        def on_token(node: Node, payload: Any, sender_id: str) -> None:
            hops["count"] += 1
            if payload["ttl"] > 0:
                index = ids.index(node.node_id)
                network.send(node.node_id, ids[(index + 1) % len(ids)],
                             "token", {"ttl": payload["ttl"] - 1})

        for node_id in ids:
            node = network.add_node(Node(node_id))
            node.register_handler("token", on_token)
        for i, node_id in enumerate(ids):
            if shard.owns(node_id):
                sim.schedule_at(
                    1.0 + 0.1 * i, network.send, node_id,
                    ids[(i + 1) % len(ids)], "token", {"ttl": _SHARD_HOPS},
                )

    return ShardWorkload(
        name="bench_token_ring",
        node_ids=ids,
        build=build,
        collect=lambda shard: {"hops": shard.state["hops"]["count"]},
        latency_factory=lambda streams: ConstantLatency(0.05),
        horizon=60.0,
    )


@register_benchmark(
    "micro.shard.sync", "micro",
    "conservative-lookahead barrier rounds over a cross-shard token ring",
)
def bench_shard_sync(metrics: Metrics) -> None:
    from repro.sim.shard import ShardedSimulator

    coordinator = ShardedSimulator(
        _shard_token_workload, shards=_SHARD_COUNT, seed=4001,
        metrics=metrics,
    )
    results = coordinator.run()
    # Integer work counters double as a barrier-protocol checksum: any
    # change to windowing or envelope ordering moves them.
    metrics.inc("bench.shard_hops", sum(r["hops"] for r in results))
    metrics.inc("bench.shard_rounds", coordinator.sync_rounds)
    metrics.inc("bench.shard_crossed", coordinator.router.messages_crossed)
    metrics.inc("bench.shard_stalls", coordinator.horizon_stalls)


@register_benchmark(
    "micro.rng.stream_draw", "micro",
    "named-RNG stream creation and uniform draws (RngStreams)",
)
def bench_rng_stream_draw(metrics: Metrics) -> None:
    streams = RngStreams(3001)
    total = 0.0
    for name in ("alpha", "beta", "gamma", "delta"):
        stream = streams.stream(f"bench.{name}")
        draw = stream.random
        for _ in range(_RNG_DRAWS_PER_STREAM):
            total += draw()
    metrics.inc("bench.rng_streams", 4)
    metrics.inc("bench.rng_draws", 4 * _RNG_DRAWS_PER_STREAM)
    # The sum is a pure function of the seeds; folding it into a counter
    # (scaled to an int) lets compare() catch any drift in draw order.
    metrics.inc("bench.rng_draw_checksum", int(total * 1e6))


@register_benchmark(
    "micro.cohort.step", "micro",
    "vectorized cohort renewal steps (50k devices, 40 coarse ticks)",
)
def bench_cohort_step(metrics: Metrics) -> None:
    from repro.sim.cohort import CohortEngine, DeviceCohort
    from repro.sim.rng import seeded_generator

    engine = CohortEngine(tick=_COHORT_TICK, metrics=metrics)
    cohort = engine.add(DeviceCohort(
        "bench", _COHORT_DEVICES, mean_uptime=600.0, mean_downtime=300.0,
        attrition=0.01, generator=seeded_generator(7001, "bench.cohort"),
    ))
    engine.run(_COHORT_HORIZON)
    # Integer work counters double as a draw-order checksum: any change
    # to the batch-flip loop or the dwell sampler moves them.
    metrics.inc("bench.cohort_flips", cohort.flips)
    metrics.inc("bench.cohort_sessions", cohort.sessions())
    metrics.inc("bench.cohort_departed", cohort.departed_count())
    metrics.inc("bench.cohort_draws", cohort.draws)
    metrics.inc("bench.cohort_final_online", cohort.online_count())


@register_benchmark(
    "micro.obs.histogram_observe_merge", "micro",
    "Histogram.observe across shards plus order-independent merge",
)
def bench_histogram_observe_merge(metrics: Metrics) -> None:
    shards = []
    observations = 0
    for index in range(_HIST_SHARDS):
        shard = Histogram()
        rng = seeded_rng(4001, f"bench.hist.{index}")
        for _ in range(_HIST_OBSERVATIONS_PER_SHARD):
            shard.observe(rng.random() * 1000.0)
        observations += _HIST_OBSERVATIONS_PER_SHARD
        shards.append(shard)
    merged = Histogram()
    for shard in shards:
        merged.merge(shard)
    summary = merged.summary()
    metrics.inc("bench.hist_observations", observations)
    metrics.inc("bench.hist_merged_count", summary["count"])
    metrics.inc("bench.hist_p99_checksum", int(summary["p99"] * 1e6))
    if summary.get("merged_truncated"):
        metrics.inc("bench.hist_merged_truncated")


def _synthetic_lint_tree() -> "dict[str, str]":
    """A deterministic in-memory project for the lint-index benchmark.

    Mixes hazard helpers (wall clock, global RNG), simulated modules
    whose call chains reach them, stream-name collisions, an f-string
    stream family, and one import cycle — so every project rule does
    real work.  Pure function of the constants: identical sources (and
    therefore identical finding counts) on every run.
    """
    sources = {}
    for i in range(_LINT_HELPERS):
        if i % 4 == 0:
            body = "    return time.perf_counter()"
        elif i % 4 == 1:
            body = "    return random.random()"
        else:
            body = f"    return {i} * 3 + 1"
        sources[f"src/repro/analysis/helper_{i}.py"] = "\n".join([
            "import random",
            "import time",
            "",
            "",
            f"def util_{i}():",
            body,
            "",
            "",
            f"def lookup_{i}(x):",
            f"    return util_{i}() if x else {i}",
            "",
        ])
    for i in range(_LINT_SIM_MODULES):
        helper = i % _LINT_HELPERS
        if i % 6 == 5:
            draw = (f"    rng = seeded_rng(seed,"
                    f" f\"sim.mod{i}.{{x}}\")")
        else:
            draw = f"    rng = seeded_rng(seed, \"sim.mod{i}.draw\")"
        lines = [
            f"from repro.analysis.helper_{helper} import lookup_{helper}",
            "from repro.sim.rng import seeded_rng",
            "",
            "",
            f"def step_{i}(x):",
            f"    return lookup_{helper}(x)",
            "",
            "",
            f"def draw_{i}(seed, x=0):",
            draw,
            "    return rng.random()",
            "",
        ]
        if i % 6 == 0:
            lines += [
                "",
                f"def shared_{i}(streams):",
                "    return streams.stream(\"collide\")",
                "",
            ]
        sources[f"src/repro/sim/mod_{i}.py"] = "\n".join(lines)
    sources["src/repro/analysis/cyc_a.py"] = (
        "from repro.analysis import cyc_b\n\n\n"
        "def spin_a():\n    return cyc_b.spin_b()\n"
    )
    sources["src/repro/analysis/cyc_b.py"] = (
        "import repro.analysis.cyc_a\n\n\n"
        "def spin_b():\n    return 1\n"
    )
    return sources


@register_benchmark(
    "micro.lint.index", "micro",
    "whole-program lint: fragments, call graph, and project rules over"
    " a synthetic 98-module tree",
)
def bench_lint_index(metrics: Metrics) -> None:
    import ast

    from repro.lint.engine import ProjectRule, all_rules
    from repro.lint.index import ProjectIndex, build_fragment

    sources = _synthetic_lint_tree()
    fragments = [
        build_fragment(path, source, ast.parse(source))
        for path, source in sorted(sources.items())
    ]
    index = ProjectIndex(fragments)
    edge_total = sum(
        len(index.call_edges(qname)) for qname in sorted(index.functions)
    )
    finding_total = 0
    for rule in all_rules():
        if isinstance(rule, ProjectRule):
            finding_total += sum(1 for _ in rule.check_project(index))
    # All four counters are pure functions of the synthetic tree: any
    # drift in fragment extraction, call-graph resolution, or the rule
    # pack shows up as a work-counter regression in compare().
    metrics.inc("bench.lint_files", len(fragments))
    metrics.inc("bench.lint_functions", len(index.functions))
    metrics.inc("bench.lint_call_edges", edge_total)
    metrics.inc("bench.lint_findings", finding_total)
