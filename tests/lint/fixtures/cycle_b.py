"""Other half of the IMP001 fixture cycle; clean in isolation."""

import cycle_a


def pong():
    return len(cycle_a.__name__)
