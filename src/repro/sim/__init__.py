"""Discrete-event simulation substrate.

Public surface:

* :class:`Simulator` — the event loop; spawn generator processes on it.
* :class:`Process`, :class:`Signal`, :class:`Timeout`, :class:`AllOf`,
  :class:`AnyOf`, :class:`Interrupt` — process combinators.
* :class:`RngStreams` — named deterministic randomness.
* :class:`DeviceCohort`, :class:`CohortEngine` — the vectorized batch
  engine for population-scale (10^5-10^6 device) experiments.
* :class:`ShardedSimulator`, :class:`ShardWorkload`,
  :func:`run_single_process` — the space-partitioned shard engine
  (conservative-lookahead synchronization; ``docs/SCALING.md``).
* :class:`Monitor`, :class:`Counter`, :class:`Sampler`,
  :class:`TimeWeightedGauge` — measurement.
"""

from repro.sim.cohort import CohortEngine, DeviceCohort
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    Signal,
    Simulator,
    Timeout,
)
from repro.sim.monitor import Counter, Monitor, Sampler, TimeWeightedGauge, summarize
from repro.sim.rng import RngStreams, derive_seed, seeded_generator, seeded_rng
from repro.sim.shard import ShardedSimulator, ShardWorkload, run_single_process

__all__ = [
    "Simulator",
    "CohortEngine",
    "DeviceCohort",
    "ShardedSimulator",
    "ShardWorkload",
    "run_single_process",
    "seeded_generator",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "RngStreams",
    "derive_seed",
    "seeded_rng",
    "Counter",
    "Sampler",
    "Monitor",
    "TimeWeightedGauge",
    "summarize",
]
