"""Storage providers: the nodes that hold chunks and answer challenges.

An honest provider stores every (chunk, Merkle-proof) pair it accepted and
answers a challenge after one simulated disk read.  The §3.3 attacker
behaviours are explicit modes:

* ``drop_fraction`` — quietly discard a fraction of chunks (hoping audits
  miss them);
* ``outsource_from`` — the Outsourcing Attack: store nothing, fetch from
  another provider when challenged (pays an extra network round trip);
* ``reseal_backing`` — the Sybil/dedup attack against proof-of-
  replication: keep one unsealed physical copy and recompute sealed
  chunks on demand (pays ``seal_time`` per challenged chunk).

Every dishonest mode still produces *byte-correct* answers when it can —
detection is therefore probabilistic (missing chunks) or timing-based
(deadlines), exactly the soundness structure of the real proof systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.crypto.merkle import MerkleProof
from repro.errors import ProofFailedError, StorageError
from repro.net.node import NodeClass
from repro.net.transport import Network
from repro.storage.blob import DataBlob
from repro.storage.sealing import seal_chunk

__all__ = ["StorageProvider", "StoredCommitment"]


@dataclass
class StoredCommitment:
    """One commitment a provider claims to hold."""

    commitment_id: str  # the (sealed) Merkle root
    chunk_count: int
    proofs: Dict[int, MerkleProof] = field(default_factory=dict)
    payloads: Dict[int, bytes] = field(default_factory=dict)
    # Sybil/dedup cheat: derive sealed payloads on demand from an unsealed
    # backing blob instead of storing them.
    reseal_backing: Optional[Tuple[DataBlob, str]] = None  # (blob, replica_id)
    # Outsourcing cheat: fetch payloads from this provider when challenged.
    outsource_from: Optional[str] = None

    @property
    def physically_stored_bytes(self) -> int:
        return sum(len(p) for p in self.payloads.values())


class StorageProvider:
    """A provider bound to a network node."""

    def __init__(
        self,
        network: Network,
        node_id: str,
        capacity_bytes: float = 1e12,
        price_per_gb_epoch: float = 0.01,
        read_time: float = 0.005,
        seal_time: float = 0.5,
        node_class: str = NodeClass.PERSONAL_COMPUTER,
    ):
        self.network = network
        self.node_id = node_id
        self.node = (
            network.node(node_id)
            if network.has_node(node_id)
            else network.create_node(node_id, node_class=node_class)
        )
        self.capacity_bytes = capacity_bytes
        self.price_per_gb_epoch = price_per_gb_epoch
        self.read_time = read_time
        self.seal_time = seal_time
        self.commitments: Dict[str, StoredCommitment] = {}
        self.challenges_answered = 0
        self.challenges_failed = 0
        self.node.register_handler("store.put", self._on_put)
        self.node.register_handler("store.get", self._on_get)
        self.node.register_handler("store.challenge", self._on_challenge)

    # -- capacity ----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return sum(
            c.physically_stored_bytes for c in self.commitments.values()
        )

    def has_capacity_for(self, size_bytes: float) -> bool:
        return self.used_bytes + size_bytes <= self.capacity_bytes

    # -- ingest ------------------------------------------------------------

    def accept_blob(self, blob: DataBlob, commitment_id: Optional[str] = None) -> str:
        """Store a full blob honestly (local call used by placement)."""
        root = commitment_id or blob.merkle_root
        stored = StoredCommitment(commitment_id=root, chunk_count=len(blob.chunks))
        for index, chunk in enumerate(blob.chunks):
            stored.proofs[index] = blob.proof_for(index)
            stored.payloads[index] = chunk
        if not self.has_capacity_for(stored.physically_stored_bytes):
            raise StorageError(f"provider {self.node_id!r} out of capacity")
        self.commitments[root] = stored
        return root

    def _on_put(self, node, payload: dict, sender: str) -> bool:
        commitment_id = payload["commitment_id"]
        stored = self.commitments.get(commitment_id)
        if stored is None:
            stored = StoredCommitment(
                commitment_id=commitment_id, chunk_count=payload["chunk_count"]
            )
            self.commitments[commitment_id] = stored
        for index, chunk, proof in payload["entries"]:
            stored.proofs[index] = proof
            stored.payloads[index] = chunk
        return True

    def _on_get(self, node, payload: dict, sender: str) -> Generator:
        commitment_id, index = payload["commitment_id"], payload["index"]
        yield self.read_time
        answer = yield from self._produce(commitment_id, index)
        return answer

    def _on_challenge(self, node, payload: dict, sender: str) -> Generator:
        commitment_id, index = payload["commitment_id"], payload["index"]
        yield self.read_time
        try:
            answer = yield from self._produce(commitment_id, index)
        except StorageError:
            self.challenges_failed += 1
            raise
        self.challenges_answered += 1
        return answer

    def _produce(self, commitment_id: str, index: int) -> Generator:
        """Yield-able chunk production honoring the configured cheat mode."""
        stored = self.commitments.get(commitment_id)
        if stored is None:
            raise StorageError(
                f"provider {self.node_id!r} holds no commitment"
                f" {commitment_id[:12]}"
            )
        proof = stored.proofs.get(index)
        if proof is None:
            raise StorageError(f"no proof for chunk {index}")
        payload = stored.payloads.get(index)
        if payload is not None:
            return (payload, proof)
        if stored.reseal_backing is not None:
            blob, replica_id = stored.reseal_backing
            if index >= len(blob.chunks):
                raise StorageError(f"chunk {index} out of range")
            yield self.seal_time  # the expensive on-demand re-seal
            return (seal_chunk(blob.chunks[index], replica_id, index), proof)
        if stored.outsource_from is not None:
            answer = yield from self.network.rpc(
                self.node_id,
                stored.outsource_from,
                "store.get",
                {"commitment_id": commitment_id, "index": index},
                timeout=30.0,
            )
            return answer
        raise StorageError(
            f"provider {self.node_id!r} dropped chunk {index} of"
            f" {commitment_id[:12]}"
        )

    # -- cheat configuration -------------------------------------------------

    def drop_chunks(self, commitment_id: str, fraction: float, rng) -> int:
        """Discard a fraction of stored payloads (keep the proofs)."""
        if not 0 <= fraction <= 1:
            raise StorageError(f"fraction must be in [0,1]: {fraction}")
        stored = self._require(commitment_id)
        indices = sorted(stored.payloads)
        to_drop = rng.sample(indices, int(len(indices) * fraction))
        for index in to_drop:
            del stored.payloads[index]
        return len(to_drop)

    def claim_sealed_without_storing(
        self, sealed_blob: DataBlob, backing: DataBlob, replica_id: str
    ) -> str:
        """Register a sealed-replica commitment while physically keeping
        only the unsealed backing (the dedup/Sybil cheat)."""
        stored = StoredCommitment(
            commitment_id=sealed_blob.merkle_root,
            chunk_count=len(sealed_blob.chunks),
            reseal_backing=(backing, replica_id),
        )
        for index in range(len(sealed_blob.chunks)):
            stored.proofs[index] = sealed_blob.proof_for(index)
        self.commitments[sealed_blob.merkle_root] = stored
        return sealed_blob.merkle_root

    def claim_outsourced(
        self, blob: DataBlob, outsource_from: str
    ) -> str:
        """Register a commitment whose chunks live on another provider."""
        stored = StoredCommitment(
            commitment_id=blob.merkle_root,
            chunk_count=len(blob.chunks),
            outsource_from=outsource_from,
        )
        for index in range(len(blob.chunks)):
            stored.proofs[index] = blob.proof_for(index)
        self.commitments[blob.merkle_root] = stored
        return blob.merkle_root

    def _require(self, commitment_id: str) -> StoredCommitment:
        stored = self.commitments.get(commitment_id)
        if stored is None:
            raise StorageError(f"unknown commitment {commitment_id[:12]}")
        return stored

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StorageProvider({self.node_id!r},"
            f" commitments={len(self.commitments)})"
        )
