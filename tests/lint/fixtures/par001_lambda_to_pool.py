"""PAR001 positive fixture: unpicklable callables shipped to a pool."""


def sweep_everything(runner, executor, configs):
    results = runner.run("exp", lambda seed: seed * 2, configs)

    def per_point(seed):
        return seed + 1

    futures = executor.submit(per_point, 3)
    return results, futures
