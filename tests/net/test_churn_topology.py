"""Tests for churn processes and topology builders."""

import networkx as nx
import pytest

from repro.errors import NetworkError
from repro.net import (
    ChurnProfile,
    Network,
    Node,
    NodeClass,
    attach_churn,
    profile_for_class,
)
from repro.net.churn import PERSONAL_COMPUTER_PROFILE, SMARTPHONE_PROFILE
from repro.net.topology import (
    federation_homes,
    isp_tree,
    random_graph,
    ring_lattice,
    scale_free,
    small_world,
    star,
)
from repro.sim import RngStreams, Simulator


class TestChurnProfile:
    def test_availability_formula(self):
        profile = ChurnProfile(mean_uptime=30.0, mean_downtime=10.0)
        assert profile.availability == pytest.approx(0.75)

    def test_invalid_means_rejected(self):
        with pytest.raises(NetworkError):
            ChurnProfile(mean_uptime=0.0, mean_downtime=1.0)

    def test_invalid_attrition_rejected(self):
        with pytest.raises(NetworkError):
            ChurnProfile(mean_uptime=1.0, mean_downtime=1.0, attrition=2.0)

    def test_class_profiles_exist(self):
        for node_class in NodeClass.ALL:
            assert profile_for_class(node_class).mean_uptime > 0

    def test_unknown_class_rejected(self):
        with pytest.raises(NetworkError):
            profile_for_class("quantum")

    def test_datacenter_availability_exceeds_phone(self):
        assert (
            profile_for_class(NodeClass.DATACENTER).availability
            > profile_for_class(NodeClass.SMARTPHONE).availability
        )


class TestChurnProcess:
    def test_empirical_availability_matches_profile(self):
        sim = Simulator()
        streams = RngStreams(11)
        profile = ChurnProfile(mean_uptime=100.0, mean_downtime=50.0)
        nodes = [Node(f"n{i}") for i in range(60)]
        attach_churn(sim, streams, nodes, profile)
        horizon = 20_000.0
        sim.run(until=horizon)
        fractions = [n.uptime_fraction(horizon) for n in nodes]
        mean_avail = sum(fractions) / len(fractions)
        assert abs(mean_avail - profile.availability) < 0.06

    def test_attrition_removes_nodes_permanently(self):
        sim = Simulator()
        streams = RngStreams(12)
        profile = ChurnProfile(mean_uptime=10.0, mean_downtime=10.0, attrition=0.5)
        nodes = [Node(f"n{i}") for i in range(50)]
        processes = attach_churn(sim, streams, nodes, profile)
        sim.run(until=1000.0)
        departed = [p for p in processes if p.departed]
        assert len(departed) > 30  # half-life of a few cycles
        for p in departed:
            assert not p.node.online

    def test_stop_freezes_state(self):
        sim = Simulator()
        streams = RngStreams(13)
        node = Node("n")
        [process] = attach_churn(
            sim, streams, [node], ChurnProfile(mean_uptime=1.0, mean_downtime=1.0)
        )
        process.stop()
        sim.run(until=100.0)
        assert node.online  # never flipped after stop

    def test_default_profile_by_class(self):
        sim = Simulator()
        streams = RngStreams(14)
        phone = Node("p", node_class=NodeClass.SMARTPHONE)
        [process] = attach_churn(sim, streams, [phone])
        assert process.profile is SMARTPHONE_PROFILE


class TestCrashRestore:
    """Injected crashes suspend the renewal process (repro.faults hook)."""

    def _process(self, seed=21, mean_uptime=5.0, mean_downtime=5.0):
        sim = Simulator()
        streams = RngStreams(seed)
        node = Node("n")
        [process] = attach_churn(
            sim, streams, [node],
            ChurnProfile(mean_uptime=mean_uptime, mean_downtime=mean_downtime),
        )
        return sim, node, process

    def test_crash_holds_node_down_despite_churn(self):
        sim, node, process = self._process()
        sim.run(until=10.0)
        process.crash()
        assert process.crashed and not node.online
        # Churn would flip a 5s-uptime node many times in 200s; a
        # crashed node must never come back on its own.
        sim.run(until=210.0)
        assert not node.online

    def test_restore_resumes_renewal_clock(self):
        sim, node, process = self._process()
        sim.run(until=10.0)
        process.crash()
        sim.run(until=50.0)
        process.restore()
        assert not process.crashed and node.online
        # The renewal process is live again: with a 5 s mean uptime the
        # node flips off at some point after restore.
        states = []
        for t in range(51, 251):
            sim.run(until=float(t))
            states.append(node.online)
        assert False in states

    def test_crash_is_idempotent(self):
        sim, node, process = self._process()
        sim.run(until=3.0)
        process.crash()
        process.crash()
        assert process.crashed
        process.restore()
        process.restore()
        assert not process.crashed

    def test_restore_without_crash_is_noop(self):
        sim, node, process = self._process()
        sim.run(until=3.0)
        was_online = node.online
        process.restore()
        assert node.online == was_online

    def test_crash_does_not_consume_rng_draws(self):
        """Crash/restore must not shift the churn RNG stream."""

        def flips_after(crash):
            sim, node, process = self._process(seed=33)
            if crash:
                sim.schedule_at(40.0, process.crash)
                sim.schedule_at(60.0, process.restore)
            sim.run(until=40.0)
            # Record the flip schedule well after the crash window.
            sim.run(until=500.0)
            return node.uptime_fraction(500.0)

        # Not equal (the crash removes 20 s of uptime) but both runs
        # must complete deterministically; equality of draws is pinned
        # by the injector-level RNG isolation test.  Here we pin that
        # crash() during a run neither raises nor deadlocks the clock.
        assert 0.0 < flips_after(False) <= 1.0
        assert 0.0 < flips_after(True) <= 1.0

    def test_restore_respects_departure(self):
        sim = Simulator()
        streams = RngStreams(12)
        profile = ChurnProfile(
            mean_uptime=10.0, mean_downtime=10.0, attrition=0.9
        )
        nodes = [Node(f"n{i}") for i in range(20)]
        processes = attach_churn(sim, streams, nodes, profile)
        sim.run(until=500.0)
        departed = [p for p in processes if p.departed]
        assert departed  # with attrition=0.9 some node left
        process = departed[0]
        process.crash()
        process.restore()
        assert not process.node.online  # departure wins over restore


class TestTopologies:
    def test_star_shape(self):
        g = star("hub", [f"u{i}" for i in range(5)])
        assert g.degree("hub") == 5
        assert all(g.degree(f"u{i}") == 1 for i in range(5))

    def test_star_rejects_center_leaf(self):
        with pytest.raises(NetworkError):
            star("hub", ["hub"])

    def test_isp_tree_structure(self):
        g = isp_tree(n_isps=3, users_per_isp=4)
        isps = [n for n in g if n.startswith("isp")]
        users = [n for n in g if n.startswith("user")]
        assert len(isps) == 3
        assert len(users) == 12
        # ISPs are fully meshed.
        assert g.degree("isp0") == 2 + 4
        assert nx.is_connected(g)

    def test_random_graph_size(self):
        g = random_graph(50, 0.1, seed=1)
        assert len(g) == 50

    def test_random_graph_reproducible(self):
        g1 = random_graph(30, 0.2, seed=7)
        g2 = random_graph(30, 0.2, seed=7)
        assert set(g1.edges) == set(g2.edges)

    def test_small_world_params(self):
        g = small_world(40, k=4, rewire_prob=0.1, seed=2)
        assert len(g) == 40
        degrees = [d for _, d in g.degree]
        assert sum(degrees) / len(degrees) == pytest.approx(4.0, abs=0.5)

    def test_small_world_k_bound(self):
        with pytest.raises(NetworkError):
            small_world(5, k=5)

    def test_scale_free_has_hubs(self):
        g = scale_free(200, m=2, seed=3)
        degrees = sorted((d for _, d in g.degree), reverse=True)
        assert degrees[0] > 4 * (sum(degrees) / len(degrees))

    def test_ring_lattice_regular(self):
        g = ring_lattice(10, k=2)
        assert all(d == 2 for _, d in g.degree)

    def test_bad_count_rejected(self):
        with pytest.raises(NetworkError):
            random_graph(0, 0.5, seed=1)


class TestFederationHomes:
    def test_every_user_assigned(self):
        users = [f"u{i}" for i in range(10)]
        servers = ["s0", "s1", "s2"]
        homes = federation_homes(users, servers, seed=1)
        assert set(homes) == set(users)
        assert set(homes.values()) <= set(servers)

    def test_balanced_assignment(self):
        users = [f"u{i}" for i in range(30)]
        servers = ["s0", "s1", "s2"]
        homes = federation_homes(users, servers, seed=2)
        from collections import Counter as C

        counts = C(homes.values())
        assert all(count == 10 for count in counts.values())

    def test_requires_servers(self):
        with pytest.raises(NetworkError):
            federation_homes(["u"], [])

    def test_seed_changes_assignment(self):
        users = [f"u{i}" for i in range(30)]
        servers = ["s0", "s1", "s2"]
        assert federation_homes(users, servers, seed=1) != federation_homes(
            users, servers, seed=2
        )


class TestFederationHomesGoldens:
    """Pin the exact assignment under seeded_rng seed derivation.

    federation_homes now shuffles on the named stream
    "topology.federation_homes" (derive_seed) instead of seeding
    random.Random with the raw seed; this golden freezes the new
    mapping so experiment outputs cannot silently shift again.
    """

    def test_pinned_assignment(self):
        users = [f"u{i}" for i in range(8)]
        servers = ["s0", "s1", "s2"]
        assert federation_homes(users, servers, seed=1) == {
            "u0": "s0", "u1": "s1", "u5": "s2", "u6": "s0",
            "u3": "s1", "u4": "s2", "u2": "s0", "u7": "s1",
        }

    def test_matches_named_stream_shuffle(self):
        from repro.sim.rng import seeded_rng

        users = [f"u{i}" for i in range(12)]
        servers = ["s0", "s1"]
        expected_order = list(users)
        seeded_rng(7, "topology.federation_homes").shuffle(expected_order)
        expected = {
            user: servers[i % len(servers)]
            for i, user in enumerate(expected_order)
        }
        assert federation_homes(users, servers, seed=7) == expected
