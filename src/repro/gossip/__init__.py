"""Gossip substrate: anti-entropy replication, flooding pub/sub, and
censorship-circumvention relay discovery."""

from repro.gossip.antientropy import AntiEntropyNode, ReplicaStore, Versioned
from repro.gossip.pubsub import PubSubMessage, PubSubNode, build_pubsub_overlay
from repro.gossip.relay import (
    RELAY_DIRECTORY_KEY,
    RELAY_METHOD_PREFIX,
    CircumventionClient,
    RelayNode,
    discover_relays,
    publish_relay_directory,
)

__all__ = [
    "AntiEntropyNode",
    "ReplicaStore",
    "Versioned",
    "PubSubMessage",
    "PubSubNode",
    "build_pubsub_overlay",
    "RELAY_DIRECTORY_KEY",
    "RELAY_METHOD_PREFIX",
    "CircumventionClient",
    "RelayNode",
    "discover_relays",
    "publish_relay_directory",
]
