"""Name registration (§3.1): blockchain registry, centralized PKI and
Web-of-Trust baselines, and the Zooko's-triangle assessment."""

from repro.naming.blockchain_naming import BlockchainNameRegistry
from repro.naming.centralized_pki import CentralizedPKI, CompromisedAuthority
from repro.naming.records import MAX_NAME_LENGTH, NameBinding, ZoneFile, validate_name
from repro.naming.registry import NameRegistry, RegistrationReceipt, Resolution
from repro.naming.web_of_trust import SybilAttackResult, WebOfTrust
from repro.naming.zooko import ASSESSMENTS, ZookoAssessment, assess, triangle_table

__all__ = [
    "NameRegistry",
    "RegistrationReceipt",
    "Resolution",
    "BlockchainNameRegistry",
    "CentralizedPKI",
    "CompromisedAuthority",
    "WebOfTrust",
    "SybilAttackResult",
    "NameBinding",
    "ZoneFile",
    "validate_name",
    "MAX_NAME_LENGTH",
    "ZookoAssessment",
    "assess",
    "triangle_table",
    "ASSESSMENTS",
]
