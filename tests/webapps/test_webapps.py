"""Tests for hostless sites, trackers, and visitor-seeded swarms."""

import pytest

from repro.dht import DhtConfig, build_overlay
from repro.errors import WebAppError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.webapps import (
    DhtPeerDirectory,
    HostlessSite,
    SiteBundle,
    SiteSwarm,
    Tracker,
    VisitorProcess,
)


def make_env(seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    tracker = Tracker(network)
    swarm = SiteSwarm(network, tracker)
    return sim, streams, network, tracker, swarm


def make_site(seed="blog"):
    site = HostlessSite(seed)
    site.write_file("index.html", b"<h1>hello</h1>")
    site.write_file("app.js", b"console.log('hostless')")
    return site


class TestHostlessSite:
    def test_publish_produces_verified_bundle(self):
        bundle = make_site().publish()
        assert bundle.verify()
        assert bundle.size_bytes > 0

    def test_versions_increment(self):
        site = make_site()
        b1 = site.publish()
        site.write_file("index.html", b"<h1>v2</h1>")
        b2 = site.publish()
        assert b2.manifest.version == b1.manifest.version + 1

    def test_tampered_file_fails_verification(self):
        bundle = make_site().publish()
        tampered = SiteBundle(
            manifest=bundle.manifest,
            files={**bundle.files, "index.html": b"<h1>evil</h1>"},
        )
        assert not tampered.verify()

    def test_extra_file_fails_verification(self):
        bundle = make_site().publish()
        bloated = SiteBundle(
            manifest=bundle.manifest,
            files={**bundle.files, "malware.js": b"bad()"},
        )
        assert not bloated.verify()

    def test_forged_manifest_fails(self):
        site_a, site_b = make_site("a"), make_site("b")
        bundle_a, bundle_b = site_a.publish(), site_b.publish()
        # Graft b's signature onto a's manifest body.
        from repro.webapps.site import SiteManifest

        forged = SiteManifest(
            site_address=bundle_a.manifest.site_address,
            version=bundle_a.manifest.version,
            file_hashes=bundle_a.manifest.file_hashes,
            parent_address=None,
            signature=bundle_b.manifest.signature,
        )
        assert not forged.verify()

    def test_fork_records_parent_and_copies_files(self):
        parent = make_site("origin")
        child = parent.fork("fork-1")
        assert child.address != parent.address
        assert child.files() == parent.files()
        bundle = child.publish()
        assert bundle.manifest.parent_address == parent.address
        assert bundle.verify()

    def test_empty_site_cannot_publish(self):
        with pytest.raises(WebAppError):
            HostlessSite("empty").publish()

    def test_delete_file(self):
        site = make_site()
        site.delete_file("app.js")
        assert site.files() == ["index.html"]
        with pytest.raises(WebAppError):
            site.delete_file("app.js")


class TestSwarm:
    def test_author_seeds_then_visitor_fetches(self):
        sim, streams, network, tracker, swarm = make_env()
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            fetched = yield from swarm.visit("visitor1", address)
            return fetched

        fetched = sim.run_process(scenario())
        assert fetched.verify()
        assert fetched.files == bundle.files

    def test_visitor_becomes_seeder(self):
        sim, streams, network, tracker, swarm = make_env(seed=2)
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            fetched = yield from swarm.visit("v1", address)
            yield from swarm.seed("v1", fetched)
            # Author leaves; site must survive on the visitor's seed.
            network.node("author").set_online(False, sim.now)
            return (yield from swarm.visit("v2", address))

        assert sim.run_process(scenario()).verify()

    def test_no_seeders_means_site_down(self):
        sim, streams, network, tracker, swarm = make_env(seed=3)
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            network.node("author").set_online(False, sim.now)
            try:
                yield from swarm.visit("v1", address)
            except WebAppError:
                return "down"

        assert sim.run_process(scenario()) == "down"

    def test_tracker_down_blocks_discovery(self):
        sim, streams, network, tracker, swarm = make_env(seed=4)
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            network.node(tracker.tracker_id).set_online(False, sim.now)
            try:
                yield from swarm.visit("v1", address)
            except WebAppError:
                return "tracker-spof"

        # The centralized tracker is a single point of failure.
        assert sim.run_process(scenario()) == "tracker-spof"

    def test_stop_seeding_departs_tracker(self):
        sim, streams, network, tracker, swarm = make_env(seed=5)
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def scenario():
            yield from swarm.seed("author", bundle)
            yield from swarm.stop_seeding("author", address)
            peers = yield from tracker.get_peers("author", address)
            return peers

        assert sim.run_process(scenario()) == []

    def test_updated_version_propagates(self):
        sim, streams, network, tracker, swarm = make_env(seed=6)
        site = make_site()
        v1 = site.publish()
        address = v1.manifest.site_address

        def scenario():
            yield from swarm.seed("author", v1)
            site.write_file("index.html", b"<h1>v2</h1>")
            v2 = site.publish()
            yield from swarm.seed("author", v2)
            fetched = yield from swarm.visit("v1", address)
            return fetched.manifest.version

        assert sim.run_process(scenario()) == 2


class TestVisitorPopulation:
    def run_population(self, seed, arrival_rate, mean_seed_time, horizon=2000.0):
        sim, streams, network, tracker, swarm = make_env(seed=seed)
        bundle = make_site().publish()
        address = bundle.manifest.site_address

        def bootstrap():
            yield from swarm.seed("author", bundle)
            # The author leaves early: the swarm must self-sustain.
            yield 50.0
            yield from swarm.stop_seeding("author", address)

        population = VisitorProcess(
            swarm, address, streams,
            arrival_rate=arrival_rate, mean_seed_time=mean_seed_time,
        )
        population.start()
        sim.spawn(bootstrap())
        sim.run(until=horizon)
        population.stop()
        return population.stats

    def test_popular_site_self_sustains(self):
        # arrival_rate x seed_time = 0.5 x 120 = 60 >> 1: swarm survives.
        stats = self.run_population(7, arrival_rate=0.5, mean_seed_time=120.0)
        assert stats.arrivals > 100
        assert stats.availability > 0.9

    def test_unpopular_site_dies(self):
        # arrival_rate x seed_time = 0.005 x 20 = 0.1 << 1: swarm dies.
        stats = self.run_population(8, arrival_rate=0.005, mean_seed_time=20.0)
        assert stats.availability < 0.5

    def test_invalid_parameters_rejected(self):
        sim, streams, network, tracker, swarm = make_env()
        with pytest.raises(WebAppError):
            VisitorProcess(swarm, "x", streams, arrival_rate=0.0, mean_seed_time=1.0)


class TestDhtPeerDirectory:
    def test_announce_and_discover_via_dht(self):
        sim = Simulator()
        streams = RngStreams(9)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(12)], DhtConfig(k=4, alpha=2)
        )
        directory = DhtPeerDirectory(overlay["n0"])
        reader = DhtPeerDirectory(overlay["n5"])

        def scenario():
            yield from directory.announce("n0", "site-abc")
            peers = yield from reader.get_peers("site-abc")
            return peers

        assert sim.run_process(scenario()) == ["n0"]

    def test_unknown_site_empty(self):
        sim = Simulator()
        streams = RngStreams(10)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(8)], DhtConfig(k=4, alpha=2)
        )
        directory = DhtPeerDirectory(overlay["n1"])

        def scenario():
            return (yield from directory.get_peers("ghost-site"))

        assert sim.run_process(scenario()) == []

    def test_double_announce_is_idempotent(self):
        sim = Simulator()
        streams = RngStreams(63)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(10)], DhtConfig(k=4, alpha=2)
        )
        directory = DhtPeerDirectory(overlay["n0"])

        def scenario():
            yield from directory.announce("n0", "site")
            yield from directory.announce("n0", "site")
            return (yield from directory.get_peers("site"))

        assert sim.run_process(scenario()) == ["n0"]

    def test_multiple_seeders_accumulate(self):
        sim = Simulator()
        streams = RngStreams(64)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"n{i}" for i in range(10)], DhtConfig(k=4, alpha=2)
        )

        def scenario():
            yield from DhtPeerDirectory(overlay["n1"]).announce("n1", "site")
            yield from DhtPeerDirectory(overlay["n2"]).announce("n2", "site")
            return (yield from DhtPeerDirectory(overlay["n5"]).get_peers("site"))

        assert sim.run_process(scenario()) == ["n1", "n2"]


class TestSwarmEdges:
    def test_register_peer_idempotent(self):
        sim, streams, network, tracker, swarm = make_env(44)
        swarm.register_peer("p")
        swarm.register_peer("p")  # no duplicate-node error
        assert network.has_node("p")

    def test_refusing_unverifiable_bundle(self):
        sim, streams, network, tracker, swarm = make_env(45)
        site = HostlessSite("gap-site")
        site.write_file("a", b"data")
        bundle = site.publish()
        bad = SiteBundle(manifest=bundle.manifest, files={"a": b"tampered"})

        def scenario():
            yield from swarm.seed("peer", bad)

        with pytest.raises(WebAppError):
            sim.run_process(scenario())


class TestMaliciousSeeder:
    def test_visitor_rejects_tampered_bundle_and_finds_honest_peer(self):
        sim, streams, network, tracker, swarm = make_env(61)
        site = HostlessSite("attacked-site")
        site.write_file("index.html", b"<h1>real</h1>")
        bundle = site.publish()
        address = bundle.manifest.site_address
        forged = SiteBundle(
            manifest=bundle.manifest,
            files={"index.html": b"<h1>malware</h1>"},
        )

        def scenario():
            # The honest author seeds normally.
            yield from swarm.seed("author", bundle)
            # A malicious peer bypasses seed() verification and announces.
            swarm.register_peer("mallory")
            swarm._seeding["mallory"][address] = forged
            yield from tracker.announce("mallory", address)
            fetched = yield from swarm.visit("visitor", address)
            return fetched

        fetched = sim.run_process(scenario())
        # The signed manifest defeats the tampered copy: the visitor ends
        # up with the authentic files, whichever peer order was tried.
        assert fetched.files["index.html"] == b"<h1>real</h1>"
        assert fetched.verify()

    def test_all_seeders_malicious_means_unavailable(self):
        sim, streams, network, tracker, swarm = make_env(62)
        site = HostlessSite("attacked-site-2")
        site.write_file("index.html", b"<h1>real</h1>")
        bundle = site.publish()
        address = bundle.manifest.site_address
        forged = SiteBundle(
            manifest=bundle.manifest, files={"index.html": b"<h1>bad</h1>"}
        )

        def scenario():
            swarm.register_peer("mallory")
            swarm._seeding["mallory"][address] = forged
            yield from tracker.announce("mallory", address)
            try:
                yield from swarm.visit("visitor", address)
            except WebAppError:
                return "unavailable-but-never-fooled"

        assert sim.run_process(scenario()) == "unavailable-but-never-fooled"
        assert swarm.monitor.counters.get("bad_bundles_rejected") >= 1
