"""Parallel, cached sweep execution for experiment drivers.

Every experiment in :mod:`repro.analysis.experiments` is a pure function
of its keyword arguments: it builds a fresh simulated world from a seed
and returns plain data.  That makes a parameter grid embarrassingly
parallel *and* memoizable, which this module exploits:

* :class:`SweepRunner` fans a list of config dicts out across worker
  processes (``concurrent.futures.ProcessPoolExecutor``) and returns
  results in config order, so parallel output is bit-identical to the
  serial loop it replaces.
* Per-task seeds, when requested, derive from ``(base_seed,
  canonical config hash)`` via :func:`repro.sim.rng.derive_seed` — a
  function of the *task*, never of scheduling order.
* :class:`SweepCache` memoizes completed runs on disk as JSON, keyed by
  ``(experiment name, canonical config hash, code version)``; re-running
  a bench or CLI sweep with a warm cache performs zero recomputations.
* :class:`RunnerStats` records per-task wall time, cache hit/miss
  counters, and worker utilization; ``summary_rows()`` feeds straight
  into :func:`repro.analysis.tables.render_table`.

Cache layout (one JSON file per experiment under the cache directory)::

    <cache_dir>/<experiment>.json
    {
      "schema": 1,
      "entries": {
        "<code_version>:<config_hash>": {"result": <JSON>, "elapsed": <s>},
        ...
      }
    }

``code_version`` is a hash of the experiment function's source module,
so editing an experiment invalidates its cached results automatically.
A corrupted cache file is treated as empty (every lookup misses) and is
rewritten wholesale on the next store — it never crashes a sweep.
"""

from __future__ import annotations

import inspect
import json
import os
import pickle
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashing import hash_obj, sha256_hex
from repro.obs.metrics import Metrics
from repro.obs.runtime import active as _active_observation
from repro.obs.tracer import Tracer
from repro.sim.rng import derive_seed

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "RunnerStats",
    "SweepCache",
    "SweepRunner",
    "TaskRecord",
    "canonical_config_hash",
    "code_version",
    "derive_task_seed",
]

CACHE_SCHEMA = 1

#: Default on-disk location, overridable via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro_cache"


# ---------------------------------------------------------------------------
# Task identity: config hashing, seed derivation, code versioning
# ---------------------------------------------------------------------------

def canonical_config_hash(config: Dict[str, Any]) -> str:
    """Hex hash of a config dict, independent of key insertion order.

    Delegates to :func:`repro.crypto.hashing.hash_obj`, which serializes
    with sorted keys — so ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}``
    hash identically.  This is the invariant that lets
    :func:`repro.analysis.sweep.cross_product` order axes however the
    caller likes without perturbing cache identity.
    """
    return hash_obj(config)


def derive_task_seed(base_seed: int, config: Dict[str, Any]) -> int:
    """Deterministic per-task seed from ``(base_seed, config)``.

    Depends only on the task's identity, never on scheduling order, so a
    parallel sweep sees exactly the seeds the serial loop would.
    """
    return derive_seed(base_seed, canonical_config_hash(config))


def code_version(fn: Callable[..., Any]) -> str:
    """Short hash of the source module defining ``fn``.

    Editing an experiment's module changes its version, invalidating
    every cached result for it.  Falls back to ``"unversioned"`` when
    source is unavailable (builtins, REPL definitions).
    """
    try:
        path = inspect.getsourcefile(fn)
        if path is None:
            return "unversioned"
        data = Path(path).read_bytes()
    except (TypeError, OSError):
        return "unversioned"
    return sha256_hex(data)[:16]


def _safe_filename(experiment: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]", "_", experiment) or "_"


# ---------------------------------------------------------------------------
# On-disk JSON cache
# ---------------------------------------------------------------------------

class SweepCache:
    """On-disk memo of completed experiment runs (one JSON file each).

    Keys are ``"<code_version>:<config_hash>"``; values must survive an
    exact JSON round-trip (checked by the runner before storing) so a
    cached replay is bit-identical to a fresh computation.
    """

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = Path(
            cache_dir
            if cache_dir is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self.corrupt_files = 0
        self._loaded: Dict[str, Dict[str, Any]] = {}

    # -- file plumbing ---------------------------------------------------

    def path_for(self, experiment: str) -> Path:
        return self.cache_dir / f"{_safe_filename(experiment)}.json"

    def _entries(self, experiment: str) -> Dict[str, Any]:
        """Entries for one experiment, loading (at most once) from disk."""
        entries = self._loaded.get(experiment)
        if entries is not None:
            return entries
        path = self.path_for(experiment)
        entries = {}
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if (
                isinstance(payload, dict)
                and payload.get("schema") == CACHE_SCHEMA
                and isinstance(payload.get("entries"), dict)
            ):
                entries = payload["entries"]
            else:
                self.corrupt_files += 1
        except FileNotFoundError:
            pass
        except (OSError, ValueError):
            # Unreadable or corrupted cache: treat every lookup as a
            # miss; the next store() rewrites the file wholesale.
            self.corrupt_files += 1
        self._loaded[experiment] = entries
        return entries

    def _flush(self, experiment: str) -> None:
        path = self.path_for(experiment)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "entries": self._loaded.get(experiment, {}),
        }
        tmp = path.with_suffix(".json.tmp")
        # No sort_keys here: result dicts must replay with their original
        # key order so cached output renders byte-identically to a fresh
        # run.  (Cache *identity* hashing sorts keys; storage must not.)
        tmp.write_text(json.dumps(payload, indent=1), encoding="utf-8")
        os.replace(tmp, path)

    # -- lookup / store --------------------------------------------------

    @staticmethod
    def key(version: str, config_hash: str) -> str:
        return f"{version}:{config_hash}"

    def lookup(self, experiment: str, key: str) -> Tuple[bool, Any]:
        entry = self._entries(experiment).get(key)
        if entry is None:
            return False, None
        return True, entry.get("result")

    def store(self, experiment: str, key: str, result: Any,
              elapsed: float) -> None:
        self._entries(experiment)[key] = {
            "result": result, "elapsed": round(elapsed, 6),
        }
        self._flush(experiment)

    def store_many(
        self, experiment: str, items: Sequence[Tuple[str, Any, float]]
    ) -> None:
        """Store several entries with a single file write."""
        entries = self._entries(experiment)
        for key, result, elapsed in items:
            entries[key] = {"result": result, "elapsed": round(elapsed, 6)}
        if items:
            self._flush(experiment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SweepCache({str(self.cache_dir)!r})"


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

@dataclass
class TaskRecord:
    """One executed (or replayed) grid point."""

    experiment: str
    config_hash: str
    elapsed_s: float
    cached: bool


@dataclass
class RunnerStats:
    """Counters a sweep accumulates; ``summary_rows()`` renders them."""

    workers: int = 1
    hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    serial_fallbacks: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    tasks: List[TaskRecord] = field(default_factory=list)

    def record(self, record: TaskRecord) -> None:
        self.tasks.append(record)
        if record.cached:
            self.hits += 1
        else:
            self.misses += 1
            self.busy_s += record.elapsed_s

    def utilization(self) -> float:
        """Fraction of worker-seconds spent inside experiment code."""
        if self.wall_s <= 0 or self.workers <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.workers * self.wall_s))

    def summary(self) -> Dict[str, Any]:
        return {
            "tasks": len(self.tasks),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "uncacheable": self.uncacheable,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 4),
            "busy_s": round(self.busy_s, 4),
            "worker_utilization": round(self.utilization(), 3),
        }

    def summary_rows(self) -> List[Dict[str, Any]]:
        """The summary as one-row table input for ``render_table``."""
        return [self.summary()]


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _invoke(payload: Tuple[int, Callable[..., Any], Dict[str, Any]]):
    """Worker entry point: run one grid point, timing it."""
    index, fn, kwargs = payload
    start = time.perf_counter()
    result = fn(**kwargs)
    return index, result, time.perf_counter() - start


def _json_roundtrip(value: Any) -> Tuple[bool, Any]:
    """Whether ``value`` survives JSON exactly (and its decoded form)."""
    try:
        decoded = json.loads(json.dumps(value))
    except (TypeError, ValueError):
        return False, None
    return decoded == value, decoded


class SweepRunner:
    """Executes a grid of experiment configs, optionally in parallel
    and against an on-disk cache.

    Parameters
    ----------
    workers:
        Process count.  ``<= 1`` runs inline (no pool, no pickling).
    cache:
        A :class:`SweepCache`, or ``None`` to always recompute.
    base_seed / seed_param:
        When ``base_seed`` is set, each config that does not already fix
        ``seed_param`` gets ``derive_task_seed(base_seed, config)``
        injected — the same seed serial or parallel.
    chunksize:
        Tasks handed to each worker per dispatch (``ProcessPoolExecutor
        .map`` chunking); raise it for very cheap grid points.
    tracer / metrics:
        Optional :mod:`repro.obs` hooks.  Each hook that is omitted
        independently adopts the corresponding ambient one from an
        enclosing :func:`repro.obs.observe` block.  Each
        grid point then lands as a ``sweep_task`` trace event and feeds
        ``sweep.*`` counters, the task wall-time histogram, and the
        worker-utilization gauge.  (Worker *processes* do not inherit
        the observation — tasks run untraced; the runner records them
        from the parent.)
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[SweepCache] = None,
        base_seed: Optional[int] = None,
        seed_param: str = "seed",
        chunksize: int = 1,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ):
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if tracer is None or metrics is None:
            observation = _active_observation()
            if observation is not None:
                if tracer is None:
                    tracer = observation.tracer
                if metrics is None:
                    metrics = observation.metrics
        self._tracer = tracer
        self._metrics = metrics
        self.workers = max(1, int(workers))
        self.cache = cache
        self.base_seed = base_seed
        self.seed_param = seed_param
        self.chunksize = chunksize
        self.stats = RunnerStats(workers=self.workers)

    # -- public API ------------------------------------------------------

    def run(
        self,
        experiment: str,
        fn: Callable[..., Any],
        configs: Sequence[Dict[str, Any]],
    ) -> List[Any]:
        """Run ``fn(**config)`` for every config, in config order.

        Cached points replay from disk; the rest execute inline or on
        the pool.  The returned list matches ``configs`` positionally no
        matter how tasks were scheduled.
        """
        start = time.perf_counter()
        # Wall-clock accrual and the derived utilization gauges must
        # survive a raising grid point: a failed task that skipped them
        # would leave busy_s contributions (from earlier run() calls)
        # divided by a stale wall_s, overstating utilization forever.
        try:
            version = code_version(fn)
            prepared: List[Dict[str, Any]] = []
            for config in configs:
                kwargs = dict(config)
                if (self.base_seed is not None
                        and self.seed_param not in kwargs):
                    kwargs[self.seed_param] = derive_task_seed(
                        self.base_seed, config
                    )
                prepared.append(kwargs)

            results: List[Any] = [None] * len(prepared)
            pending: List[Tuple[int, str, Dict[str, Any]]] = []
            for index, kwargs in enumerate(prepared):
                key = SweepCache.key(version, canonical_config_hash(kwargs))
                if self.cache is not None:
                    found, value = self.cache.lookup(experiment, key)
                    if found:
                        results[index] = value
                        self._record_task(
                            TaskRecord(experiment, key, 0.0, cached=True)
                        )
                        continue
                pending.append((index, key, kwargs))

            if pending:
                executed = self._execute(fn, pending)
                fresh: List[Tuple[str, Any, float]] = []
                for (index, key, _kwargs), (result, elapsed) in zip(
                    pending, executed
                ):
                    results[index] = result
                    self._record_task(
                        TaskRecord(experiment, key, elapsed, cached=False)
                    )
                    if self.cache is not None:
                        ok, decoded = _json_roundtrip(result)
                        if ok:
                            # Store (and return) the decoded form so a
                            # fresh run and a cached replay are
                            # bit-identical.
                            results[index] = decoded
                            fresh.append((key, decoded, elapsed))
                        else:
                            self.stats.uncacheable += 1
                if self.cache is not None and fresh:
                    self.cache.store_many(experiment, fresh)
        finally:
            self.stats.wall_s += time.perf_counter() - start
            if self._metrics is not None:
                self._metrics.set_gauge("sweep.wall_s",
                                        round(self.stats.wall_s, 6))
                self._metrics.set_gauge("sweep.worker_utilization",
                                        round(self.stats.utilization(), 6))
                self._metrics.set_gauge("sweep.workers", float(self.workers))
        return results

    # -- internals -------------------------------------------------------

    def _record_task(self, record: TaskRecord) -> None:
        """Record one grid point into stats and the obs registry."""
        self.stats.record(record)
        if self._metrics is not None:
            if record.cached:
                self._metrics.inc("sweep.cache_hits")
            else:
                self._metrics.inc("sweep.cache_misses")
                self._metrics.observe("sweep.task_wall_s", record.elapsed_s)
        if self._tracer is not None:
            # Note: elapsed_s is host wall time — sweep_task events are
            # the one trace kind that is not byte-stable across runs.
            self._tracer.emit(
                "sweep_task", experiment=record.experiment,
                config_hash=record.config_hash, cached=record.cached,
                elapsed_s=round(record.elapsed_s, 6),
            )

    def _execute(
        self,
        fn: Callable[..., Any],
        pending: Sequence[Tuple[int, str, Dict[str, Any]]],
    ) -> List[Tuple[Any, float]]:
        """Run the non-cached tasks; returns ``(result, elapsed)`` pairs
        in ``pending`` order."""
        if self.workers > 1 and len(pending) > 1 and self._picklable(fn, pending):
            payloads = [
                (index, fn, kwargs) for index, _key, kwargs in pending
            ]
            out: Dict[int, Tuple[Any, float]] = {}
            with ProcessPoolExecutor(max_workers=min(
                self.workers, len(pending)
            )) as pool:
                for index, result, elapsed in pool.map(
                    _invoke, payloads, chunksize=self.chunksize
                ):
                    out[index] = (result, elapsed)
            return [out[index] for index, _key, _kwargs in pending]

        executed = []
        for index, _key, kwargs in pending:
            _, result, elapsed = _invoke((index, fn, kwargs))
            executed.append((result, elapsed))
        return executed

    def _picklable(
        self,
        fn: Callable[..., Any],
        pending: Sequence[Tuple[int, str, Dict[str, Any]]],
    ) -> bool:
        """Can this work ship to a process pool?  Lambdas and closures
        can't; fall back to inline execution rather than crash."""
        try:
            pickle.dumps(fn)
            for _index, _key, kwargs in pending:
                pickle.dumps(kwargs)
        except (pickle.PicklingError, TypeError, AttributeError):
            # The three ways pickling a callable/config actually fails:
            # PicklingError (unpicklable object graph), AttributeError
            # (lambdas / nested functions), TypeError (e.g. locks).
            self.stats.serial_fallbacks += 1
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SweepRunner(workers={self.workers}, cache={self.cache!r},"
            f" base_seed={self.base_seed})"
        )
