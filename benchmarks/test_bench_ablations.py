"""Ablation benches for the design choices DESIGN.md §4 calls out.

* determinism — the entire experiment stack is reproducible from a seed;
* erasure coding vs replication — same failure tolerance, less storage;
* DHT lookups — logarithmic routing cost as the overlay grows;
* blockchain throughput — names/hour bounded by block size and interval.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_table


def test_bench_determinism(benchmark, tmp_path):
    """Same seed -> bit-identical experiment outputs — whether the grid
    runs serial, on a process pool, or replays from the on-disk cache;
    different seed -> (almost surely) different trajectories."""
    from repro.analysis import (
        SweepCache,
        SweepRunner,
        run_federation_availability,
        run_swarm_availability,
    )

    loads = (0.5, 2.0)

    def run_every_way():
        serial = run_swarm_availability(seed=3, offered_loads=loads)
        parallel = run_swarm_availability(
            seed=3, offered_loads=loads, runner=SweepRunner(workers=2)
        )
        cold = run_swarm_availability(
            seed=3, offered_loads=loads,
            runner=SweepRunner(cache=SweepCache(tmp_path)),
        )
        warm_runner = SweepRunner(cache=SweepCache(tmp_path))
        warm = run_swarm_availability(
            seed=3, offered_loads=loads, runner=warm_runner
        )
        other_seed = run_swarm_availability(seed=4, offered_loads=loads)
        f1 = run_federation_availability(seed=5)
        f2 = run_federation_availability(
            seed=5, runner=SweepRunner(workers=3)
        )
        return serial, parallel, cold, warm, warm_runner, other_seed, f1, f2

    serial, parallel, cold, warm, warm_runner, other_seed, f1, f2 = (
        benchmark.pedantic(run_every_way, rounds=1, iterations=1)
    )
    assert serial == parallel == cold == warm
    assert f1 == f2
    # The warm pass replayed everything: zero recomputation.
    assert warm_runner.stats.misses == 0
    assert warm_runner.stats.hits == len(loads)
    # Different seeds draw different visitor processes.
    assert serial[1]["arrivals"] != other_seed[1]["arrivals"]
    emit("Determinism",
         "serial == parallel == cached-replay; cross-seed runs differ"
         f" (warm cache: {warm_runner.stats.hits} hits, 0 misses)")


def test_bench_erasure_vs_replication(benchmark):
    """Storage overhead to tolerate f node losses: erasure wins."""
    from repro.storage import ErasureCode

    def build_table():
        rows = []
        for tolerated_failures in (1, 2, 3, 4):
            replication_overhead = tolerated_failures + 1  # R copies
            code = ErasureCode(8, tolerated_failures)
            rows.append({
                "tolerated_failures": tolerated_failures,
                "replication_overhead_x": float(replication_overhead),
                "erasure_overhead_x": round(code.storage_overhead, 3),
                "savings": f"{(1 - code.storage_overhead / replication_overhead) * 100:.0f}%",
            })
        return rows

    rows = benchmark(build_table)
    emit("Erasure coding (k=8) vs replication at equal failure tolerance",
         render_table(rows))
    for row in rows:
        assert row["erasure_overhead_x"] < row["replication_overhead_x"]


def test_bench_erasure_actually_tolerates_failures(benchmark):
    """Behavioural check behind the table above: decode succeeds after
    exactly m losses and fails after m+1."""
    import random

    from repro.errors import StorageError
    from repro.sim import RngStreams
    from repro.storage import ErasureCode, make_random_blob

    def tolerate():
        code = ErasureCode(8, 3)
        data = make_random_blob(RngStreams(1), 4096).to_bytes()
        shards = code.encode(data)
        rng = random.Random(7)
        surviving_m = rng.sample(shards, len(shards) - 3)  # lose 3
        ok_after_m = code.decode(surviving_m) == data
        surviving_m1 = rng.sample(shards, len(shards) - 4)  # lose 4
        try:
            code.decode(surviving_m1)
            failed_after_m1 = False
        except StorageError:
            failed_after_m1 = True
        return ok_after_m, failed_after_m1

    ok_after_m, failed_after_m1 = benchmark(tolerate)
    assert ok_after_m
    assert failed_after_m1


def test_bench_dht_lookup_scaling(benchmark):
    """Routing cost grows ~logarithmically with overlay size."""
    from repro.dht import DhtConfig, build_overlay, key_for
    from repro.net import ConstantLatency, Network
    from repro.sim import RngStreams, Simulator

    def measure():
        rows = []
        for n in (16, 64, 256):
            sim = Simulator()
            network = Network(
                sim, RngStreams(2), latency=ConstantLatency(0.005)
            )
            overlay = build_overlay(
                network, [f"n{i}" for i in range(n)], DhtConfig(k=8, alpha=3)
            )
            before = network.monitor.counters.get("rpcs_sent")

            def lookups():
                for i in range(20):
                    yield from overlay["n0"].lookup(key_for(f"target-{i}"))
                return True

            sim.run_process(lookups())
            rpcs = (network.monitor.counters.get("rpcs_sent") - before) / 20
            rows.append({"overlay_size": n, "rpcs_per_lookup": round(rpcs, 1)})
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Kademlia lookup cost vs overlay size", render_table(rows))
    by_n = {row["overlay_size"]: row["rpcs_per_lookup"] for row in rows}
    # Sub-linear: 16x more nodes must cost far less than 16x more RPCs.
    assert by_n[256] < 4 * by_n[16]


def test_bench_chain_name_throughput(benchmark):
    """§3.1: registration throughput is bounded by block size/interval.

    Throughput saturates at max_txs_per_block / block_interval regardless
    of demand — the scalability cost blockchains pay for consensus.
    """
    from repro.chain import BlockchainNetwork, ConsensusParams, TxKind, make_transaction
    from repro.crypto import generate_keypair
    from repro.sim import RngStreams, Simulator

    def measure():
        rows = []
        for max_txs in (5, 20):
            sim = Simulator()
            streams = RngStreams(8)
            users = [generate_keypair(f"tp-user-{i}") for i in range(300)]
            chain_net = BlockchainNetwork(
                sim, streams,
                params=ConsensusParams(
                    target_block_interval=10.0, retarget_interval=1000,
                    initial_difficulty=100.0,
                ),
                propagation_delay=0.2,
                premine={u.public_key: 10.0 for u in users},
                max_txs_per_block=max_txs,
            )
            chain_net.add_participant("m", hashrate=10.0)
            chain_net.start()
            for i, user in enumerate(users):
                tx = make_transaction(
                    user, TxKind.NAME_REGISTER,
                    {"name": f"name-{i}", "value": i}, 0, fee=0.01,
                )
                chain_net.submit_transaction(tx)
            sim.run(until=400.0)
            state = chain_net.participant("m").chain.state_at()
            registered = len(state.names)
            rows.append({
                "max_txs_per_block": max_txs,
                "registered_in_400s": registered,
                "throughput_per_hour": registered * 9,
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Name-registration throughput vs block capacity", render_table(rows))
    small, large = rows[0], rows[1]
    # The small-block chain saturates at ~max_txs x blocks mined; the
    # large-block chain clears the whole demand in the same wall-clock.
    assert small["registered_in_400s"] < 0.85 * large["registered_in_400s"]
    assert small["registered_in_400s"] <= 5 * 55  # capacity bound + slack
    assert large["registered_in_400s"] >= 290  # demand ~fully served


def test_bench_stale_rate_vs_propagation_delay(benchmark):
    """§3.1 performance: slow block propagation wastes mining work.

    Natural forks occur when two blocks are found within a propagation
    window; the stale-block fraction therefore rises with delay/interval —
    one reason blockchains keep intervals long (and throughput low).
    """
    from repro.chain import BlockchainNetwork, ConsensusParams
    from repro.sim import RngStreams, Simulator

    def measure():
        rows = []
        for delay in (0.1, 2.0, 8.0):
            sim = Simulator()
            streams = RngStreams(19)
            chain_net = BlockchainNetwork(
                sim, streams,
                params=ConsensusParams(
                    target_block_interval=10.0, retarget_interval=10_000,
                    initial_difficulty=100.0,
                ),
                propagation_delay=delay,
            )
            for i in range(4):
                chain_net.add_participant(f"m{i}", hashrate=2.5)
            chain_net.start()
            sim.run(until=20_000.0)
            for p in chain_net.participants():
                p.stop_mining()
            sim.run(until=sim.now + 10 * delay + 1)
            mined = chain_net.monitor.counters.get("blocks_mined")
            stale = chain_net.stale_block_count()
            rows.append({
                "propagation_delay_s": delay,
                "blocks_mined": mined,
                "stale_blocks": stale,
                "stale_fraction": round(stale / mined, 3),
            })
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("Stale-block rate vs propagation delay (10s block interval)",
         render_table(rows))
    by_delay = {row["propagation_delay_s"]: row["stale_fraction"] for row in rows}
    # Monotone waste: ~0 at fast propagation, significant at delay ~ interval.
    assert by_delay[0.1] <= by_delay[2.0] <= by_delay[8.0]
    assert by_delay[0.1] < 0.05
    assert by_delay[8.0] > 0.15
