"""Name records: what a registered name binds to.

Following Blockstack (§3.1), a name binds a human-meaningful string to a
public key and a *zone-file hash* — the actual service data lives
off-chain (the paper: blockchains limit on-chain data), and the hash makes
it tamper-evident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.crypto.hashing import hash_obj
from repro.errors import NamingError

__all__ = ["NameBinding", "ZoneFile", "validate_name"]

MAX_NAME_LENGTH = 64
_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789-_.")


def validate_name(name: str) -> str:
    """Names are lowercase DNS-ish labels; raises on anything else."""
    if not name or len(name) > MAX_NAME_LENGTH:
        raise NamingError(f"name length must be 1..{MAX_NAME_LENGTH}: {name!r}")
    if not set(name) <= _ALLOWED:
        raise NamingError(f"name contains invalid characters: {name!r}")
    if name[0] in ".-" or name[-1] in ".-":
        raise NamingError(f"name cannot start/end with separators: {name!r}")
    return name


@dataclass(frozen=True)
class ZoneFile:
    """Off-chain service data for a name (endpoints, storage pointers)."""

    entries: Dict[str, Any]

    @property
    def digest(self) -> str:
        return hash_obj(self.entries)


@dataclass(frozen=True)
class NameBinding:
    """The on-chain (or on-server) value: owner key + zone-file hash."""

    name: str
    public_key: str
    zone_file_hash: str

    def __post_init__(self) -> None:
        validate_name(self.name)
        if not self.public_key:
            raise NamingError("binding requires a public key")

    def as_value(self) -> Dict[str, str]:
        """The compact form stored in the registry (fits on-chain limits)."""
        return {"pk": self.public_key, "zf": self.zone_file_hash}

    @staticmethod
    def from_value(name: str, value: Dict[str, str]) -> "NameBinding":
        if not isinstance(value, dict) or "pk" not in value:
            raise NamingError(f"malformed binding value for {name!r}: {value!r}")
        return NameBinding(name, value["pk"], value.get("zf", ""))

    def verify_zone_file(self, zone_file: ZoneFile) -> bool:
        """Check an off-chain zone file against the committed hash."""
        return zone_file.digest == self.zone_file_hash
