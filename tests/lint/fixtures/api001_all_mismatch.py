"""API001 positive fixture: phantom export + unexported public def."""

__all__ = ["exists", "phantom"]


def exists() -> int:
    return 1


def unexported() -> int:
    return 2
