"""Registry and timing-harness behavior: selection, determinism checks."""

import pytest

from repro.bench.harness import run_benchmark, run_suite, work_counters
from repro.bench.registry import (
    SUITES,
    Benchmark,
    all_benchmarks,
    get_benchmark,
    register_benchmark,
    select_benchmarks,
)
from repro.errors import BenchError
from repro.obs import Metrics


def _bench(name, fn, suite="micro"):
    return Benchmark(name=name, suite=suite, description="test", fn=fn)


class TestRegistry:
    def test_registered_suites_are_populated(self):
        names = {b.name for b in all_benchmarks()}
        assert "micro.engine.schedule_fire_cancel" in names
        assert "macro.e4.federation_scaling" in names
        suites = {b.suite for b in all_benchmarks()}
        assert suites == set(SUITES)

    def test_selection_by_suite_and_filter(self):
        micro = select_benchmarks(suite="micro")
        assert micro and all(b.suite == "micro" for b in micro)
        rng = select_benchmarks(name_filter="rng")
        assert rng and all("rng" in b.name for b in rng)
        assert [b.name for b in micro] == sorted(b.name for b in micro)

    def test_unknown_suite_rejected(self):
        with pytest.raises(BenchError):
            select_benchmarks(suite="nano")
        with pytest.raises(BenchError):
            register_benchmark("x", "nano", "bad suite")

    def test_duplicate_name_rejected(self):
        existing = all_benchmarks()[0].name
        with pytest.raises(BenchError):
            register_benchmark(existing, "micro", "dup")(lambda metrics: None)

    def test_get_benchmark_unknown_raises(self):
        with pytest.raises(BenchError):
            get_benchmark("no.such.benchmark")


class TestHarness:
    def test_work_counters_exclude_gauges_and_histograms(self):
        metrics = Metrics()
        metrics.inc("bench.steps", 7)
        metrics.set_gauge("bench.wall_s", 1.23)
        metrics.observe("bench.latency", 0.5)
        assert work_counters(metrics) == {"bench.steps": 7}

    def test_deterministic_body_flagged_deterministic(self):
        def body(metrics):
            metrics.inc("bench.fixed", 42)

        result = run_benchmark(_bench("t.fixed", body), repetitions=3)
        assert result.deterministic is True
        assert result.work == {"bench.fixed": 42}
        assert result.repetitions == 3
        assert 0.0 <= result.best_s <= result.mean_s

    def test_nondeterministic_body_detected(self):
        calls = [0]

        def body(metrics):
            calls[0] += 1
            metrics.inc("bench.varies", calls[0])

        result = run_benchmark(_bench("t.varies", body), repetitions=2)
        assert result.deterministic is False

    def test_single_repetition_cannot_prove_drift(self):
        calls = [0]

        def body(metrics):
            calls[0] += 1
            metrics.inc("bench.varies", calls[0])

        result = run_benchmark(_bench("t.once", body), repetitions=1)
        assert result.deterministic is True

    def test_zero_repetitions_rejected(self):
        with pytest.raises(BenchError):
            run_benchmark(_bench("t.zero", lambda metrics: None),
                          repetitions=0)

    def test_as_dict_sorts_work_and_rounds(self):
        def body(metrics):
            metrics.inc("z.last")
            metrics.inc("a.first")

        record = run_benchmark(_bench("t.sorted", body)).as_dict()
        assert list(record["work"]) == ["a.first", "z.last"]
        assert record["best_s"] == round(record["best_s"], 6)

    def test_registered_micro_bodies_repeat_identically(self):
        # The double-run acceptance property, at the harness level.
        bench = get_benchmark("micro.rng.stream_draw")
        first = run_benchmark(bench, repetitions=2)
        second = run_benchmark(bench, repetitions=2)
        assert first.deterministic and second.deterministic
        assert first.work == second.work

    def test_run_suite_reports_progress_in_name_order(self):
        seen = []
        results = run_suite(suite="micro", repetitions=1,
                            name_filter="transport",
                            progress=seen.append)
        assert seen == [r.name for r in results]
        assert seen == sorted(seen)
        assert all("transport" in name for name in seen)
