"""Regression tests for event-queue leaks: AnyOf loser cancellation,
Signal waiter pruning, and stale-resume prevention.

Each test documents the pre-fix failure mode it pins down; the queue
metrics introduced with :mod:`repro.obs` make the leaks assertable.
"""

import pytest

from repro.errors import SimulationError
from repro.obs import Metrics, Tracer
from repro.sim import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout


class TestAnyOfLoserCancellation:
    def test_losing_timeout_leaves_the_queue(self):
        """Pre-fix: the losing Timeout(1000) stayed in the heap, so the
        queue was non-empty right after the winner resumed."""
        sim = Simulator()
        fast = Signal("fast")

        def waiter():
            index, value = yield AnyOf([fast, Timeout(1000.0)])
            return (index, value, sim.pending_events)

        process = sim.spawn(waiter())
        sim.schedule(1.0, fast.fire, "won")
        sim.run()
        index, value, pending_at_resume = process.result
        assert (index, value) == (0, "won")
        # The loser was cancelled before the waiter even resumed.
        assert pending_at_resume == 0
        assert sim.pending_events == 0

    def test_run_terminates_at_winner_time_not_timeout_expiry(self):
        """Pre-fix: ``run()`` (no ``until``) kept spinning until the lost
        timeout expired — here t=5000 instead of t=1."""
        sim = Simulator()
        fast = Signal("fast")

        def waiter():
            yield AnyOf([fast, Timeout(5000.0)])

        sim.spawn(waiter())
        sim.schedule(1.0, fast.fire, None)
        end = sim.run()
        assert end == 1.0

    def test_losing_signal_waiter_pruned(self):
        sim = Simulator()
        winner, loser = Signal("winner"), Signal("loser")

        def waiter():
            yield AnyOf([winner, loser])

        sim.spawn(waiter())
        sim.schedule(1.0, winner.fire, None)
        sim.run()
        assert loser.waiter_count == 0
        # A late fire of the loser wakes nobody and schedules nothing.
        loser.fire("late")
        assert sim.pending_events == 0

    def test_losing_process_keeps_running(self):
        """Cancellation drops the join, not the process itself."""
        sim = Simulator()
        finished = []

        def slow():
            yield 10.0
            finished.append(sim.now)
            return "slow-done"

        def waiter():
            slow_p = sim.spawn(slow())
            index, value = yield AnyOf([slow_p, Timeout(1.0)])
            return (index, value, slow_p.alive)

        process = sim.spawn(waiter())
        sim.run()
        assert process.result == (1, None, True)
        assert finished == [10.0]  # the loser still ran to completion

    def test_same_instant_completions_resolve_fifo(self):
        sim = Simulator()
        s1, s2 = Signal("1"), Signal("2")
        results = []

        def waiter():
            results.append((yield AnyOf([s1, s2])))

        sim.spawn(waiter())
        # Both fire at t=1; s2's fire was scheduled first.
        sim.schedule(1.0, s2.fire, "second-child-first-fire")
        sim.schedule(1.0, s1.fire, "first-child-second-fire")
        sim.run()
        assert results == [(1, "second-child-first-fire")]
        assert sim.pending_events == 0

    def test_anyof_losers_cancelled_metric(self):
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        fast = Signal("fast")

        def waiter():
            yield AnyOf([fast, Timeout(100.0), Timeout(200.0)])

        sim.spawn(waiter())
        sim.schedule(1.0, fast.fire, None)
        sim.run()
        assert metrics.counter("sim.anyof_losers_cancelled") == 2
        assert metrics.counter("sim.events_cancelled") == 2
        assert metrics.gauge("sim.pending_at_run_end") == 0.0

    def test_queue_depth_metric_bounded_under_anyof_churn(self):
        """The observable the ISSUE asks for: repeated AnyOf waits do not
        inflate the queue (pre-fix, max depth grew with iteration count
        because every lost timeout lingered)."""
        metrics = Metrics()
        sim = Simulator(metrics=metrics)

        def worker():
            for _ in range(50):
                ping = Signal("ping")
                sim.schedule(0.5, ping.fire, None)
                yield AnyOf([ping, Timeout(1000.0)])

        sim.spawn(worker())
        sim.run()
        assert metrics.histogram("sim.queue_depth").maximum <= 3
        assert sim.pending_events == 0


class TestSignalWaiterHygiene:
    def test_interrupted_process_removed_from_waiter_list(self):
        """Pre-fix: the waiter entry survived the interrupt, so a later
        fire() double-resumed the process at the wrong wait."""
        sim = Simulator()
        never = Signal("never")
        wakes = []

        def waiter():
            try:
                yield never
            except Interrupt:
                pass
            # Move on to a different wait; the signal must not reach us.
            yield Timeout(10.0)
            wakes.append(sim.now)

        process = sim.spawn(waiter())
        sim.schedule(1.0, process.interrupt, "give up")
        sim.schedule(2.0, never.fire, "too late")
        sim.run()
        assert wakes == [11.0]  # resumed by the timeout, not the signal
        assert never.waiter_count == 0

    def test_double_resume_regression_same_signal_rewait(self):
        """A process that catches an interrupt and re-waits on the same
        signal must be woken exactly once by fire()."""
        sim = Simulator()
        sig = Signal("sig")
        wakes = []

        def waiter():
            try:
                yield sig
            except Interrupt:
                value = yield sig
                wakes.append((sim.now, value))

        process = sim.spawn(waiter())
        sim.schedule(1.0, process.interrupt, None)
        sim.schedule(2.0, sig.fire, "payload")
        sim.run()
        assert wakes == [(2.0, "payload")]
        assert sim.pending_events == 0

    def test_fire_skips_dead_process_waiters(self):
        """Liveness guard: fire() must not schedule a resume for a
        process that already finished."""
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        sig = Signal("sig")

        def short_lived():
            # Subscribe to the signal, then get interrupted to death.
            yield sig

        process = sim.spawn(short_lived())

        def kill_then_fire():
            yield 1.0
            # Detach the waiter entry from under the signal by killing
            # the process through a pre-cancellation path: interrupt it
            # (uncaught -> dies), then fire.
            process.interrupt("die")
            yield 1.0
            sig.fire("nobody-home")

        sim.spawn(kill_then_fire())
        sim.run()
        assert not process.alive
        assert sim.pending_events == 0
        # The interrupt path prunes the waiter before fire() ever sees
        # it, so the dead-waiter guard had nothing to skip...
        assert metrics.counter("sim.signal_dead_waiters_skipped") == 0

    def test_fire_dead_waiter_guard_counts(self):
        """...but a waiter that dies without unsubscribing (direct
        generator abuse) is skipped and counted by the guard."""
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        sig = Signal("sig")

        def zombie():
            yield sig

        process = sim.spawn(zombie())
        sim.run()
        # Forcibly kill the process without the engine noticing.
        process._alive = False
        sig.fire("zombie-call")
        assert metrics.counter("sim.signal_dead_waiters_skipped") == 1
        assert sim.pending_events == 0

    def test_stale_timeout_after_interrupt_is_cancelled(self):
        """Pre-fix: a process interrupted out of a long Timeout left the
        timeout event in the heap; it later spuriously resumed the
        process at its next wait."""
        sim = Simulator()
        wakes = []

        def waiter():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass
            yield Timeout(50.0)
            wakes.append(sim.now)

        process = sim.spawn(waiter())
        sim.schedule(1.0, process.interrupt, None)
        end = sim.run()
        assert wakes == [51.0]
        # Queue drained at the real completion, not at t=100.
        assert end == 51.0
        assert sim.pending_events == 0

    def test_interrupt_event_cancelled_when_delivered_elsewhere(self):
        """An interrupt delivered via a signal resume must cancel its own
        wake-up event instead of leaving it to fire as a spurious None
        resume."""
        sim = Simulator()
        sig = Signal("sig")
        wakes = []

        def waiter():
            try:
                yield sig
            except Interrupt:
                pass
            value = yield Timeout(5.0)
            wakes.append((sim.now, value))

        process = sim.spawn(waiter())

        def same_instant():
            yield 1.0
            process.interrupt("now")
            sig.fire("also-now")

        sim.spawn(same_instant())
        sim.run()
        assert wakes == [(6.0, None)]
        assert sim.pending_events == 0


class TestTracingHooks:
    def test_event_lifecycle_traced(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)

        def worker():
            yield 1.0
            return "done"

        sim.spawn(worker(), name="w")
        sim.run()
        assert tracer.count("process_spawned") == 1
        assert tracer.count("process_finished") == 1
        assert tracer.count("event_fired") == sim.events_processed
        spawned = next(tracer.iter_kind("process_spawned"))
        assert spawned["name"] == "w"
        finished = next(tracer.iter_kind("process_finished"))
        assert finished["t"] == 1.0

    def test_cancelled_events_traced_at_cancel_time(self):
        tracer = Tracer()
        sim = Simulator(tracer=tracer)
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        # Traced immediately at cancel time, before any run()...
        assert tracer.count("event_cancelled") == 1
        sim.run()
        # ...and not double-counted when the tombstone is drained.
        assert tracer.count("event_cancelled") == 1
        assert tracer.count("event_fired") == 0

    def test_cancellation_counted_even_when_tombstone_never_drained(self):
        """Pre-fix: only tombstones popped by the run loop were counted,
        so a cancel whose tombstone never reached the heap top before
        run() returned was invisible to sim.events_cancelled."""
        metrics = Metrics()
        tracer = Tracer()
        sim = Simulator(tracer=tracer, metrics=metrics)
        sim.schedule(50.0, lambda: None)  # live event beyond the horizon
        handle = sim.schedule(100.0, lambda: None)
        sim.schedule(1.0, handle.cancel)
        sim.run(until=2.0)
        # The t=100 tombstone sits behind the live t=50 event and was
        # never drained, but the cancellation is still counted.
        assert metrics.counter("sim.events_cancelled") == 1
        assert tracer.count("event_cancelled") == 1
        assert sim.pending_events == 1  # only the live t=50 event

    def test_disabled_observation_costs_nothing_structural(self):
        sim = Simulator()
        assert sim.tracer is None
        assert sim.metrics is None


class TestStaleCombinatorResume:
    """A same-instant interrupt sequenced *between* a combinator's
    completion and its scheduled resume must tombstone that resume.

    Pre-fix, the completed wait's cancel() was a no-op, so the stale
    resume fired after the interrupt moved the generator to a new wait:
    it cancelled the new wait's subscription and sent the combinator's
    ``(index, value)`` into the wrong ``yield``.
    """

    def test_anyof_resume_cancelled_by_same_instant_interrupt(self):
        sim = Simulator()
        fast = Signal("fast")
        wakes = []

        def victim():
            try:
                yield AnyOf([fast, Timeout(5.0)])
            except Interrupt:
                pass
            value = yield Timeout(10.0)
            wakes.append((sim.now, value))

        process = sim.spawn(victim())
        # At t=1 the fire() schedules the combinator's completion
        # callback, then the interrupt schedules its own resume; the
        # completion callback runs next and schedules the combinator
        # resume *after* the interrupt in the same instant.
        sim.schedule(1.0, fast.fire, "won")
        sim.schedule(1.0, process.interrupt, "same-instant")
        end = sim.run()
        # Pre-fix: wakes == [(1.0, (0, "won"))] and the run ended at
        # t=1 — the stale resume reached the Timeout(10.0) wait.
        assert wakes == [(11.0, None)]
        assert end == 11.0
        assert sim.pending_events == 0

    def test_allof_resume_cancelled_by_same_instant_interrupt(self):
        sim = Simulator()
        last = Signal("last")
        wakes = []

        def victim():
            try:
                yield AllOf([last, Timeout(0.5)])
            except Interrupt:
                pass
            value = yield Timeout(10.0)
            wakes.append((sim.now, value))

        process = sim.spawn(victim())
        sim.schedule(1.0, last.fire, "done")
        sim.schedule(1.0, process.interrupt, "same-instant")
        end = sim.run()
        assert wakes == [(11.0, None)]
        assert end == 11.0
        assert sim.pending_events == 0

    def test_normal_combinator_resume_still_delivers(self):
        """The captured resume event must not suppress the ordinary
        path: resume fires, process re-waits, nothing is lost."""
        sim = Simulator()
        fast = Signal("fast")
        wakes = []

        def waiter():
            result = yield AnyOf([fast, Timeout(5.0)])
            value = yield Timeout(10.0)
            wakes.append((sim.now, result, value))

        sim.spawn(waiter())
        sim.schedule(1.0, fast.fire, "won")
        end = sim.run()
        assert wakes == [(11.0, (0, "won"), None)]
        assert end == 11.0
        assert sim.pending_events == 0


class TestCombinatorCancelEdges:
    def test_allof_cancel_via_interrupt_releases_children(self):
        sim = Simulator()
        s1 = Signal("s1")

        def waiter():
            try:
                yield AllOf([s1, Timeout(500.0)])
            except Interrupt:
                pass

        process = sim.spawn(waiter())
        sim.schedule(1.0, process.interrupt, None)
        end = sim.run()
        # Both the signal waiter and the long timeout were torn down.
        assert s1.waiter_count == 0
        assert end == 1.0
        assert sim.pending_events == 0

    def test_cancel_after_fire_invalidates_scheduled_resume(self):
        """A subscription cancelled between fire() and the resume event
        executing must still suppress the resume."""
        sim = Simulator()
        sig = Signal("sig")
        hits = []
        cancel = sig._subscribe_callback(sim, hits.append)
        sig.fire("value")  # schedules the callback at the current instant
        cancel()  # ...but we cancel before the event runs
        sim.run()
        assert hits == []

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        sig = Signal("sig")
        cancel = sig._subscribe_callback(sim, lambda v: None)
        cancel()
        cancel()  # no error, no double-removal
        sig.fire("x")
        sim.run()
        assert sim.pending_events == 0

    def test_waiting_on_already_fired_signal_cancel(self):
        sim = Simulator()
        sig = Signal("sig")
        sig.fire(42)
        hits = []
        cancel = sig._subscribe_callback(sim, hits.append)
        cancel()
        sim.run()
        assert hits == []


class TestNestedCombinators:
    def test_anyof_of_allof(self):
        """AnyOf accepts nested combinators; the losing AllOf branch is
        torn down child by child."""
        sim = Simulator()
        slow = Signal("slow")

        def waiter():
            index, value = yield AnyOf(
                [AllOf([slow, Timeout(500.0)]), Timeout(2.0)]
            )
            return (index, value)

        process = sim.spawn(waiter())
        end = sim.run()
        assert process.result == (1, None)  # the bare timeout won
        assert end == 2.0  # neither the 500 s timeout nor `slow` linger
        assert slow.waiter_count == 0
        assert sim.pending_events == 0

    def test_allof_of_anyof(self):
        sim = Simulator()
        a, b = Signal("a"), Signal("b")

        def waiter():
            values = yield AllOf(
                [AnyOf([a, Timeout(100.0)]), AnyOf([b, Timeout(200.0)])]
            )
            return values

        process = sim.spawn(waiter())
        sim.schedule(1.0, a.fire, "A")
        sim.schedule(2.0, b.fire, "B")
        end = sim.run()
        assert process.result == [(0, "A"), (0, "B")]
        assert end == 2.0  # both inner losers were cancelled
        assert sim.pending_events == 0

    def test_anyof_with_already_fired_child(self):
        """An already-fired signal wins at the current instant and the
        fresh timeout is immediately cancelled."""
        sim = Simulator()
        done = Signal("done")
        done.fire("early")

        def waiter():
            index, value = yield AnyOf([done, Timeout(50.0)])
            return (index, value, sim.now)

        process = sim.spawn(waiter())
        end = sim.run()
        assert process.result == (0, "early", 0.0)
        assert end == 0.0

    def test_allof_with_already_fired_children(self):
        sim = Simulator()
        first, second = Signal("first"), Signal("second")
        first.fire(1)
        second.fire(2)

        def waiter():
            return (yield AllOf([first, second]))

        process = sim.spawn(waiter())
        sim.run()
        assert process.result == [1, 2]
        assert sim.pending_events == 0

    def test_empty_combinators_rejected(self):
        with pytest.raises(SimulationError):
            AnyOf([])
        with pytest.raises(SimulationError):
            AllOf([])

    def test_garbage_child_rejected(self):
        sim = Simulator()

        def waiter():
            yield AnyOf([Timeout(1.0), "not-a-waitable"])

        with pytest.raises(SimulationError):
            sim.run_process(waiter())


class TestRunProcessStillStrict:
    def test_deadlocked_process_still_detected(self):
        sim = Simulator()
        never = Signal("never")

        def stuck():
            yield never

        with pytest.raises(SimulationError):
            sim.run_process(stuck())
