"""Hashing helpers.

Real SHA-256 is used wherever the design needs a real hash (content
addresses, block ids, DHT keys, Merkle trees) so collision and distribution
behaviour are authentic.  Helpers canonicalize structured data so that two
logically equal objects always hash identically.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["sha256", "sha256_hex", "hash_obj", "hash_int", "truncated_int"]


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of raw bytes."""
    if not isinstance(data, (bytes, bytearray)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def sha256_hex(data: bytes) -> str:
    """Hex-encoded SHA-256 digest."""
    return sha256(data).hex()


def _canonical(obj: Any) -> bytes:
    """Canonical byte serialization for hashing structured values.

    Uses JSON with sorted keys; bytes values are hex-tagged so that byte
    strings and their hex text never collide.
    """

    def default(value: Any) -> Any:
        if isinstance(value, (bytes, bytearray)):
            return {"__bytes__": bytes(value).hex()}
        raise TypeError(f"unhashable object in canonical form: {type(value)!r}")

    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=default).encode("utf-8")


def hash_obj(obj: Any) -> str:
    """Hex SHA-256 of a JSON-canonicalizable object."""
    return sha256_hex(_canonical(obj))


def hash_int(obj: Any, bits: int = 256) -> int:
    """Hash an object to an integer in [0, 2**bits)."""
    digest = sha256(_canonical(obj))
    return int.from_bytes(digest, "big") >> (256 - bits)


def truncated_int(hex_digest: str, bits: int) -> int:
    """Interpret the top ``bits`` of a hex digest as an integer."""
    if bits <= 0 or bits > 256:
        raise ValueError(f"bits must be in (0, 256], got {bits}")
    return int(hex_digest, 16) >> (256 - bits)
