"""Erasure-coded blob storage across a churning provider pool.

The counterpart to :class:`~repro.storage.replication.ReplicatedBlobStore`:
instead of R full copies, the blob is Reed-Solomon-encoded into ``k + m``
shards placed on distinct providers; any ``k`` reachable shards
reconstruct.  Repair decodes from surviving shards and re-encodes the
missing ones — cheaper in storage (overhead (k+m)/k vs R) but costlier in
repair work, the exact trade the §3.3 literature (TotalRecall, Glacier)
studies and our ablation bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Set

from repro.errors import NetworkError, StorageError
from repro.net.transport import Network
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams
from repro.storage.blob import DataBlob
from repro.storage.erasure import ErasureCode, Shard
from repro.storage.provider import StorageProvider

__all__ = ["ErasureBlobStore", "ShardHealth"]


@dataclass
class ShardHealth:
    """Tracked state for one erasure-coded blob."""

    content_id: str
    shard_len: int
    # shard index -> provider currently assigned to hold it
    placement: Dict[int, str] = field(default_factory=dict)
    repairs: int = 0


class ErasureBlobStore:
    """Maintains (k, m) erasure-coded blobs across a provider pool."""

    def __init__(
        self,
        network: Network,
        providers: List[StorageProvider],
        streams: RngStreams,
        k: int = 4,
        m: int = 2,
        check_interval: float = 60.0,
        client_id: str = "erasure-manager",
    ):
        self.code = ErasureCode(k, m)
        if len(providers) < self.code.n:
            raise StorageError(
                f"pool of {len(providers)} cannot hold {self.code.n} shards"
            )
        self.network = network
        self.providers = {p.node_id: p for p in providers}
        self.check_interval = check_interval
        self.client_id = client_id
        if not network.has_node(client_id):
            network.create_node(client_id)
        self.monitor = Monitor()
        self._health: Dict[str, ShardHealth] = {}
        self._originals: Dict[str, bytes] = {}  # content id -> original bytes
        self._running = False
        self._rng = streams.stream("storage.erasure_store")

    # -- shard transport --------------------------------------------------------

    @staticmethod
    def _shard_key(content_id: str, index: int) -> str:
        return f"shard:{content_id}:{index}"

    def _push_shard(self, src: str, provider_id: str, content_id: str,
                    shard: Shard) -> Generator:
        """Store one shard as a single-chunk blob on a provider."""
        shard_blob = DataBlob.from_bytes(shard.payload, chunk_size=len(shard.payload))
        yield from self.network.rpc(
            src,
            provider_id,
            "store.put",
            {
                "commitment_id": self._shard_key(content_id, shard.index),
                "chunk_count": 1,
                "entries": [(0, shard.payload, shard_blob.proof_for(0))],
            },
            size_bytes=len(shard.payload),
            timeout=300.0,
        )
        self.monitor.counters.increment("bytes_uploaded", len(shard.payload))

    def _pull_shard(self, provider_id: str, content_id: str, index: int) -> Generator:
        chunk, _proof = yield from self.network.rpc(
            self.client_id,
            provider_id,
            "store.get",
            {"commitment_id": self._shard_key(content_id, index), "index": 0},
            timeout=60.0,
        )
        return Shard(index, chunk)

    # -- public API ------------------------------------------------------------------

    def store(self, data: bytes, content_id: str) -> Generator:
        """Encode and place all n shards on distinct online providers."""
        if content_id in self._health:
            raise StorageError(f"content {content_id!r} already stored")
        shards = self.code.encode(data)
        online = sorted(
            (p for p in self.providers.values() if p.node.online),
            key=lambda p: p.node_id,
        )
        if len(online) < self.code.n:
            raise StorageError(
                f"only {len(online)} providers online, need {self.code.n}"
            )
        chosen = self._rng.sample(online, self.code.n)
        health = ShardHealth(content_id=content_id, shard_len=len(shards[0].payload))
        for shard, provider in zip(shards, chosen):
            yield from self._push_shard(
                self.client_id, provider.node_id, content_id, shard
            )
            health.placement[shard.index] = provider.node_id
        self._health[content_id] = health
        self._originals[content_id] = data
        return health

    def retrieve(self, content_id: str) -> Generator:
        """Reconstruct from any k reachable shards."""
        health = self._require(content_id)
        gathered: List[Shard] = []
        for index, provider_id in sorted(health.placement.items()):
            if len(gathered) >= self.code.k:
                break
            if not self.providers[provider_id].node.online:
                continue
            try:
                shard = yield from self._pull_shard(provider_id, content_id, index)
            except (NetworkError, StorageError):
                continue  # provider churned or shard failed verification
            gathered.append(shard)
        if len(gathered) < self.code.k:
            self.monitor.counters.increment("retrievals_failed")
            raise StorageError(
                f"only {len(gathered)} of {self.code.k} required shards"
                f" reachable for {content_id!r}"
            )
        self.monitor.counters.increment("retrievals_ok")
        return self.code.decode(gathered)

    # -- repair ------------------------------------------------------------------------

    def start_repair(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.spawn(self._repair_loop(), name="erasure-repair")

    def stop_repair(self) -> None:
        self._running = False

    def _repair_loop(self) -> Generator:
        while self._running:
            yield self.check_interval
            if not self._running:
                return
            for content_id in list(self._health):
                yield from self._repair_one(content_id)

    def _repair_one(self, content_id: str) -> Generator:
        """Re-create shards whose providers are offline, onto fresh ones.

        Repair requires k live shards (decode), so it is *more* fragile
        than replication's copy-from-any-survivor — part of the trade.
        """
        health = self._health[content_id]
        offline = [
            index for index, provider_id in health.placement.items()
            if not self.providers[provider_id].node.online
        ]
        if not offline:
            return
        self.monitor.gauge(f"offline_shards.{content_id[:8]}").set(
            self.network.sim.now, len(offline)
        )
        # Gather k live shards to decode.
        try:
            data = yield from self.retrieve(content_id)
        except StorageError:
            return  # below k live shards: cannot repair this round
        shards = {s.index: s for s in self.code.encode(data)}
        used = set(health.placement.values())
        candidates = [
            p for p in self.providers.values()
            if p.node.online and p.node_id not in used
        ]
        self._rng.shuffle(candidates)
        for index in offline:
            if not candidates:
                break
            target = candidates.pop()
            try:
                yield from self._push_shard(
                    self.client_id, target.node_id, content_id, shards[index]
                )
            except (NetworkError, StorageError):
                continue  # target churned mid-repair: try the next one
            health.placement[index] = target.node_id
            health.repairs += 1
            self.monitor.counters.increment("repairs")
            self.monitor.counters.increment(
                "repair_bytes", health.shard_len
            )

    # -- measurement ------------------------------------------------------------------------

    def _require(self, content_id: str) -> ShardHealth:
        health = self._health.get(content_id)
        if health is None:
            raise StorageError(f"unknown content {content_id!r}")
        return health

    def live_shards(self, content_id: str) -> int:
        health = self._require(content_id)
        return sum(
            1 for provider_id in health.placement.values()
            if self.providers[provider_id].node.online
        )

    def stored_bytes(self, content_id: str) -> int:
        """Physical bytes across the pool for this blob (n x shard)."""
        health = self._require(content_id)
        return health.shard_len * len(health.placement)

    def repair_bytes(self) -> int:
        return self.monitor.counters.get("repair_bytes")
