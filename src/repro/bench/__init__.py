"""repro.bench: deterministic, tracked performance benchmarks.

The ROADMAP's north star — a reproduction that runs as fast as the
hardware allows — needs a perf trajectory, not anecdotes.  This package
turns every speed claim into a checked artifact:

* :mod:`repro.bench.registry` — named micro benchmarks (event loop,
  transport legs, RPC round-trips, RNG streams, histograms) and macro
  workloads (E4/E5/E6 experiment runs, the quiet-fault-plan overhead
  pair, the SweepRunner cold-vs-warm cache replay).
* :mod:`repro.bench.harness` — best-of-N wall clock plus exact,
  machine-independent **work counters** pulled from :mod:`repro.obs`
  metrics, so regressions are detectable even on noisy CI hosts.
* :mod:`repro.bench.report` — a versioned JSON schema
  (:func:`validate_bench_report`) for the committed ``BENCH_<n>.json``
  baselines.
* :mod:`repro.bench.compare` — tolerance-banded wall-clock comparison
  with *exact* work-counter matching.
* :mod:`repro.bench.cli` — ``python -m repro bench`` with lint-style
  exit codes (0 ok, 1 regression, 2 usage).

Benchmark bodies never read the host clock (lint rule BEN001); only the
harness times.  See ``docs/BENCHMARKS.md`` for the catalog, the report
schema, and how to refresh the committed baseline.
"""

from repro.bench.compare import (
    DEFAULT_ABSOLUTE_FLOOR_S,
    DEFAULT_TOLERANCE,
    CompareFinding,
    compare_reports,
    render_compare_human,
)
from repro.bench.harness import (
    DEFAULT_REPETITIONS,
    BenchResult,
    run_benchmark,
    run_suite,
    work_counters,
)
from repro.bench.registry import (
    SUITES,
    Benchmark,
    all_benchmarks,
    get_benchmark,
    register_benchmark,
    select_benchmarks,
)
from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    build_report,
    render_bench_human,
    render_bench_json,
    validate_bench_report,
)

# Importing the workload modules registers their benchmarks.
from repro.bench import macro  # noqa: F401
from repro.bench import micro  # noqa: F401

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_ABSOLUTE_FLOOR_S",
    "DEFAULT_REPETITIONS",
    "DEFAULT_TOLERANCE",
    "Benchmark",
    "BenchResult",
    "CompareFinding",
    "SUITES",
    "all_benchmarks",
    "build_report",
    "compare_reports",
    "get_benchmark",
    "register_benchmark",
    "render_bench_human",
    "render_bench_json",
    "render_compare_human",
    "run_benchmark",
    "run_suite",
    "select_benchmarks",
    "validate_bench_report",
    "work_counters",
]
