"""Gossip substrate: anti-entropy replication and flooding pub/sub."""

from repro.gossip.antientropy import AntiEntropyNode, ReplicaStore, Versioned
from repro.gossip.pubsub import PubSubMessage, PubSubNode, build_pubsub_overlay

__all__ = [
    "AntiEntropyNode",
    "ReplicaStore",
    "Versioned",
    "PubSubMessage",
    "PubSubNode",
    "build_pubsub_overlay",
]
