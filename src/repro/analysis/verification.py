"""Reproduction self-check: does this build still reproduce the paper?

``verify_reproduction()`` runs a fast version of every reproduction
target (DESIGN.md §3's expected shapes) and returns PASS/FAIL rows — a
one-command audit a downstream user can run after modifying anything:

    python -m repro verify
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ReproError

__all__ = ["verify_reproduction"]


def _check_table1() -> None:
    from repro.core import table1_rows

    rows = {r["problem"]: r["projects"] for r in table1_rows()}
    assert rows["Naming"] == "Namecoin, Emercoin, Blockstack"
    assert rows["Web applications"] == "Beaker, ZeroNet, Freedom.js"


def _check_table2() -> None:
    from repro.storage import table2_rows

    rows = {r["system"]: r for r in table2_rows()}
    assert len(rows) == 7
    assert rows["IPFS"]["blockchain_usage"] == "None"
    assert "Proof-of-replication" in rows["Filecoin"]["incentive_scheme"]


def _check_table3_exact() -> None:
    from repro.analysis import run_feasibility

    result = run_feasibility()
    assert result["table3"] == [
        {"resource": "Bandwidth", "cloud": "200 Tbps", "devices": "5000 Tbps"},
        {"resource": "Cores", "cloud": "400 M", "devices": "500 M"},
        {"resource": "Storage", "cloud": "80 EB", "devices": "210 EB"},
    ]
    assert all(result["sufficient"].values())


def _check_e4_shape() -> None:
    from repro.analysis import run_federation_availability

    rows = {
        r["model"]: r["read_availability"]
        for r in run_federation_availability(seed=7, n_servers=5, n_users=10,
                                             n_messages=4)
    }
    assert rows["single_home"] < 1.0
    assert rows["replicated_failover"] == 1.0


def _check_e5_shape() -> None:
    from repro.analysis import run_social_tradeoff

    rows = {r["system"]: r for r in run_social_tradeoff(
        seed=3, n_users=12, n_posts=6, n_probes=20, horizon=2000.0
    )}
    assert rows["centralized"]["operator_exposure"] == 1.0
    assert rows["socially_aware_p2p"]["operator_exposure"] == 0.0
    assert (
        rows["centralized"]["availability"]
        >= rows["socially_aware_p2p"]["availability"]
    )


def _check_e6_crossover() -> None:
    from repro.analysis import naming_attack_curve

    curve = {r["attacker_share"]: r["rewrite_probability"]
             for r in naming_attack_curve(shares=(0.2, 0.5, 0.6))}
    assert curve[0.2] < 0.05
    assert curve[0.5] == 1.0
    assert curve[0.6] == 1.0


def _check_e7_shape() -> None:
    from repro.analysis import run_proof_economics

    rows = {(r["behaviour"], r["audit"]): r
            for r in run_proof_economics(seed=4, epochs=6, blob_chunks=16)}
    assert not rows[("honest", "proof_of_storage")]["slashed"]
    assert not rows[("drop_half_no_audits", "none")]["slashed"]
    assert rows[("dedup_sybil", "proof_of_replication")]["slashed"]


def _check_e8_shape() -> None:
    from repro.analysis import run_swarm_availability

    rows = {r["offered_load"]: r["availability"]
            for r in run_swarm_availability(
                seed=6, offered_loads=(0.2, 16.0), horizon=1500.0
            )}
    assert rows[0.2] < 0.5 < rows[16.0]


def _check_e9_shape() -> None:
    from repro.analysis import run_quality_vs_quantity

    rows = {(r["infrastructure"], r["replication_factor"]): r
            for r in run_quality_vs_quantity(
                seed=2, replication_factors=(1, 3), n_providers=10,
                horizon=2000.0, n_probes=12, blob_kib=2,
            )}
    assert rows[("datacenter", 1)]["retrieval_availability"] == 1.0
    assert rows[("device", 1)]["retrieval_availability"] < 1.0
    assert rows[("device", 3)]["repair_bytes"] > 0


def _check_selfish_mining() -> None:
    from repro.chain import selfish_mining_revenue

    assert selfish_mining_revenue(0.30, 0.0, 120_000, 1) < 0.30
    assert selfish_mining_revenue(0.40, 0.0, 120_000, 1) > 0.40


def _check_refeudalization() -> None:
    from repro.core.economics import MarketParams, ProviderMarket
    from repro.sim import RngStreams

    flat = ProviderMarket(
        12, MarketParams(scale_advantage=0.0), RngStreams(1)
    )
    flat.run(150)
    scaled = ProviderMarket(
        12, MarketParams(scale_advantage=0.25), RngStreams(1)
    )
    scaled.run(150)
    assert scaled.concentration() > flat.concentration()


_CHECKS: List = [
    ("Table 1 regenerates (E1)", _check_table1),
    ("Table 2 regenerates (E2)", _check_table2),
    ("Table 3 exact cells (E3)", _check_table3_exact),
    ("Federation SPOF shape (E4)", _check_e4_shape),
    ("Privacy/availability trade (E5)", _check_e5_shape),
    ("51% crossover at 0.5 (E6)", _check_e6_crossover),
    ("Proof economics (E7)", _check_e7_shape),
    ("Swarm popularity threshold (E8)", _check_e8_shape),
    ("Quality vs quantity (E9)", _check_e9_shape),
    ("Selfish-mining threshold (E13)", _check_selfish_mining),
    ("Re-feudalization dynamic (§5.3)", _check_refeudalization),
]


def verify_reproduction() -> List[Dict[str, str]]:
    """Run every reproduction check; returns PASS/FAIL rows."""
    rows = []
    for label, check in _CHECKS:
        try:
            check()
            rows.append({"target": label, "status": "PASS", "detail": ""})
        except AssertionError as exc:
            rows.append({"target": label, "status": "FAIL",
                         "detail": str(exc)[:60]})
        except (ReproError, ImportError, ArithmeticError, LookupError,
                TypeError, ValueError) as exc:
            # The concrete failure families a broken check produces:
            # library errors (ReproError), a renamed import, and the
            # data-shape errors of mis-built result rows.  Anything else
            # is a harness bug and should crash loudly.
            rows.append({"target": label, "status": "ERROR",
                         "detail": f"{type(exc).__name__}: {exc}"[:60]})
    return rows
