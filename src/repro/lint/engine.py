"""Rule registry, per-file lint context, and the linting driver.

Rules come in two kinds.  A *per-file* rule subclasses :class:`Rule`
and checks one :class:`LintContext` at a time.  A *project* rule
subclasses :class:`ProjectRule` and checks the whole-program
:class:`~repro.lint.index.ProjectIndex` after every file has been
parsed — that is where cross-module properties (stream-name collisions,
transitive wall-clock reach, import cycles) live.  Both kinds share the
registry, ``--rules`` selection, ``# repro: noqa[...]`` suppression,
and the :class:`~repro.lint.findings.Finding` schema.

The driver (:func:`lint_paths`) parses files in parallel when asked and
keeps an on-disk incremental cache (:mod:`repro.lint.cache`) of per-file
findings and index fragments keyed by content hash and
:data:`RULE_PACK_VERSION`; project rules always recompute over the
(possibly cached) fragments, so warm and cold runs produce byte-identical
findings.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import ReproError
from repro.lint.cache import LintCache
from repro.lint.findings import Finding
from repro.lint.index import ModuleFragment, ProjectIndex, build_fragment

__all__ = [
    "RULE_PACK_VERSION",
    "LintContext",
    "LintError",
    "LintStats",
    "ProjectRule",
    "Rule",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "resolve_rules",
]

#: Version of the rule pack and fragment layout.  Bump whenever a rule's
#: behaviour or the :class:`~repro.lint.index.ModuleFragment` schema
#: changes, so stale cache entries miss instead of replaying old results.
RULE_PACK_VERSION = 3


class LintError(ReproError):
    """The linter was invoked incorrectly (unknown rule, bad path)."""


#: ``# repro: noqa`` or ``# repro: noqa[DET001]`` or ``...[DET001, PAR001]``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


def _parse_noqa(match: "re.Match[str]") -> Set[str]:
    """The rule ids named by one noqa comment (empty set = bare noqa)."""
    rules = match.group("rules")
    if rules is None:
        return set()
    return {r.strip().upper() for r in rules.split(",") if r.strip()}


def _noqa_map_from_source(source: str) -> Dict[int, Set[str]]:
    """Line -> suppressed rule ids, from *comment tokens only*.

    Tokenizing (rather than regexing raw lines) means a string literal
    that merely contains ``# repro: noqa`` does not suppress findings on
    its line.  Untokenizable source falls back to the line regex.
    """
    comments: Dict[int, Set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is not None:
                comments[tok.start[0]] = _parse_noqa(match)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments.clear()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is not None:
                comments[lineno] = _parse_noqa(match)
    return comments


class LintContext:
    """Everything a per-file rule may inspect about one source file.

    ``module_parts`` is the path split on separators, truncated to start
    at the last ``repro`` component when one is present — so rules can
    reason about *package* location (``("repro", "sim", "rng.py")``)
    regardless of where the checkout lives.
    """

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        parts: Tuple[str, ...] = Path(path).parts
        if "repro" in parts:
            last = len(parts) - 1 - tuple(reversed(parts)).index("repro")
            parts = parts[last:]
        self.module_parts = parts
        self._noqa: Optional[Dict[int, Set[str]]] = None

    def in_package(self, *names: str) -> bool:
        """Whether any directory component of the module path is in ``names``."""
        return any(part in names for part in self.module_parts[:-1])

    def is_module(self, *tail: str) -> bool:
        """Whether the module path ends with the given components."""
        n = len(tail)
        return n > 0 and self.module_parts[-n:] == tuple(tail)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )

    def noqa_map(self) -> Dict[int, Set[str]]:
        """Line -> suppressed rule ids for every noqa *comment* in the
        file (empty set = bare noqa, suppress everything)."""
        if self._noqa is None:
            self._noqa = _noqa_map_from_source(self.source)
        return self._noqa

    def suppressed_rules(self, line: int) -> Optional[Set[str]]:
        """Rules suppressed on ``line`` (1-based).

        Returns ``None`` when the line carries no noqa comment, the
        empty set for a bare ``# repro: noqa`` (suppress everything),
        and the named rule ids otherwise.  Only genuine comments count:
        a noqa marker inside a string literal suppresses nothing.
        """
        return self.noqa_map().get(line)


class Rule:
    """Base class for per-file lint rules.

    Subclasses set ``rule_id``/``title``/``rationale`` and implement
    :meth:`check`, yielding :class:`Finding` objects.  ``title`` and
    ``rationale`` feed ``--list-rules`` and the docs.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule:
    """Base class for whole-program lint rules.

    Subclasses implement :meth:`check_project` over the
    :class:`~repro.lint.index.ProjectIndex` built from every linted
    file.  Findings still anchor to a (path, line) and are filtered
    through that file's noqa comments like any per-file finding.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError


#: Either rule kind, as stored in the registry.
LintRule = Union[Rule, ProjectRule]

_REGISTRY: Dict[str, LintRule] = {}


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not isinstance(rule, (Rule, ProjectRule)):
        raise LintError(f"{rule_cls.__name__} is not a Rule or ProjectRule")
    if not rule.rule_id:
        raise LintError(f"rule {rule_cls.__name__} has no rule_id")
    if rule.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return rule_cls


def all_rules() -> List[LintRule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def resolve_rules(selection: Optional[Sequence[str]] = None) -> List[LintRule]:
    """Map a ``--rules`` selection to rule objects (all rules if None)."""
    if selection is None:
        return all_rules()
    rules: List[LintRule] = []
    for raw in selection:
        rule_id = raw.strip().upper()
        rule = _REGISTRY.get(rule_id)
        if rule is None:
            known = ", ".join(sorted(_REGISTRY))
            raise LintError(f"unknown rule {raw!r}; known rules: {known}")
        rules.append(rule)
    return rules


def _split_rules(
    rules: Optional[Sequence[LintRule]],
) -> Tuple[List[Rule], List[ProjectRule]]:
    chosen = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in chosen if isinstance(r, Rule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    return file_rules, project_rules


@dataclass
class LintStats:
    """Counters describing what one :func:`lint_paths` run actually did.

    ``parsed`` counts the files read *and parsed* this run; on a warm
    cache the entire tree replays from disk and ``parsed`` is zero —
    that counter (not wall clock) is what pins "incremental lint is
    measurably cheaper" in the tests.
    """

    files: int = 0
    parsed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1


def _suppressed_by(
    suppressed: Optional[Set[str]], rule_id: str
) -> bool:
    return suppressed is not None and (
        not suppressed or rule_id in suppressed
    )


def _finding_from_dict(doc: Dict[str, Any]) -> Finding:
    return Finding(
        rule_id=doc["rule"], path=doc["path"], line=doc["line"],
        col=doc["col"], message=doc["message"],
    )


def _lint_file_result(
    path: str, source: str, file_rules: Sequence[Rule]
) -> Dict[str, Any]:
    """Parse one file and run the per-file rules; returns the plain-data
    result the cache stores: post-suppression findings, the serialized
    index fragment, and the noqa map (for project-finding suppression)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding("SYNTAX", path, exc.lineno or 1, exc.offset or 0,
                          f"cannot parse: {exc.msg}")
        return {"path": path, "findings": [finding.to_dict()],
                "fragment": None, "noqa": {}}
    ctx = LintContext(path, source, tree)
    findings: List[Dict[str, Any]] = []
    for rule in file_rules:
        for finding in rule.check(ctx):
            if _suppressed_by(ctx.suppressed_rules(finding.line),
                              finding.rule_id):
                continue
            findings.append(finding.to_dict())
    fragment = build_fragment(path, source, tree)
    noqa = {str(line): sorted(ids) for line, ids in ctx.noqa_map().items()}
    return {"path": path, "findings": findings,
            "fragment": fragment.to_dict(), "noqa": noqa}


def _lint_worker(payload: Tuple[str, str, Tuple[str, ...]]) -> Dict[str, Any]:
    """Process-pool entry point: resolve rule ids in the worker (the
    registry is repopulated by importing :mod:`repro.lint`) and lint one
    file."""
    import repro.lint  # noqa: F401 - populates the rule registry

    path, source, rule_ids = payload
    file_rules = [r for r in resolve_rules(rule_ids) if isinstance(r, Rule)]
    return _lint_file_result(path, source, file_rules)


def _run_project_rules(
    project_rules: Sequence[ProjectRule],
    fragments: Sequence[ModuleFragment],
    noqa_by_path: Dict[str, Dict[int, Set[str]]],
) -> List[Finding]:
    if not project_rules or not fragments:
        return []
    index = ProjectIndex(fragments)
    findings: List[Finding] = []
    for rule in project_rules:
        for finding in rule.check_project(index):
            suppressed = noqa_by_path.get(finding.path, {}).get(finding.line)
            if _suppressed_by(suppressed, finding.rule_id):
                continue
            findings.append(finding)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[Finding]:
    """Lint one in-memory source text; the unit every other entry wraps.

    Project rules run over a single-file index, so cross-module rules
    degrade gracefully (collisions *within* the file still surface).
    """
    file_rules, project_rules = _split_rules(rules)
    result = _lint_file_result(path, source, file_rules)
    findings = [_finding_from_dict(doc) for doc in result["findings"]]
    if result["fragment"] is not None and project_rules:
        fragment = ModuleFragment.from_dict(result["fragment"])
        noqa = _noqa_from_result(result)
        findings.extend(
            _run_project_rules(project_rules, [fragment], {path: noqa})
        )
    return sorted(findings, key=Finding.sort_key)


def _noqa_from_result(result: Dict[str, Any]) -> Dict[int, Set[str]]:
    return {int(line): set(ids) for line, ids in result["noqa"].items()}


def lint_file(
    path: str, rules: Optional[Sequence[LintRule]] = None
) -> List[Finding]:
    """Lint one file on disk."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    return lint_source(source, path=str(path), rules=rules)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files and directories to ``.py`` paths, sorted per
    argument, with duplicates (overlapping arguments, e.g. ``lint src
    src/repro``) reported once under their first spelling."""
    seen: Set[str] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = [str(p) for p in sorted(path.rglob("*.py"))]
        elif path.is_file():
            candidates = [str(path)]
        else:
            raise LintError(f"no such file or directory: {raw}")
        for candidate in candidates:
            identity = os.path.realpath(candidate)
            if identity in seen:
                continue
            seen.add(identity)
            yield candidate


def _effective_jobs(jobs: int, pending: int) -> int:
    if jobs < 0:
        raise LintError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        jobs = min(8, os.cpu_count() or 1)
    return max(1, min(jobs, pending))


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[LintRule]] = None,
    *,
    cache: Optional[LintCache] = None,
    jobs: int = 1,
    stats: Optional[LintStats] = None,
) -> List[Finding]:
    """Lint files and directories (recursively); findings sorted.

    ``cache`` enables the incremental on-disk cache; ``jobs`` > 1 (or 0
    for auto) parses cache misses in a process pool; ``stats`` (when
    provided) is filled in with file/parse/cache counters.
    """
    file_rules, project_rules = _split_rules(rules)
    file_rule_ids = tuple(sorted(rule.rule_id for rule in file_rules))
    if stats is None:
        stats = LintStats()

    files = list(_iter_python_files(paths))
    stats.files = len(files)
    results: List[Optional[Dict[str, Any]]] = [None] * len(files)
    pending: List[Tuple[int, str, str, Optional[str]]] = []
    for position, file_path in enumerate(files):
        try:
            source = Path(file_path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from exc
        key: Optional[str] = None
        if cache is not None:
            key = LintCache.key(file_path, source, file_rule_ids,
                                RULE_PACK_VERSION)
            entry = cache.load(key)
            if entry is not None:
                results[position] = entry
                stats.cache_hits += 1
                continue
            stats.cache_misses += 1
        pending.append((position, file_path, source, key))

    if pending:
        stats.jobs = _effective_jobs(jobs, len(pending))
        if stats.jobs > 1:
            payloads = [(file_path, source, file_rule_ids)
                        for _, file_path, source, _ in pending]
            with ProcessPoolExecutor(max_workers=stats.jobs) as pool:
                computed = list(pool.map(_lint_worker, payloads))
        else:
            computed = [_lint_file_result(file_path, source, file_rules)
                        for _, file_path, source, _ in pending]
        stats.parsed = len(pending)
        for (position, _, _, key), result in zip(pending, computed):
            results[position] = result
            if cache is not None and key is not None:
                cache.store(key, result)

    findings: List[Finding] = []
    fragments: List[ModuleFragment] = []
    noqa_by_path: Dict[str, Dict[int, Set[str]]] = {}
    for maybe_result in results:
        assert maybe_result is not None
        findings.extend(
            _finding_from_dict(doc) for doc in maybe_result["findings"]
        )
        if maybe_result["fragment"] is not None:
            fragments.append(ModuleFragment.from_dict(maybe_result["fragment"]))
        noqa_by_path[maybe_result["path"]] = _noqa_from_result(maybe_result)

    findings.extend(_run_project_rules(project_rules, fragments, noqa_by_path))
    return sorted(findings, key=Finding.sort_key)
