"""FaultInjector: compiling plans onto the simulator and transport."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    Corrupt,
    Crash,
    DropBurst,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    Partition,
)
from repro.net import ChurnProfile, ConstantLatency, Network, attach_churn
from repro.sim import RngStreams, Simulator


def build(loss_rate=0.0, seed=1):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.05),
                      loss_rate=loss_rate)
    for node_id in ("a", "b", "c"):
        network.create_node(node_id)
    return sim, streams, network


class TestArmValidation:
    def test_unknown_node_rejected(self):
        sim, streams, network = build()
        plan = FaultPlan([Crash("ghost", at=1.0)])
        with pytest.raises(FaultError):
            FaultInjector(sim, network, plan, streams).arm()

    def test_double_arm_rejected(self):
        sim, streams, network = build()
        injector = FaultInjector(sim, network, FaultPlan([]), streams)
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()


class TestPartitionEvents:
    def test_partition_applied_and_healed(self):
        sim, streams, network = build()
        plan = FaultPlan([Partition((("a",), ("b",)), at=10.0, heal_at=20.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=15.0)
        assert network.partitioned
        assert injector.partition_active
        assert not network.can_reach("a", "b")
        sim.run(until=25.0)
        assert not network.partitioned
        assert injector.last_heal_at == 20.0
        assert injector.injected == 1 and injector.healed == 1

    def test_overlapping_windows_heal_only_the_active_partition(self):
        # A(0-100) overlaps B(50-150).  B replaces A at t=50
        # (last-writer-wins), so A's heal at t=100 is a no-op: it must
        # not destroy B, stamp last_heal_at, or count as healed.
        sim, streams, network = build()
        plan = FaultPlan([
            Partition((("a",), ("b", "c")), at=0.0, heal_at=100.0),
            Partition((("a", "b"), ("c",)), at=50.0, heal_at=150.0),
        ])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=120.0)  # past A's heal, before B's
        assert network.partitioned
        assert injector.partition_active
        assert not network.can_reach("b", "c")
        assert injector.last_heal_at is None
        assert injector.healed == 0
        sim.run(until=160.0)
        assert not network.partitioned
        assert injector.last_heal_at == 150.0
        assert injector.injected == 2
        assert injector.healed == 1

    def test_identical_overlapping_partitions_heal_once(self):
        # Two Partition events with identical fields are distinct plan
        # entries; the earlier heal releases the active (replacing)
        # event's partition only once the replacement is the active one.
        sim, streams, network = build()
        first = Partition((("a",), ("b", "c")), at=10.0, heal_at=40.0)
        second = Partition((("a",), ("b", "c")), at=20.0, heal_at=60.0)
        plan = FaultPlan([first, second])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=50.0)  # past first heal
        assert network.partitioned  # second event still active
        sim.run(until=70.0)
        assert not network.partitioned
        assert injector.healed == 1
        assert injector.last_heal_at == 60.0

    def test_unhealed_partition_persists(self):
        sim, streams, network = build()
        plan = FaultPlan([Partition((("a",), ("b",)), at=5.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=100.0)
        assert network.partitioned
        assert injector.healed == 0


class TestCrashEvents:
    def test_crash_and_restart_plain_node(self):
        sim, streams, network = build()
        plan = FaultPlan([Crash("a", at=10.0, restart_at=30.0)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=20.0)
        assert not network.node("a").online
        assert injector.crashed_nodes == ("a",)
        sim.run(until=40.0)
        assert network.node("a").online
        assert injector.crashed_nodes == ()

    def test_crash_suspends_churn(self):
        sim, streams, network = build()
        profile = ChurnProfile(mean_uptime=5.0, mean_downtime=5.0)
        processes = attach_churn(
            sim, streams, [network.node("a")], profile
        )
        churn = {"a": processes[0]}
        plan = FaultPlan([Crash("a", at=10.0, restart_at=200.0)])
        injector = FaultInjector(sim, network, plan, streams, churn=churn)
        injector.arm()
        # Between crash and restart churn may not flip the node back on.
        sim.run(until=150.0)
        assert not network.node("a").online
        assert processes[0].crashed
        sim.run(until=260.0)
        assert processes[0].crashed is False


class TestWindowComposition:
    def test_surface_installed_and_cleared(self):
        sim, streams, network = build()
        plan = FaultPlan([DropBurst(window=(10.0, 20.0), prob=0.5)])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=5.0)
        assert network.fault_surface is None
        sim.run(until=15.0)
        surface = network.fault_surface
        assert surface is not None and surface.drop_prob == 0.5
        sim.run(until=25.0)
        assert network.fault_surface is None
        assert injector.last_heal_at == 20.0

    def test_overlapping_drops_compose_as_hazards(self):
        sim, streams, network = build()
        plan = FaultPlan([
            DropBurst(window=(0.5, 30.0), prob=0.5),
            DropBurst(window=(10.0, 20.0), prob=0.5),
        ])
        injector = FaultInjector(sim, network, plan, streams)
        injector.arm()
        sim.run(until=15.0)
        assert network.fault_surface.drop_prob == pytest.approx(0.75)
        sim.run(until=25.0)
        assert network.fault_surface.drop_prob == pytest.approx(0.5)

    def test_latency_factors_multiply(self):
        sim, streams, network = build()
        plan = FaultPlan([
            LatencySpike(window=(0.5, 30.0), factor=2.0),
            LatencySpike(window=(10.0, 20.0), factor=3.0),
        ])
        FaultInjector(sim, network, plan, streams).arm()
        sim.run(until=15.0)
        assert network.fault_surface.latency_factor == pytest.approx(6.0)
        a, b = network.node("a"), network.node("b")
        base = network.latency.delay(a, b, 100)
        assert network._delay(a, b, 100) == pytest.approx(base * 6.0)

    def test_corrupt_window_sets_probability(self):
        sim, streams, network = build()
        plan = FaultPlan([Corrupt(window=(1.0, 2.0), prob=0.25)])
        FaultInjector(sim, network, plan, streams).arm()
        sim.run(until=1.5)
        assert network.fault_surface.corrupt_prob == 0.25

    def test_mixed_windows_one_surface(self):
        sim, streams, network = build()
        plan = FaultPlan([
            DropBurst(window=(1.0, 10.0), prob=0.2),
            Corrupt(window=(1.0, 10.0), prob=0.1),
            LatencySpike(window=(1.0, 10.0), factor=4.0),
        ])
        FaultInjector(sim, network, plan, streams).arm()
        sim.run(until=5.0)
        surface = network.fault_surface
        assert surface.drop_prob == pytest.approx(0.2)
        assert surface.corrupt_prob == pytest.approx(0.1)
        assert surface.latency_factor == pytest.approx(4.0)


class TestRngIsolation:
    def test_fault_window_does_not_perturb_base_loss_stream(self):
        """A chaos window must not shift the net.loss draw sequence."""

        def loss_draws_after(plan):
            sim, streams, network = build(loss_rate=0.3, seed=9)
            FaultInjector(sim, network, plan, streams).arm()
            received = []
            network.node("b").register_handler(
                "m", lambda node, payload, sender: received.append(payload)
            )
            for i in range(40):
                sim.schedule(float(i), network.send, "a", "b", "m", i)
            sim.run(until=100.0)
            return [p for p in received]

        quiet = loss_draws_after(FaultPlan([]))
        # The drop window spans some sends; the *base* loss decisions for
        # messages outside the window must be identical.
        noisy = loss_draws_after(
            FaultPlan([DropBurst(window=(10.0, 20.0), prob=0.9)])
        )
        quiet_outside = [p for p in quiet if not 10.0 <= p < 20.0]
        noisy_outside = [p for p in noisy if not 10.0 <= p < 20.0]
        assert noisy_outside == quiet_outside


class TestRpcResponseLeg:
    """The mid-flight audit: a fault arming between request send and
    response delivery must kill the *response* leg with its own reason,
    leave flow accounting balanced, and time the caller out."""

    def _rpc_through_fault(self, event, server="b"):
        from repro.errors import RpcTimeoutError
        from repro.obs import Tracer, observe

        tracer = Tracer()
        with observe(tracer=tracer):
            sim = Simulator()
            streams = RngStreams(2)
            network = Network(sim, streams, latency=ConstantLatency(0.05))
            for node_id in ("a", server):
                network.create_node(node_id)

            def slow_echo(node, payload, sender):
                yield 1.0  # request arrives 10.05; respond at 11.05
                return payload

            network.node(server).register_handler("echo", slow_echo)
            injector = FaultInjector(
                sim, network, FaultPlan([event]), streams
            )
            injector.arm()
            outcome = {}

            def caller():
                try:
                    outcome["value"] = yield from network.rpc(
                        "a", server, "echo", "hi", timeout=5.0
                    )
                except RpcTimeoutError:
                    outcome["timed_out"] = True

            sim.schedule_at(10.0, lambda: sim.spawn(caller()))
            sim.run(until=40.0)
        return network, tracer, outcome

    def _response_drops(self, tracer):
        return [e for e in tracer.events
                if e["kind"] == "msg_drop" and e["leg"] == "rpc_response"]

    def test_partition_arming_mid_rpc_kills_the_response_leg(self):
        # Request crosses at t=10.05; the partition opens at t=10.5
        # while the handler is still working; the response launched at
        # t=11.05 must die in flight with reason "partition".
        network, tracer, outcome = self._rpc_through_fault(
            Partition((("a",), ("b",)), at=10.5, heal_at=30.0)
        )
        drops = self._response_drops(tracer)
        assert [d["reason"] for d in drops] == ["partition"]
        assert drops[0]["src"] == "b" and drops[0]["dst"] == "a"
        assert outcome == {"timed_out": True}
        flow = network.flow_snapshot()
        assert flow["in_flight"] == 0
        assert flow["delivered"] + flow["dropped"] == flow["sent"]

    def test_censor_arming_mid_rpc_kills_the_response_leg(self):
        from repro.faults import Censor

        network, tracer, outcome = self._rpc_through_fault(
            Censor(inside=("a",), at=10.5, heal_at=30.0,
                   blocked=("svc",), direction="both"),
            server="svc",
        )
        drops = self._response_drops(tracer)
        assert [d["reason"] for d in drops] == ["censor"]
        assert outcome == {"timed_out": True}
        flow = network.flow_snapshot()
        assert flow["in_flight"] == 0
        assert flow["delivered"] + flow["dropped"] == flow["sent"]

    def test_heal_before_delivery_lets_the_response_through(self):
        # Same shape, but the window closes at t=11.0 — before the
        # response leg launches — so the RPC completes normally.
        network, tracer, outcome = self._rpc_through_fault(
            Partition((("a",), ("b",)), at=10.5, heal_at=11.0)
        )
        assert self._response_drops(tracer) == []
        assert outcome == {"value": "hi"}
        assert network.flow_snapshot()["in_flight"] == 0
