"""Simulated public-key identities and signatures.

Real asymmetric cryptography would dominate simulation run time without
changing any experiment outcome (the experiments measure protocol rounds
and consensus behaviour, not cipher speed).  Instead, a
:class:`KeyPair` is a deterministic pseudo-keypair:

* the *public key* is ``sha256(seed)`` — an opaque 64-hex-char string, the
  usability problem the paper's §3.1 describes;
* a *signature* over a message is ``sha256(secret || message-hash)``, which
  verifies only with the matching secret-derived check value.

Forgery is impossible for simulation actors because secrets never leave
the KeyPair object; an *attacker model* that "steals" a key does so by
being handed the KeyPair explicitly, making key-compromise experiments
first-class rather than accidental.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import CryptoError, InvalidSignatureError
from repro.crypto.hashing import hash_obj, sha256_hex

__all__ = ["KeyPair", "Signature", "verify", "require_valid", "generate_keypair"]


@dataclass(frozen=True)
class Signature:
    """A detached signature: (public key, message hash, check value)."""

    public_key: str
    message_hash: str
    check: str

    def as_dict(self) -> dict:
        return {
            "public_key": self.public_key,
            "message_hash": self.message_hash,
            "check": self.check,
        }


class KeyPair:
    """A deterministic simulated keypair.

    Two KeyPairs constructed from the same seed are the same identity —
    convenient for reproducible experiments.
    """

    def __init__(self, seed: str):
        if not seed:
            raise CryptoError("keypair seed must be a non-empty string")
        self._secret = sha256_hex(f"secret:{seed}".encode("utf-8"))
        self.public_key = sha256_hex(f"public:{self._secret}".encode("utf-8"))

    def sign(self, message: Any) -> Signature:
        """Sign any canonicalizable message object."""
        message_hash = hash_obj(message)
        check = sha256_hex(f"{self._secret}:{message_hash}".encode("utf-8"))
        return Signature(self.public_key, message_hash, check)

    def _expected_check(self, message_hash: str) -> str:
        return sha256_hex(f"{self._secret}:{message_hash}".encode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyPair(pub={self.public_key[:12]}...)"


# Registry linking public keys back to their secret-check oracles.  This is
# the simulation stand-in for the mathematics of signature verification: a
# verifier can check a signature knowing only the public key, because the
# library (playing the role of "mathematics") knows the mapping.  Secrets
# still never leave KeyPair objects, so actors cannot forge.
_VERIFIERS: dict = {}


def generate_keypair(seed: str) -> KeyPair:
    """Create (or re-derive) a keypair and register its verifier."""
    pair = KeyPair(seed)
    _VERIFIERS[pair.public_key] = pair
    return pair


def verify(signature: Signature, message: Any) -> bool:
    """Check a signature against a message.

    Returns False (never raises) for wrong-message or forged signatures;
    raises :class:`CryptoError` only for unknown public keys, which in a
    simulation indicates a setup bug.
    """
    if not isinstance(signature, Signature):
        raise CryptoError(f"not a signature: {signature!r}")
    pair = _VERIFIERS.get(signature.public_key)
    if pair is None:
        raise CryptoError(
            f"unknown public key {signature.public_key[:12]}...; "
            "was the keypair created via generate_keypair()?"
        )
    message_hash = hash_obj(message)
    if message_hash != signature.message_hash:
        return False
    return signature.check == pair._expected_check(message_hash)


def require_valid(signature: Signature, message: Any) -> None:
    """Verify or raise :class:`InvalidSignatureError`."""
    if not verify(signature, message):
        raise InvalidSignatureError(
            f"signature by {signature.public_key[:12]}... does not cover message"
        )
