"""Tests for the Eyal-Sirer selfish-mining model."""

import pytest

from repro.chain import selfish_mining_revenue
from repro.errors import ChainError


class TestSelfishMining:
    def test_below_one_third_unprofitable_at_gamma_zero(self):
        # The classic threshold: alpha < 1/3 with gamma=0 loses revenue.
        for alpha in (0.15, 0.25, 0.30):
            revenue = selfish_mining_revenue(alpha, gamma=0.0, blocks=300_000, seed=1)
            assert revenue < alpha

    def test_above_one_third_profitable_at_gamma_zero(self):
        for alpha in (0.36, 0.40, 0.45):
            revenue = selfish_mining_revenue(alpha, gamma=0.0, blocks=300_000, seed=1)
            assert revenue > alpha

    def test_gamma_one_always_profitable(self):
        # With all honest miners building on the attacker's branch during
        # races, the profitability threshold drops to zero.
        for alpha in (0.1, 0.2, 0.3):
            revenue = selfish_mining_revenue(alpha, gamma=1.0, blocks=300_000, seed=2)
            assert revenue > alpha

    def test_gamma_monotone(self):
        low = selfish_mining_revenue(0.3, gamma=0.0, blocks=200_000, seed=3)
        high = selfish_mining_revenue(0.3, gamma=1.0, blocks=200_000, seed=3)
        assert high > low

    def test_revenue_increases_with_alpha(self):
        revenues = [
            selfish_mining_revenue(alpha, gamma=0.5, blocks=150_000, seed=4)
            for alpha in (0.1, 0.2, 0.3, 0.4)
        ]
        assert revenues == sorted(revenues)

    def test_deterministic_given_seed(self):
        a = selfish_mining_revenue(0.35, 0.5, blocks=50_000, seed=7)
        b = selfish_mining_revenue(0.35, 0.5, blocks=50_000, seed=7)
        assert a == b

    def test_parameter_validation(self):
        with pytest.raises(ChainError):
            selfish_mining_revenue(0.0)
        with pytest.raises(ChainError):
            selfish_mining_revenue(1.0)
        with pytest.raises(ChainError):
            selfish_mining_revenue(0.3, gamma=1.5)


class TestSeedDerivationGoldens:
    """Pin the exact revenue values under seeded_rng seed derivation.

    selfish_mining_revenue now draws from the named stream
    "attacks.selfish_mining" (derive_seed) instead of seeding
    random.Random with the raw seed; these goldens freeze that mapping
    so future refactors cannot silently shift experiment outputs again.
    """

    def test_pinned_revenue_values(self):
        assert selfish_mining_revenue(
            0.33, 0.5, blocks=20_000, seed=5
        ) == pytest.approx(0.38122016608906034, abs=0, rel=0)
        assert selfish_mining_revenue(
            0.40, 0.0, blocks=20_000, seed=1
        ) == pytest.approx(0.49810943853891704, abs=0, rel=0)

    def test_distinct_seeds_distinct_streams(self):
        a = selfish_mining_revenue(0.35, 0.5, blocks=20_000, seed=1)
        b = selfish_mining_revenue(0.35, 0.5, blocks=20_000, seed=2)
        assert a != b
