"""E6 — blockchain naming vs centralized PKI (§3.1).

The paper: "blockchains essentially trade scalability and performance for
global consensus and security", and the 51% attack is the residual threat.
Three artifacts:

* registration latency (PKI one RTT; blockchain confirmations x interval);
* the analytic rewrite-probability curve with its 0.5 crossover;
* one empirical majority-attack run that actually steals a name.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import (
    naming_attack_curve,
    render_table,
    run_name_theft,
    run_naming_comparison,
)


def test_bench_naming_latency(benchmark):
    rows = benchmark.pedantic(
        run_naming_comparison, kwargs={"seed": 2}, rounds=1, iterations=1
    )
    emit("E6a — registration latency by backend", render_table(rows))
    pki = next(r for r in rows if r["backend"] == "centralized_pki")
    chain6 = next(
        r for r in rows
        if r["backend"] == "blockchain" and r["confirmations"] == 6
    )
    chain1 = next(
        r for r in rows
        if r["backend"] == "blockchain" and r["confirmations"] == 1
    )
    # The PKI answers in well under a second; the chain needs tens of
    # seconds even at a 10s block interval — orders of magnitude apart.
    assert pki["registration_latency_s"] < 1.0
    assert chain6["registration_latency_s"] > 30 * pki["registration_latency_s"]
    # Latency grows with confirmation depth.
    assert chain6["registration_latency_s"] > chain1["registration_latency_s"]


def test_bench_naming_attack_curve(benchmark):
    rows = benchmark(naming_attack_curve)
    emit("E6b — history-rewrite probability vs attacker hashrate share",
         render_table(rows))
    by_share = {row["attacker_share"]: row["rewrite_probability"] for row in rows}
    # Monotone increasing in attacker share.
    shares = sorted(by_share)
    assert all(
        by_share[a] <= by_share[b] for a, b in zip(shares, shares[1:])
    )
    # Minority attackers rarely win; the crossover is at 1/2.
    assert by_share[0.1] < 0.001
    assert by_share[0.5] == 1.0
    assert by_share[0.7] == 1.0
    assert by_share[0.45] < 1.0


def test_bench_name_theft_empirical(benchmark):
    result = benchmark.pedantic(
        run_name_theft, kwargs={"seed": 9, "attacker_share": 0.75},
        rounds=1, iterations=1,
    )
    emit("E6c — empirical majority attack (75% hashrate)",
         render_table([result]))
    assert result["succeeded"]
    assert result["victim_tx_erased"]
    assert result["name_owner_is_attacker"]
