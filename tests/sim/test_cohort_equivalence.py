"""Cohort vs per-process equivalence, property-based.

The two engines draw from different streams, so they can only agree in
aggregate distribution.  The tolerance contract (``docs/SCALING.md``):
averaged over ``SEEDS`` independent seeds, tick-sampled and time-mean
availability must agree within

    tol = max(0.06, 4.5 * sqrt(p*(1-p) / n_eff))

where ``n_eff = N * seeds * max(1, horizon/(up+down))`` counts roughly
independent device-renewal-cycles (the horizon boost only applies
without attrition — departures correlate a device's whole trajectory).
Flip/departure counts are Poisson-like, compared within ~6 sigma.

Separately, the cohort path itself must be *exactly* deterministic:
the same (config, seed) twice yields a byte-identical report dict.
"""

import json
import math
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cohort import _churn_point

SEEDS = (101, 202, 303)
TICK = 50.0

SETTINGS = settings(
    max_examples=10 if os.environ.get("CI") else 30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

configs = st.fixed_dictionaries({
    "devices": st.integers(min_value=20, max_value=200),
    "mean_uptime": st.floats(min_value=60.0, max_value=1200.0),
    "mean_downtime": st.floats(min_value=60.0, max_value=1200.0),
    "attrition": st.sampled_from((0.0, 0.0, 0.05, 0.2)),
    "horizon_ticks": st.integers(min_value=10, max_value=50),
})


def run_both(config):
    """Per-engine reports for the same population, SEEDS runs each."""
    kwargs = {
        "devices": config["devices"],
        "mean_uptime": config["mean_uptime"],
        "mean_downtime": config["mean_downtime"],
        "attrition": config["attrition"],
        "horizon": config["horizon_ticks"] * TICK,
        "tick": TICK,
    }
    cohort = [_churn_point(engine="cohort", seed=s, **kwargs) for s in SEEDS]
    process = [_churn_point(engine="process", seed=s, **kwargs) for s in SEEDS]
    return cohort, process


def availability_tolerance(config, p_hat):
    up, down = config["mean_uptime"], config["mean_downtime"]
    horizon = config["horizon_ticks"] * TICK
    boost = max(1.0, horizon / (up + down)) if config["attrition"] == 0 else 1.0
    n_eff = config["devices"] * len(SEEDS) * boost
    p = min(max(p_hat, 0.05), 0.95)
    return max(0.06, 4.5 * math.sqrt(p * (1 - p) / n_eff))


def count_tolerance(mean_count):
    # Two independent Poisson-ish totals with mean ~lambda differ by
    # ~sqrt(2*lambda); 6 sigma plus small absolute/relative slack.
    return 10.0 + 6.0 * math.sqrt(2.0 * max(mean_count, 1.0)) + (
        0.05 * mean_count
    )


class TestEngineEquivalence:
    @SETTINGS
    @given(config=configs)
    def test_availability_aggregates_agree(self, config):
        cohort, process = run_both(config)
        for key in ("availability_tick_mean", "availability_time_mean"):
            mean_c = sum(r[key] for r in cohort) / len(SEEDS)
            mean_p = sum(r[key] for r in process) / len(SEEDS)
            tol = availability_tolerance(config, (mean_c + mean_p) / 2)
            assert abs(mean_c - mean_p) <= tol, (
                f"{key}: cohort {mean_c:.4f} vs process {mean_p:.4f}"
                f" exceeds tol {tol:.4f} for {config}"
            )

    @SETTINGS
    @given(config=configs)
    def test_flow_aggregates_agree(self, config):
        cohort, process = run_both(config)
        for key in ("flips", "sessions", "departed"):
            total_c = sum(r[key] for r in cohort)
            total_p = sum(r[key] for r in process)
            tol = count_tolerance((total_c + total_p) / 2)
            assert abs(total_c - total_p) <= tol, (
                f"{key}: cohort {total_c} vs process {total_p} exceeds"
                f" tol {tol:.1f} for {config}"
            )

    @SETTINGS
    @given(config=configs)
    def test_structural_invariants_on_both_engines(self, config):
        cohort, process = run_both(config)
        for report in cohort + process:
            # Alternating renewal from all-online: exact identity.
            offline_now = report["devices"] - report["final_online"]
            assert report["flips"] == 2 * report["sessions"] + offline_now
            assert 0 <= report["departed"] <= report["devices"]
            assert 0 <= report["availability_tick_mean"] <= 1
            assert 0 <= report["availability_time_mean"] <= 1
            assert report["ticks"] == config["horizon_ticks"]
            if config["attrition"] == 0:
                assert report["departed"] == 0


class TestCohortDeterminism:
    @SETTINGS
    @given(config=configs, seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_double_run_is_byte_identical(self, config, seed):
        kwargs = {
            "engine": "cohort",
            "seed": seed,
            "devices": config["devices"],
            "mean_uptime": config["mean_uptime"],
            "mean_downtime": config["mean_downtime"],
            "attrition": config["attrition"],
            "horizon": config["horizon_ticks"] * TICK,
            "tick": TICK,
        }
        first = json.dumps(_churn_point(**kwargs), sort_keys=True)
        second = json.dumps(_churn_point(**kwargs), sort_keys=True)
        assert first == second

    def test_distinct_seeds_give_distinct_draws(self):
        base = {
            "engine": "cohort", "devices": 100, "mean_uptime": 600.0,
            "mean_downtime": 300.0, "attrition": 0.0, "horizon": 2000.0,
            "tick": TICK,
        }
        a = _churn_point(seed=1, **base)
        b = _churn_point(seed=2, **base)
        assert a != b
