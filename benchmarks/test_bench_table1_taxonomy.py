"""E1 — regenerate Table 1 (decentralization problems x recent projects).

The rows are derived from the machine-readable project registry, and the
bench cross-checks every registry entry against the simulated system
family that models it.
"""

import importlib

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core import PROJECTS, Problem, table1_rows


def _registry_is_consistent() -> list:
    rows = table1_rows()
    # Every simulated_by target must resolve to a real attribute.
    for project in PROJECTS:
        module_name, attr = project.simulated_by.rsplit(".", 1)
        module = importlib.import_module(module_name)
        assert hasattr(module, attr), (
            f"{project.name}: {project.simulated_by} does not exist"
        )
    return rows


def test_bench_table1(benchmark):
    rows = benchmark(_registry_is_consistent)
    emit("Table 1 — Decentralization problems and recent projects",
         render_table(rows))
    by_problem = {row["problem"]: row["projects"] for row in rows}
    # Paper row 1: exactly the three blockchain naming systems.
    assert by_problem["Naming"] == "Namecoin, Emercoin, Blockstack"
    # Paper row 4: exactly the three browser-based platforms.
    assert by_problem["Web applications"] == "Beaker, ZeroNet, Freedom.js"
    # Rows 2 and 3 list the surveyed communication/storage projects.
    assert len(by_problem[Problem.GROUP_COMMUNICATION].split(", ")) >= 8
    assert len(by_problem[Problem.DATA_STORAGE].split(", ")) >= 7
