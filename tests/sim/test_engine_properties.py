"""Property-based tests: the event queue drains for random process graphs.

The invariant pinned here is the one the AnyOf/Signal leak fixes restore:
after ``run()`` returns (no ``until``), ``pending_events`` is exactly 0 —
no lost timeout, pruned-too-late signal waiter, or stale interrupt event
is left behind, whatever mix of waits the processes performed.
"""

from hypothesis import given, settings, strategies as st

from repro.obs import Metrics
from repro.sim import AllOf, AnyOf, Interrupt, Signal, Simulator, Timeout

# One step of a random process: (op, small-int parameter).
_STEP = st.tuples(
    st.sampled_from(
        ["sleep", "race_timeout", "race_signal", "join_all", "spawn_child"]
    ),
    st.integers(min_value=0, max_value=3),
)
_PROGRAM = st.lists(_STEP, min_size=0, max_size=5)


def _run_program(sim, program, signals, depth=0):
    """Interpret one random program as a simulation process."""
    for op, arg in program:
        if op == "sleep":
            yield float(arg)
        elif op == "race_timeout":
            # A race every branch of which is a timeout: the losers must
            # all be cancelled out of the heap.
            yield AnyOf([Timeout(float(arg)), Timeout(10.0 + arg)])
        elif op == "race_signal":
            # Race a (possibly never-fired) shared signal against a
            # short timeout — the classic leaky-waiter shape.
            yield AnyOf([signals[arg], Timeout(float(arg) + 0.5)])
        elif op == "join_all":
            yield AllOf([Timeout(float(arg)), Timeout(float(arg) / 2 + 0.1)])
        elif op == "spawn_child" and depth < 2:
            child = sim.spawn(
                _run_program(sim, program[:arg], signals, depth + 1)
            )
            yield AnyOf([child, Timeout(1.0)])
    return depth


class TestQueueDrainsProperty:
    @given(
        programs=st.lists(_PROGRAM, min_size=1, max_size=4),
        fire_times=st.lists(
            st.floats(min_value=0.0, max_value=8.0,
                      allow_nan=False, allow_infinity=False),
            min_size=0, max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_queue_empty_after_run(self, programs, fire_times):
        metrics = Metrics()
        sim = Simulator(metrics=metrics)
        signals = [Signal(f"s{i}") for i in range(4)]
        for program in programs:
            sim.spawn(_run_program(sim, program, signals))
        # Fire some signals at arbitrary times; the rest never fire.
        for i, t in enumerate(fire_times):
            sim.schedule(t, signals[i % len(signals)].fire, i)
        sim.run()
        assert sim.pending_events == 0
        assert metrics.gauge("sim.pending_at_run_end") == 0.0
        # Internal bookkeeping agrees: no live or tombstoned entries.
        assert sim._queue == []
        assert sim._tombstones == 0

    @given(
        interrupt_at=st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False, allow_infinity=False),
        wait=st.floats(min_value=0.1, max_value=10.0,
                       allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_interrupted_waits_never_leak(self, interrupt_at, wait):
        sim = Simulator()
        sig = Signal("sig")

        def waiter():
            try:
                yield AnyOf([sig, Timeout(wait)])
            except Interrupt:
                pass
            yield 0.5

        process = sim.spawn(waiter())
        sim.schedule(interrupt_at, process.interrupt, None)
        sim.run()
        assert sim.pending_events == 0
        assert sig.waiter_count == 0
