"""Tests for the demand-side feasibility extension."""

import pytest

from repro.core import (
    DecentralizationOverhead,
    SERVICES,
    demand_table,
    paper_model,
    serveable_users,
)
from repro.core.demand import ServiceDemand, service
from repro.errors import FeasibilityError


class TestServiceProfiles:
    def test_known_services(self):
        names = {s.name for s in SERVICES}
        assert {"email", "social_feed", "photo_sharing",
                "video_streaming", "web_hosting"} == names

    def test_lookup(self):
        assert service("email").name == "email"
        with pytest.raises(FeasibilityError):
            service("metaverse")

    def test_negative_demand_rejected(self):
        with pytest.raises(FeasibilityError):
            ServiceDemand("bad", -1, 0, 0)

    def test_overhead_validation(self):
        with pytest.raises(FeasibilityError):
            DecentralizationOverhead(storage_replication=0.5)


class TestServeableUsers:
    def test_binding_resource_is_minimum(self):
        result = serveable_users(service("video_streaming"))
        binding = result["binding_resource"]
        assert result["overall"] == result[binding]
        assert all(result[r] >= result["overall"]
                   for r in ("storage", "bandwidth", "cores"))

    def test_video_is_bandwidth_bound(self):
        result = serveable_users(service("video_streaming"))
        assert result["binding_resource"] == "bandwidth"

    def test_email_is_storage_bound(self):
        result = serveable_users(service("email"))
        assert result["binding_resource"] == "storage"

    def test_higher_overhead_fewer_users(self):
        cheap = serveable_users(
            service("photo_sharing"),
            overhead=DecentralizationOverhead(1.0, 1.0, 1.0),
        )
        costly = serveable_users(
            service("photo_sharing"),
            overhead=DecentralizationOverhead(4.0, 4.0, 4.0),
        )
        assert costly["overall"] < cheap["overall"]

    def test_zero_demand_is_unbounded(self):
        demand = ServiceDemand("free", 0, 0, 0)
        result = serveable_users(demand)
        assert result["overall"] == float("inf")


class TestDemandTable:
    def test_headline_narrative(self):
        # The fleet can host everyone's email/photos/sites, but global
        # video streaming is bandwidth-infeasible on 1 Mbps uplinks.
        rows = {row["service"]: row for row in demand_table()}
        assert rows["email"]["covers_internet"] is True
        assert rows["web_hosting"]["covers_internet"] is True
        assert rows["photo_sharing"]["covers_internet"] is True
        assert rows["video_streaming"]["covers_internet"] is False

    def test_table_uses_supplied_model(self):
        shrunk = paper_model().with_populations_scaled(0.01)
        rows = {row["service"]: row for row in demand_table(model=shrunk)}
        # With 1% of devices, even photo sharing stops covering everyone.
        assert rows["photo_sharing"]["covers_internet"] is False

    def test_row_shape(self):
        for row in demand_table():
            assert set(row) == {
                "service", "serveable_users_billions",
                "binding_resource", "covers_internet",
            }
