"""The error-type hierarchy: everything roots at ReproError."""

from repro import errors
from repro.errors import ReproError


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_types = [
            getattr(errors, name)
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), Exception)
        ]
        for error_type in error_types:
            assert issubclass(error_type, ReproError) or error_type is ReproError

    def test_specific_parentage(self):
        assert issubclass(errors.NodeOfflineError, errors.NetworkError)
        assert issubclass(errors.RpcTimeoutError, errors.NetworkError)
        assert issubclass(errors.InvalidBlockError, errors.ChainError)
        assert issubclass(errors.ProofFailedError, errors.StorageError)
        assert issubclass(errors.NameTakenError, errors.NamingError)
        assert issubclass(errors.AccessDeniedError, errors.GroupCommError)

    def test_remote_error_carries_cause(self):
        inner = errors.StorageError("disk full")
        wrapped = errors.RemoteError(inner)
        assert wrapped.remote_exception is inner
        assert "disk full" in str(wrapped)
