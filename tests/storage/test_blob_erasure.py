"""Tests for blobs, erasure coding, and sealing."""

import pytest

from repro.errors import StorageError
from repro.sim import RngStreams
from repro.storage import (
    DataBlob,
    ErasureCode,
    Shard,
    make_random_blob,
    seal_blob,
    seal_chunk,
    unseal_chunk,
)


class TestDataBlob:
    def test_from_bytes_chunks_correctly(self):
        blob = DataBlob.from_bytes(b"x" * 2500, chunk_size=1024)
        assert len(blob.chunks) == 3
        assert blob.size_bytes == 2500
        assert blob.to_bytes() == b"x" * 2500

    def test_content_id_stable_and_sensitive(self):
        b1 = DataBlob.from_bytes(b"hello world")
        b2 = DataBlob.from_bytes(b"hello world")
        b3 = DataBlob.from_bytes(b"hello worle")
        assert b1.content_id == b2.content_id
        assert b1.content_id != b3.content_id

    def test_chunk_proofs_verify(self):
        blob = make_random_blob(RngStreams(1), 4096, chunk_size=512)
        for index, chunk in enumerate(blob.chunks):
            assert blob.verify_chunk(index, chunk, blob.proof_for(index))

    def test_wrong_chunk_fails_verification(self):
        blob = make_random_blob(RngStreams(2), 2048, chunk_size=512)
        proof = blob.proof_for(0)
        assert not blob.verify_chunk(0, b"forged", proof)

    def test_proof_index_mismatch_fails(self):
        blob = make_random_blob(RngStreams(3), 2048, chunk_size=512)
        proof = blob.proof_for(1)
        assert not blob.verify_chunk(0, blob.chunks[0], proof)

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            DataBlob.from_bytes(b"")
        with pytest.raises(StorageError):
            make_random_blob(RngStreams(1), 0)

    def test_random_blob_reproducible(self):
        b1 = make_random_blob(RngStreams(7), 1000, name="x")
        b2 = make_random_blob(RngStreams(7), 1000, name="x")
        assert b1.content_id == b2.content_id


class TestErasureCode:
    def test_roundtrip_all_shards(self):
        code = ErasureCode(4, 2)
        data = b"the quick brown fox jumps over the lazy dog" * 10
        assert code.decode(code.encode(data)) == data

    def test_any_k_subset_decodes(self):
        import itertools

        code = ErasureCode(3, 2)
        data = bytes(range(256)) * 3
        shards = code.encode(data)
        for subset in itertools.combinations(shards, 3):
            assert code.decode(list(subset)) == data

    def test_fewer_than_k_fails(self):
        code = ErasureCode(3, 2)
        shards = code.encode(b"data data data")
        with pytest.raises(StorageError):
            code.decode(shards[:2])

    def test_storage_overhead(self):
        assert ErasureCode(4, 2).storage_overhead == pytest.approx(1.5)
        assert ErasureCode(1, 2).storage_overhead == pytest.approx(3.0)

    def test_erasure_beats_replication_overhead(self):
        # Tolerating 2 failures: 3x replication vs (4,2) at 1.5x.
        replication_overhead = 3.0
        assert ErasureCode(4, 2).storage_overhead < replication_overhead

    def test_single_byte_roundtrip(self):
        code = ErasureCode(4, 2)
        assert code.decode(code.encode(b"z")) == b"z"

    def test_duplicate_shards_rejected_for_decode(self):
        code = ErasureCode(2, 1)
        shards = code.encode(b"hello world!")
        with pytest.raises(StorageError):
            code.decode([shards[0], shards[0]])

    def test_invalid_parameters(self):
        with pytest.raises(StorageError):
            ErasureCode(0, 1)
        with pytest.raises(StorageError):
            ErasureCode(200, 100)

    def test_corrupt_shard_detected_or_wrong(self):
        code = ErasureCode(2, 1)
        data = b"important bytes here"
        shards = code.encode(data)
        bad = Shard(1, bytes(b ^ 0xFF for b in shards[1].payload))
        # Decoding with a corrupted shard must not silently return the
        # original: either an error or different bytes.
        try:
            out = code.decode([shards[0], bad])
        except StorageError:
            return
        assert out != data


class TestSealing:
    def test_seal_unseal_roundtrip(self):
        chunk = b"chunk payload bytes"
        sealed = seal_chunk(chunk, "replica-1", 0)
        assert sealed != chunk
        assert unseal_chunk(sealed, "replica-1", 0) == chunk

    def test_distinct_replicas_distinct_bytes(self):
        chunk = b"same plaintext"
        assert seal_chunk(chunk, "r1", 0) != seal_chunk(chunk, "r2", 0)

    def test_distinct_indices_distinct_keystream(self):
        chunk = b"same plaintext"
        assert seal_chunk(chunk, "r1", 0) != seal_chunk(chunk, "r1", 1)

    def test_sealed_blob_has_distinct_commitment(self):
        blob = make_random_blob(RngStreams(4), 2048, chunk_size=512)
        sealed1 = seal_blob(blob, "r1")
        sealed2 = seal_blob(blob, "r2")
        assert sealed1.merkle_root != blob.merkle_root
        assert sealed1.merkle_root != sealed2.merkle_root

    def test_empty_replica_id_rejected(self):
        with pytest.raises(StorageError):
            seal_chunk(b"x", "", 0)
