"""Tests for node ids, routing tables, and the Kademlia protocol."""

import pytest

from repro.dht import (
    Contact,
    DhtConfig,
    KademliaNode,
    RoutingTable,
    bucket_index,
    build_overlay,
    key_for,
    node_id_for,
    xor_distance,
)
from repro.errors import DHTError, LookupFailedError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator


def make_network(seed=1, latency=0.01, loss_rate=0.0):
    sim = Simulator()
    network = Network(
        sim, RngStreams(seed), latency=ConstantLatency(latency), loss_rate=loss_rate
    )
    return sim, network


SMALL = DhtConfig(k=8, alpha=3, rpc_timeout=1.0)


class TestNodeId:
    def test_ids_stable_and_distinct(self):
        assert node_id_for("a") == node_id_for("a")
        assert node_id_for("a") != node_id_for("b")
        assert key_for("a") != node_id_for("a")  # separate namespaces

    def test_id_range(self):
        assert 0 <= node_id_for("x") < 2**160

    def test_xor_metric_properties(self):
        a, b, c = node_id_for("a"), node_id_for("b"), node_id_for("c")
        assert xor_distance(a, a) == 0
        assert xor_distance(a, b) == xor_distance(b, a)
        # Unidirectional triangle-ish property of XOR:
        assert xor_distance(a, c) ^ xor_distance(c, b) == xor_distance(a, b)

    def test_bucket_index_bounds(self):
        a, b = node_id_for("a"), node_id_for("b")
        assert 0 <= bucket_index(a, b) < 160

    def test_bucket_index_self_rejected(self):
        a = node_id_for("a")
        with pytest.raises(DHTError):
            bucket_index(a, a)

    def test_invalid_id_rejected(self):
        with pytest.raises(DHTError):
            xor_distance(-1, 0)


class TestRoutingTable:
    def test_observe_and_closest(self):
        table = RoutingTable(node_id_for("me"), k=4)
        contacts = [Contact(f"n{i}", node_id_for(f"n{i}")) for i in range(10)]
        for c in contacts:
            table.observe(c)
        target = node_id_for("target")
        closest = table.closest(target, 3)
        assert len(closest) == 3
        distances = [xor_distance(c.dht_id, target) for c in closest]
        assert distances == sorted(distances)

    def test_self_never_tracked(self):
        me = node_id_for("me")
        table = RoutingTable(me, k=4)
        table.observe(Contact("me", me))
        assert len(table) == 0

    def test_full_bucket_returns_eviction_candidate(self):
        me = node_id_for("me")
        table = RoutingTable(me, k=1)
        # Find two contacts in the same bucket.
        same_bucket = []
        i = 0
        while len(same_bucket) < 2:
            candidate = Contact(f"c{i}", node_id_for(f"c{i}"))
            i += 1
            if not same_bucket:
                same_bucket.append(candidate)
            elif bucket_index(me, candidate.dht_id) == bucket_index(
                me, same_bucket[0].dht_id
            ):
                same_bucket.append(candidate)
        assert table.observe(same_bucket[0]) is None
        candidate = table.observe(same_bucket[1])
        assert candidate == same_bucket[0]  # oldest is the evictee candidate
        assert not table.knows(same_bucket[1].name)

    def test_evict(self):
        table = RoutingTable(node_id_for("me"), k=4)
        c = Contact("x", node_id_for("x"))
        table.observe(c)
        assert table.evict("x")
        assert not table.knows("x")
        assert not table.evict("x")

    def test_reobserve_refreshes(self):
        table = RoutingTable(node_id_for("me"), k=4)
        c = Contact("x", node_id_for("x"))
        table.observe(c)
        table.observe(c)
        assert len(table) == 1

    def test_bad_k_rejected(self):
        with pytest.raises(DHTError):
            RoutingTable(node_id_for("me"), k=0)


class TestKademliaProtocol:
    def test_overlay_join_populates_tables(self):
        sim, network = make_network(seed=2)
        overlay = build_overlay(network, [f"n{i}" for i in range(20)], SMALL)
        assert all(len(node.table) > 0 for node in overlay.values())

    def test_put_get_roundtrip(self):
        sim, network = make_network(seed=3)
        overlay = build_overlay(network, [f"n{i}" for i in range(20)], SMALL)

        def scenario():
            acked = yield from overlay["n0"].put("greeting", "hello world")
            value = yield from overlay["n7"].get("greeting")
            return acked, value

        acked, value = sim.run_process(scenario())
        assert acked > 0
        assert value == "hello world"

    def test_replicas_land_on_closest_nodes(self):
        sim, network = make_network(seed=4)
        names = [f"n{i}" for i in range(30)]
        overlay = build_overlay(network, names, SMALL)

        def scenario():
            return (yield from overlay["n0"].put("some-key", 42))

        acked = sim.run_process(scenario())
        holders = [n for n in names if key_for("some-key") in overlay[n].stored_keys()]
        assert len(holders) == acked
        # Holders should be among the globally closest nodes to the key.
        by_distance = sorted(names, key=lambda n: xor_distance(node_id_for(n), key_for("some-key")))
        assert set(holders) <= set(by_distance[: SMALL.k + 2])

    def test_get_missing_key_raises(self):
        sim, network = make_network(seed=5)
        overlay = build_overlay(network, [f"n{i}" for i in range(10)], SMALL)

        def scenario():
            try:
                yield from overlay["n0"].get("never-stored")
            except LookupFailedError:
                return "missing"

        assert sim.run_process(scenario()) == "missing"

    def test_value_expires_after_ttl(self):
        sim, network = make_network(seed=6)
        overlay = build_overlay(network, [f"n{i}" for i in range(10)], SMALL)

        def scenario():
            yield from overlay["n0"].put("k", "v", ttl=10.0)
            yield 100.0  # outlive the TTL
            try:
                yield from overlay["n5"].get("k")
            except LookupFailedError:
                return "expired"

        assert sim.run_process(scenario()) == "expired"

    def test_lookup_survives_offline_nodes(self):
        sim, network = make_network(seed=7)
        names = [f"n{i}" for i in range(30)]
        overlay = build_overlay(network, names, SMALL)

        def scenario():
            yield from overlay["n0"].put("resilient", "data")
            # Kill a third of the network (not the publisher/reader).
            for name in names[10:20]:
                network.node(name).set_online(False, sim.now)
            value = yield from overlay["n1"].get("resilient")
            return value

        assert sim.run_process(scenario()) == "data"

    def test_dead_nodes_evicted_from_table(self):
        sim, network = make_network(seed=8)
        names = [f"n{i}" for i in range(15)]
        overlay = build_overlay(network, names, SMALL)
        network.node("n5").set_online(False, sim.now)

        def scenario():
            # Lookups touching n5 should evict it.
            for key in ("a", "b", "c", "d"):
                yield from overlay["n0"].lookup(key_for(key))
            return True

        sim.run_process(scenario())
        assert not overlay["n0"].table.knows("n5")

    def test_republish_keeps_value_alive(self):
        sim, network = make_network(seed=9)
        config = DhtConfig(k=4, alpha=2, value_ttl=50.0, republish_interval=20.0)
        overlay = build_overlay(network, [f"n{i}" for i in range(10)], config)
        overlay["n0"].start_republishing()

        def scenario():
            yield from overlay["n0"].put("persistent", "v")
            yield 200.0  # four TTLs
            value = yield from overlay["n3"].get("persistent")
            # Stop the maintenance loop so the event queue can drain.
            overlay["n0"].stop_republishing()
            return value

        assert sim.run_process(scenario()) == "v"

    def test_bootstrap_from_self_rejected(self):
        sim, network = make_network(seed=10)
        node = network.create_node("solo")
        kad = KademliaNode(network, node, SMALL)
        with pytest.raises(DHTError):
            sim.run_process(kad.bootstrap("solo"))

    def test_build_overlay_requires_names(self):
        sim, network = make_network()
        with pytest.raises(DHTError):
            build_overlay(network, [], SMALL)

    def test_lookup_converges_in_logarithmic_hops(self):
        sim, network = make_network(seed=11)
        names = [f"n{i}" for i in range(64)]
        overlay = build_overlay(network, names, DhtConfig(k=8, alpha=3))
        rpcs_before = network.monitor.counters.get("rpcs_sent")

        def scenario():
            return (yield from overlay["n0"].lookup(key_for("needle")))

        sim.run_process(scenario())
        rpcs_used = network.monitor.counters.get("rpcs_sent") - rpcs_before
        # log2(64)=6 rounds of alpha=3 with some slack; far less than N.
        assert rpcs_used < 40
