"""Plain-text figures: sparklines and scatter/line plots.

The paper has no figures, but several derived experiments are curves
(E6b's attack probability, E8's availability threshold).  These helpers
render them in a terminal without any plotting dependency; the CLI's
``figure`` command and the examples use them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["sparkline", "ascii_plot"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line block-character sparkline."""
    if not values:
        raise ReproError("sparkline of no values")
    lo, hi = min(values), max(values)
    if hi == lo:
        return _BLOCKS[0] * len(values)
    span = hi - lo
    out = []
    for value in values:
        index = int((value - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[index])
    return "".join(out)


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """A simple scatter/line plot on a character grid with axes."""
    if len(xs) != len(ys):
        raise ReproError(f"xs and ys differ in length: {len(xs)} vs {len(ys)}")
    if not xs:
        raise ReproError("nothing to plot")
    if width < 10 or height < 4:
        raise ReproError("plot area too small")

    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = marker

    y_hi_text = f"{y_hi:g}"
    y_lo_text = f"{y_lo:g}"
    gutter = max(len(y_hi_text), len(y_lo_text)) + 1

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_text.rjust(gutter)
        elif i == height - 1:
            prefix = y_lo_text.rjust(gutter)
        else:
            prefix = " " * gutter
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (gutter + 1) + x_axis)
    lines.append(" " * (gutter + 1) + f"{y_label} vs {x_label}")
    return "\n".join(lines)
