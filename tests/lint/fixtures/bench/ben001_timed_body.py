"""BEN001 positive fixture: a benchmark body timing itself."""

import time
from time import perf_counter


def bench_self_timed(metrics):
    start = time.perf_counter()
    for _ in range(1000):
        pass
    elapsed = perf_counter() - start
    metrics.inc("bench.slow", int(elapsed > 0.5))
