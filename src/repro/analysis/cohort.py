"""Cohort-engine experiment drivers: E3/E4/E5/E9 at population scale.

The per-process drivers in :mod:`repro.analysis.experiments` build one
simulated node per device, which is faithful but caps out around 10^3
devices.  The drivers here re-express the availability models of E4
(federation reads), E5 (social-graph pings), and E9 (quality vs
quantity) on the vectorized :mod:`repro.sim.cohort` engine, and
re-evaluate the Table 3 capacity model (E3) with *measured* per-class
availability at 10^6 simulated devices.

Every point function is a pure, top-level function of JSON-safe keyword
arguments, so all drivers fan out through
:class:`~repro.analysis.runner.SweepRunner` exactly like the
per-process ones (parallel, cached, per-task seeds).

``run_churn_availability`` is the equivalence target: the same churn
population run under either engine (``engine="cohort" | "process"``),
returning one report dict whose integer aggregates the hypothesis suite
compares across engines within the tolerance contract of
``docs/SCALING.md``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

import numpy

from repro.analysis.runner import SweepRunner
from repro.core.feasibility import paper_model
from repro.net.churn import ChurnProfile, attach_churn, profile_for_class
from repro.net.latency import LogNormalLatency
from repro.net.node import Node
from repro.obs.metrics import Histogram
from repro.sim.cohort import CohortEngine, DeviceCohort
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams, seeded_generator

__all__ = [
    "run_churn_availability",
    "run_federation_availability_cohort",
    "run_feasibility_cohort",
    "run_quality_vs_quantity_cohort",
    "run_social_tradeoff_cohort",
]

#: Fleet mix for the Table 3 re-evaluation: the paper's 2:2:1 device
#: populations ([11]), as fractions of the simulated cohort.
FLEET_SHARES = (
    ("personal_computer", 0.4),
    ("smartphone", 0.4),
    ("tablet", 0.2),
)


# ---------------------------------------------------------------------------
# Equivalence target: one churn population, either engine
# ---------------------------------------------------------------------------

def _churn_point(
    engine: str,
    seed: int,
    devices: int,
    mean_uptime: float,
    mean_downtime: float,
    attrition: float,
    horizon: float,
    tick: float,
) -> Dict[str, object]:
    """One churn population, measured identically under either engine.

    Both branches sample integer online counts at every tick boundary
    and report the same keys, so equivalence tests can compare dicts
    directly.  ``flips = 2*sessions + offline_now`` holds exactly on
    both paths (every device starts online and transitions alternate).
    """
    if engine == "cohort":
        generator = seeded_generator(seed, "cohort.churn")
        cohort = DeviceCohort(
            "churn", devices, mean_uptime, mean_downtime, attrition,
            generator=generator,
        )
        cohort_engine = CohortEngine(tick=tick)
        cohort_engine.add(cohort)
        samples = {"online": 0, "ticks": 0}

        def on_tick(t: float) -> None:
            samples["online"] += cohort.online_count()
            samples["ticks"] += 1

        cohort_engine.run(horizon, on_tick=on_tick)
        online_now = cohort.online_count()
        sessions = cohort.sessions()
        flips = cohort.flips
        departed = cohort.departed_count()
        time_mean = cohort.availability_time_mean()
    elif engine == "process":
        sim = Simulator()
        streams = RngStreams(seed)
        profile = ChurnProfile(mean_uptime, mean_downtime, attrition)
        nodes = [Node(f"d{i}") for i in range(devices)]
        processes = attach_churn(sim, streams, nodes, profile)
        samples = {"online": 0, "ticks": 0}

        def sampler() -> Any:
            elapsed = 0.0
            while elapsed < horizon:
                yield tick
                elapsed += tick
                samples["online"] += sum(1 for n in nodes if n.online)
                samples["ticks"] += 1
            return True

        # Churn processes are perpetual; bound the run at the horizon so
        # the queue never has to drain (and node accounting stops there).
        sim.run_process(sampler(), until=horizon)
        online_now = sum(1 for n in nodes if n.online)
        sessions = sum(n.sessions for n in nodes)
        flips = 2 * sessions + (devices - online_now)
        departed = sum(1 for p in processes if p.departed)
        time_mean = sum(n.uptime_fraction(horizon) for n in nodes) / devices
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return {
        "engine": engine,
        "devices": devices,
        "ticks": samples["ticks"],
        "online_device_ticks": samples["online"],
        "availability_tick_mean": round(
            samples["online"] / (devices * samples["ticks"]), 9
        ),
        "availability_time_mean": round(time_mean, 9),
        "sessions": sessions,
        "flips": flips,
        "departed": departed,
        "final_online": online_now,
    }


def run_churn_availability(
    engine: str = "cohort",
    seed: int = 1,
    devices: int = 200,
    mean_uptime: float = 600.0,
    mean_downtime: float = 300.0,
    attrition: float = 0.0,
    horizon: float = 3000.0,
    tick: float = 50.0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """Availability aggregates of one churn population on either engine."""
    runner = runner or SweepRunner()
    config = {
        "engine": engine,
        "seed": seed,
        "devices": devices,
        "mean_uptime": mean_uptime,
        "mean_downtime": mean_downtime,
        "attrition": attrition,
        "horizon": horizon,
        "tick": tick,
    }
    return runner.run("churn_availability", _churn_point, [config])[0]


# ---------------------------------------------------------------------------
# E4 — federation read availability at scale
# ---------------------------------------------------------------------------

def _federation_cohort_point(
    model_name: str,
    seed: int,
    devices: int,
    n_servers: int,
    failed_servers: int,
    fail_at: float,
    horizon: float,
    tick: float,
    device_class: str,
) -> Dict[str, object]:
    """One E4-at-scale grid point: one federation model, churning users.

    Users are devices under class churn, assigned home servers round
    robin; the first ``failed_servers`` servers die at ``fail_at``.  A
    user-tick counts as readable when the user is online *and* the
    model can serve the full room history:

    * ``single_home`` — history is spread across every home server, so
      a full read needs all servers up (remote fetches included);
    * ``replicated`` — the home server holds a full replica but there
      is no failover, so a read needs the user's own home up;
    * ``replicated_failover`` — any live server can answer.
    """
    generator = seeded_generator(seed, f"cohort.e4.{model_name}")
    profile = profile_for_class(device_class)
    cohort = DeviceCohort(
        "users", devices, profile.mean_uptime, profile.mean_downtime,
        profile.attrition, generator=generator,
    )
    engine = CohortEngine(tick=tick)
    engine.add(cohort)
    home = numpy.arange(devices) % n_servers
    counts = {"readable": 0, "samples": 0}

    def on_tick(t: float) -> None:
        server_up = numpy.ones(n_servers, dtype=bool)
        if t >= fail_at:
            server_up[:failed_servers] = False
        if model_name == "single_home":
            readable = cohort.online_count() if bool(server_up.all()) else 0
        elif model_name == "replicated":
            readable = int((cohort.online & server_up[home]).sum())
        elif model_name == "replicated_failover":
            readable = cohort.online_count() if bool(server_up.any()) else 0
        else:
            raise ValueError(f"unknown federation model {model_name!r}")
        counts["readable"] += readable
        counts["samples"] += devices

    engine.run(horizon, on_tick=on_tick)
    return {
        "model": model_name,
        "engine": "cohort",
        "devices": devices,
        "servers": n_servers,
        "failed": failed_servers,
        "readable_user_ticks": counts["readable"],
        "user_ticks": counts["samples"],
        "read_availability": round(counts["readable"] / counts["samples"], 6),
        "flips": cohort.flips,
        "departed": cohort.departed_count(),
    }


def run_federation_availability_cohort(
    seed: int = 7,
    devices: int = 10_000,
    n_servers: int = 5,
    failed_servers: int = 1,
    fail_at: float = 2000.0,
    horizon: float = 4000.0,
    tick: float = 50.0,
    device_class: str = "smartphone",
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E4 at population scale: read availability per federation model."""
    runner = runner or SweepRunner()
    configs = [
        {
            "model_name": model_name,
            "seed": seed,
            "devices": devices,
            "n_servers": n_servers,
            "failed_servers": failed_servers,
            "fail_at": fail_at,
            "horizon": horizon,
            "tick": tick,
            "device_class": device_class,
        }
        for model_name in ("single_home", "replicated", "replicated_failover")
    ]
    return runner.run(
        "E4_federation_availability_cohort", _federation_cohort_point, configs
    )


# ---------------------------------------------------------------------------
# E5 — social pings between churning devices
# ---------------------------------------------------------------------------

def _social_cohort_point(
    seed: int,
    devices: int,
    replication: int,
    probes_per_tick: int,
    horizon: float,
    tick: float,
    mean_uptime: float,
    mean_downtime: float,
    latency_median: float,
    latency_sigma: float,
) -> Dict[str, object]:
    """One E5-at-scale grid point: random reader->content pings.

    Each tick draws ``probes_per_tick`` (reader, holders) tuples; a ping
    succeeds when the reader is online and at least one of the
    ``replication`` replica holders is online.  Successful pings sample
    a heavy-tailed WAN delay into a streaming bucket-sketch histogram —
    memory O(buckets), never O(pings).
    """
    generator = seeded_generator(seed, "cohort.e5")
    cohort = DeviceCohort(
        "social", devices, mean_uptime, mean_downtime, generator=generator
    )
    engine = CohortEngine(tick=tick)
    engine.add(cohort)
    latency = LogNormalLatency(median=latency_median, sigma=latency_sigma)
    hist = Histogram()
    pings = {"attempted": 0, "ok": 0}

    def on_tick(t: float) -> None:
        readers = generator.integers(0, devices, size=probes_per_tick)
        holders = generator.integers(
            0, devices, size=(probes_per_tick, replication)
        )
        ok = cohort.online[readers] & cohort.online[holders].any(axis=1)
        n_ok = int(ok.sum())
        pings["attempted"] += probes_per_tick
        pings["ok"] += n_ok
        if n_ok:
            # Observe in milliseconds: the histogram's power-of-two
            # buckets resolve 16-512ms WAN delays well, while seconds
            # would all collapse into the single [0, 1) bucket.
            for delay in latency.sample_propagation_delays(
                generator, n_ok
            ).tolist():
                hist.observe(delay * 1000.0)

    engine.run(horizon, on_tick=on_tick)
    report: Dict[str, object] = {
        "engine": "cohort",
        "devices": devices,
        "replication": replication,
        "pings_attempted": pings["attempted"],
        "pings_ok": pings["ok"],
        "ping_availability": round(pings["ok"] / pings["attempted"], 6),
        "flips": cohort.flips,
    }
    if hist.count:
        report["latency_p50_ms"] = round(hist.percentile(0.50), 3)
        report["latency_p99_ms"] = round(hist.percentile(0.99), 3)
        report["latency_source"] = hist.percentile_source
    return report


def run_social_tradeoff_cohort(
    seed: int = 3,
    devices: int = 10_000,
    replications: Sequence[int] = (1, 2, 3),
    probes_per_tick: int = 200,
    horizon: float = 4000.0,
    tick: float = 50.0,
    mean_uptime: float = 600.0,
    mean_downtime: float = 300.0,
    latency_median: float = 0.05,
    latency_sigma: float = 0.5,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E5 at population scale: ping success vs replication factor."""
    runner = runner or SweepRunner()
    configs = [
        {
            "seed": seed,
            "devices": devices,
            "replication": replication,
            "probes_per_tick": probes_per_tick,
            "horizon": horizon,
            "tick": tick,
            "mean_uptime": mean_uptime,
            "mean_downtime": mean_downtime,
            "latency_median": latency_median,
            "latency_sigma": latency_sigma,
        }
        for replication in replications
    ]
    return runner.run("E5_social_tradeoff_cohort", _social_cohort_point, configs)


# ---------------------------------------------------------------------------
# E9 — quality vs quantity at scale
# ---------------------------------------------------------------------------

def _quality_cohort_point(
    infrastructure: str,
    replication_factor: int,
    seed: int,
    devices: int,
    horizon: float,
    tick: float,
) -> Dict[str, object]:
    """One E9-at-scale grid point: object availability per grade/factor.

    Devices hold ``devices // replication_factor`` objects, each
    replicated on ``replication_factor`` distinct consecutive devices;
    an object-tick counts available when any holder is online.
    """
    # Local import: experiments.py owns the E9 grade profiles.
    from repro.analysis.experiments import QUALITY_PROFILES

    profile = QUALITY_PROFILES[infrastructure]
    generator = seeded_generator(
        seed, f"cohort.e9.{infrastructure}.{replication_factor}"
    )
    cohort = DeviceCohort(
        "providers", devices, profile.mean_uptime, profile.mean_downtime,
        profile.attrition, generator=generator,
    )
    engine = CohortEngine(tick=tick)
    engine.add(cohort)
    objects = devices // replication_factor
    holders = objects * replication_factor
    counts = {"available": 0, "samples": 0}

    def on_tick(t: float) -> None:
        up = (
            cohort.online[:holders]
            .reshape(objects, replication_factor)
            .any(axis=1)
        )
        counts["available"] += int(up.sum())
        counts["samples"] += objects

    engine.run(horizon, on_tick=on_tick)
    return {
        "infrastructure": infrastructure,
        "replication_factor": replication_factor,
        "engine": "cohort",
        "devices": devices,
        "objects": objects,
        "available_object_ticks": counts["available"],
        "object_ticks": counts["samples"],
        "retrieval_availability": round(
            counts["available"] / counts["samples"], 6
        ),
        "flips": cohort.flips,
    }


def run_quality_vs_quantity_cohort(
    seed: int = 2,
    devices: int = 10_000,
    replication_factors: Sequence[int] = (1, 2, 3, 4),
    horizon: float = 4000.0,
    tick: float = 50.0,
    runner: Optional[SweepRunner] = None,
) -> List[Dict[str, object]]:
    """E9 at population scale: datacenter vs device grade object availability."""
    from repro.analysis.experiments import QUALITY_PROFILES

    runner = runner or SweepRunner()
    configs = [
        {
            "infrastructure": grade,
            "replication_factor": factor,
            "seed": seed,
            "devices": devices,
            "horizon": horizon,
            "tick": tick,
        }
        for grade in QUALITY_PROFILES
        for factor in replication_factors
    ]
    return runner.run(
        "E9_quality_vs_quantity_cohort", _quality_cohort_point, configs
    )


# ---------------------------------------------------------------------------
# E3 — Table 3 re-evaluated with measured availability
# ---------------------------------------------------------------------------

def _feasibility_cohort_point(
    seed: int,
    devices: int,
    horizon: float,
    tick: float,
) -> Dict[str, object]:
    """Table 3 with per-class populations derated by *measured* availability.

    Simulates a 2:2:1 PC/smartphone/tablet fleet under the class churn
    profiles, measures each class's tick-averaged online fraction, and
    rebuilds the §4 capacity model with populations scaled by it — the
    honest version of the paper's raw device counts.
    """
    engine = CohortEngine(tick=tick)
    cohorts: Dict[str, DeviceCohort] = {}
    sums: Dict[str, int] = {}
    remaining = devices
    for index, (class_name, share) in enumerate(FLEET_SHARES):
        size = (
            remaining
            if index == len(FLEET_SHARES) - 1
            else int(devices * share)
        )
        remaining -= size
        profile = profile_for_class(class_name)
        cohorts[class_name] = engine.add(
            DeviceCohort(
                class_name, size, profile.mean_uptime, profile.mean_downtime,
                profile.attrition,
                generator=seeded_generator(seed, f"cohort.e3.{class_name}"),
            )
        )
        sums[class_name] = 0

    def on_tick(t: float) -> None:
        for class_name, cohort in cohorts.items():
            sums[class_name] += cohort.online_count()

    engine.run(horizon, on_tick=on_tick)
    availability = {
        class_name: round(
            sums[class_name] / (cohorts[class_name].size * engine.ticks), 6
        )
        for class_name in cohorts
    }
    base = paper_model()
    derated = replace(
        base,
        device_classes=tuple(
            replace(d, population=d.population * availability[d.name])
            for d in base.device_classes
        ),
    )
    ratios = derated.device_capacity().ratio_to(derated.cloud_capacity())
    return {
        "engine": "cohort",
        "devices": devices,
        "ticks": engine.ticks,
        "availability": availability,
        "table3": derated.table3(),
        "sufficient": derated.sufficient(),
        "ratios": {k: round(v, 4) for k, v in ratios.items()},
    }


def run_feasibility_cohort(
    seed: int = 1,
    devices: int = 1_000_000,
    horizon: float = 4000.0,
    tick: float = 50.0,
    runner: Optional[SweepRunner] = None,
) -> Dict[str, object]:
    """E3 at 10^6 devices: Table 3 derated by measured fleet availability."""
    runner = runner or SweepRunner()
    config = {
        "seed": seed,
        "devices": devices,
        "horizon": horizon,
        "tick": tick,
    }
    return runner.run(
        "E3_feasibility_cohort", _feasibility_cohort_point, [config]
    )[0]
