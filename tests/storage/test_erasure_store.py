"""Tests for erasure-coded storage across a churning pool."""

import pytest

from repro.errors import StorageError
from repro.net import ChurnProfile, ConstantLatency, Network, attach_churn
from repro.sim import RngStreams, Simulator
from repro.storage import ErasureBlobStore, StorageProvider, make_random_blob


def setup_pool(seed=1, n_providers=10, k=4, m=2, check_interval=30.0):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    providers = [StorageProvider(network, f"p{i}") for i in range(n_providers)]
    store = ErasureBlobStore(
        network, providers, streams, k=k, m=m, check_interval=check_interval
    )
    return sim, streams, network, providers, store


def payload(streams, size=4096):
    return make_random_blob(streams, size, chunk_size=1024).to_bytes()


class TestErasurePlacement:
    def test_store_places_n_shards_on_distinct_providers(self):
        sim, streams, network, providers, store = setup_pool()
        data = payload(streams)

        def scenario():
            return (yield from store.store(data, "doc-1"))

        health = sim.run_process(scenario())
        assert len(health.placement) == 6  # k+m
        assert len(set(health.placement.values())) == 6

    def test_retrieve_roundtrip(self):
        sim, streams, network, providers, store = setup_pool(seed=2)
        data = payload(streams)

        def scenario():
            yield from store.store(data, "doc-1")
            return (yield from store.retrieve("doc-1"))

        assert sim.run_process(scenario()) == data

    def test_retrieve_survives_m_failures(self):
        sim, streams, network, providers, store = setup_pool(seed=3)
        data = payload(streams)

        def scenario():
            health = yield from store.store(data, "doc-1")
            victims = sorted(health.placement.values())[:2]  # m = 2
            for victim in victims:
                network.node(victim).set_online(False, sim.now)
            return (yield from store.retrieve("doc-1"))

        assert sim.run_process(scenario()) == data

    def test_retrieve_fails_past_m_failures(self):
        sim, streams, network, providers, store = setup_pool(seed=4)
        data = payload(streams)

        def scenario():
            health = yield from store.store(data, "doc-1")
            victims = sorted(health.placement.values())[:3]  # m + 1
            for victim in victims:
                network.node(victim).set_online(False, sim.now)
            try:
                yield from store.retrieve("doc-1")
            except StorageError:
                return "unrecoverable"

        assert sim.run_process(scenario()) == "unrecoverable"

    def test_storage_overhead_below_replication(self):
        sim, streams, network, providers, store = setup_pool(seed=5)
        data = payload(streams)

        def scenario():
            yield from store.store(data, "doc-1")

        sim.run_process(scenario())
        stored = store.stored_bytes("doc-1")
        # (4+2)/4 = 1.5x vs 3x for 2-failure-tolerant replication.
        assert stored < 2 * len(data)
        assert stored >= 1.4 * len(data)

    def test_duplicate_content_id_rejected(self):
        sim, streams, network, providers, store = setup_pool(seed=6)
        data = payload(streams)

        def scenario():
            yield from store.store(data, "doc-1")
            try:
                yield from store.store(data, "doc-1")
            except StorageError:
                return "dup"

        assert sim.run_process(scenario()) == "dup"

    def test_pool_too_small_rejected(self):
        sim = Simulator()
        streams = RngStreams(7)
        network = Network(sim, streams)
        providers = [StorageProvider(network, f"p{i}") for i in range(3)]
        with pytest.raises(StorageError):
            ErasureBlobStore(network, providers, streams, k=4, m=2)


class TestErasureRepair:
    def test_repair_restores_offline_shards(self):
        sim, streams, network, providers, store = setup_pool(seed=8)
        data = payload(streams)

        def scenario():
            health = yield from store.store(data, "doc-1")
            store.start_repair()
            victim = sorted(health.placement.values())[0]
            network.node(victim).set_online(False, sim.now)
            yield 200.0
            store.stop_repair()
            return health

        health = sim.run_process(scenario(), until=1000.0)
        assert health.repairs >= 1
        assert store.live_shards("doc-1") >= 6

    def test_repair_moves_less_data_than_full_replication_would(self):
        sim, streams, network, providers, store = setup_pool(seed=9)
        data = payload(streams)

        def scenario():
            health = yield from store.store(data, "doc-1")
            store.start_repair()
            victim = sorted(health.placement.values())[0]
            network.node(victim).set_online(False, sim.now)
            yield 200.0
            store.stop_repair()

        sim.run_process(scenario(), until=1000.0)
        # One lost shard costs ~1 shard of repair upload (vs a whole blob
        # for replication) -- though decode reads k shards internally.
        assert 0 < store.repair_bytes() <= len(data)

    def test_survives_churn_with_repair(self):
        sim, streams, network, providers, store = setup_pool(
            seed=10, n_providers=12, check_interval=20.0
        )
        profile = ChurnProfile(mean_uptime=300.0, mean_downtime=150.0)
        attach_churn(sim, streams, [p.node for p in providers], profile)
        data = payload(streams, size=2048)

        def scenario():
            yield from store.store(data, "doc-1")
            store.start_repair()
            yield 2500.0
            result = yield from store.retrieve("doc-1")
            store.stop_repair()
            return result

        assert sim.run_process(scenario(), until=10_000.0) == data


class TestErasureStoreEdges:
    def test_unknown_content_rejected(self):
        sim, streams, network, providers, store = setup_pool(
            seed=65, n_providers=6
        )
        with pytest.raises(StorageError):
            store.live_shards("ghost")

        def scenario():
            try:
                yield from store.retrieve("ghost")
            except StorageError:
                return "unknown"

        assert sim.run_process(scenario()) == "unknown"

    def test_store_requires_enough_online(self):
        sim, streams, network, providers, store = setup_pool(
            seed=66, n_providers=6
        )
        network.node("p0").set_online(False, 0.0)
        data = payload(streams, 1024)

        def scenario():
            try:
                yield from store.store(data, "doc")
            except StorageError:
                return "short"

        assert sim.run_process(scenario()) == "short"
