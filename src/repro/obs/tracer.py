"""Deterministic event tracing: one JSONL record per span/event.

A :class:`Tracer` is an append-only buffer of flat dict records.  Every
record carries the schema version, a monotonically increasing ``seq``
(total order over the whole run), and a ``kind`` naming the event; all
other fields are emitter-specific JSON scalars.

Determinism contract: emitters may only record simulated quantities —
``Simulator.now``, sequence numbers, names, byte counts.  Wall-clock
reads, ``id()`` values, and unsorted dict iteration are forbidden, so
two runs of the same seeded experiment produce byte-identical traces.

Record shape (see :mod:`repro.obs.reporters` for the validator)::

    {"schema": 1, "seq": 0, "kind": "process_spawned",
     "t": 0.0, "name": "client"}

Well-known kinds (open set; consumers must ignore unknown kinds):

==================== =====================================================
kind                 emitted by
==================== =====================================================
``event_scheduled``  :meth:`Simulator.schedule`
``event_fired``      the :meth:`Simulator.run` loop
``event_cancelled``  event cancellation (at cancel time, drained or not)
``process_spawned``  :meth:`Simulator.spawn`
``process_finished`` a process generator returning / being interrupted
``queue_depth``      periodic queue-depth samples from the run loop
``msg_send``         :meth:`Network.send` / request legs of ``rpc``
``msg_deliver``      successful delivery at the destination
``msg_drop``         loss / offline / partition drops (``reason`` field)
``rpc``              one completed RPC attempt (latency, outcome, retry)
``sweep_task``       one sweep grid point (wall time, cache status)
``fault_injected``   :class:`repro.faults.FaultInjector` opening a fault
                     (partition/crash/window start)
``fault_healed``     the matching heal/restart/window end
``censor_detected``  the censor's DPI detecting a relay (``relay``)
``censor_reblocked`` a detected relay joining the blocklist
``invariant_checked`` one :class:`repro.faults.InvariantHarness` sweep
                     (``checked``/``violated`` counts)
``invariant_violated`` a single invariant failure (``name``, ``message``)
``shard_sync``       :class:`repro.sim.shard.ShardedSimulator`, one per
                     synchronization barrier (``round``, ``envelopes``,
                     ``stalls``)
``shard_envelope``   one cross-shard envelope injected at a barrier
                     (``arrival``, ``src``, ``dst``, ``origin_shard``)
==================== =====================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["RESERVED_FIELDS", "TRACE_SCHEMA_VERSION", "Tracer"]

TRACE_SCHEMA_VERSION = 1

#: Field names the tracer itself owns; emitters may not override them.
RESERVED_FIELDS = frozenset({"schema", "seq", "kind"})


class Tracer:
    """Append-only deterministic trace buffer.

    Parameters
    ----------
    capacity:
        Optional hard cap on retained records.  Past it, new records are
        counted (``dropped``) but not stored — a safety valve for very
        long runs; ``None`` (default) retains everything.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._seq = 0
        self._events: List[Dict[str, Any]] = []

    # -- emitting --------------------------------------------------------

    def emit(self, kind: str, /, **fields: Any) -> None:
        """Record one event.  ``fields`` must be JSON scalars and may
        not use the reserved names ``schema``/``seq``/``kind``."""
        if not RESERVED_FIELDS.isdisjoint(fields):
            clash = sorted(RESERVED_FIELDS.intersection(fields))
            raise ValueError(f"reserved trace field(s): {', '.join(clash)}")
        seq = self._seq
        self._seq += 1
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1
            return
        record: Dict[str, Any] = {
            "schema": TRACE_SCHEMA_VERSION, "seq": seq, "kind": kind,
        }
        record.update(fields)
        self._events.append(record)

    # -- reading ---------------------------------------------------------

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The retained records, in emission order (a copy)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self._events)
        return sum(1 for e in self._events if e["kind"] == kind)

    def iter_kind(self, kind: str) -> Iterator[Dict[str, Any]]:
        for event in self._events:
            if event["kind"] == kind:
                yield event

    def by_kind(self) -> Dict[str, int]:
        """Event counts per kind, sorted by kind name."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    # -- serialization ---------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact JSON object per line (trailing newline included
        when non-empty)."""
        if not self._events:
            return ""
        lines = [
            json.dumps(event, separators=(",", ":")) for event in self._events
        ]
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str) -> int:
        """Write the trace to ``path``; returns the record count."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(events={len(self._events)}, dropped={self.dropped})"
