#!/usr/bin/env python3
"""Feasibility study: §4 of the paper, with sensitivity analysis.

Reproduces Table 3 from the published assumptions, then asks the question
the paper's "roughly speaking" hedge invites: *how robust is the
sufficient-capacity conclusion?*  Sweeps the core-discount factor, the
device upstream bandwidth, and the fleet size.

Run:  python examples/feasibility_study.py
"""

from repro.analysis import render_kv, render_table
from repro.core import paper_model
from repro.core.units import MBPS


def main() -> None:
    model = paper_model()

    print("Table 3 — as published")
    print(render_table(model.table3()))

    ratios = model.device_capacity().ratio_to(model.cloud_capacity())
    print(render_kv(
        {k: f"{v:.2f}x" for k, v in ratios.items()},
        title="\nDevice/cloud supply ratios",
    ))

    print("\nWhere the conclusion is fragile")
    print("-" * 31)
    print(f"compute breakeven core-discount: "
          f"{model.breakeven_core_discount():.0f} "
          f"(paper assumes 8; at >10 devices fall short)")

    print("\nSweep: server-equivalence discount on PC cores")
    rows = model.sweep(model.with_core_discount, [4, 8, 10, 12, 16])
    print(render_table([
        {"core_discount": r["value"],
         "cores_ratio": f"{r['cores']:.2f}",
         "sufficient": r["cores"] >= 1.0}
        for r in rows
    ]))

    print("\nSweep: usable upstream per device (paper assumes 1 Mbps)")
    rows = model.sweep(
        lambda v: model.with_upstream_bps(v * MBPS), [0.05, 0.1, 0.5, 1.0, 10.0]
    )
    print(render_table([
        {"upstream_mbps": r["value"],
         "bandwidth_ratio": f"{r['bandwidth']:.2f}",
         "sufficient": r["bandwidth"] >= 1.0}
        for r in rows
    ]))

    print("\nSweep: fleet participation (what if only a fraction join?)")
    rows = model.sweep(model.with_populations_scaled, [1.0, 0.5, 0.25, 0.1])
    print(render_table([
        {"participating_fraction": r["value"],
         "bandwidth_ratio": f"{r['bandwidth']:.2f}",
         "cores_ratio": f"{r['cores']:.2f}",
         "storage_ratio": f"{r['storage']:.2f}"}
        for r in rows
    ]))

    print("\nDemand-side extension: what could the fleet host?")
    from repro.core import demand_table
    print(render_table(demand_table()))

    print(
        "\nReading: bandwidth has a 25x margin and survives tiny uplinks or"
        "\n10% participation; storage has ~2.6x; compute is the thin margin —"
        "\nthe 500M-vs-400M core comparison flips with a modestly more"
        "\npessimistic server-equivalence discount or participation rate."
        "\nThat asymmetry is the quantified version of §5.2's quality-vs-"
        "\nquantity problem."
    )


if __name__ == "__main__":
    main()
