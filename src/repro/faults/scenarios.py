"""Chaos scenarios: experiment-shaped workloads run under a fault plan.

Each ``run_chaos_*`` function rebuilds a small, fast variant of one of
the paper's experiments, arms a :class:`~repro.faults.FaultInjector`
with the caller's plan, sweeps an :class:`~repro.faults.InvariantHarness`
throughout, and returns one JSON-friendly result dict:

``experiment`` / ``plan`` / ``seed`` / ``horizon`` — run identity;
``result`` — the scenario's own measurements (availability, latency,
repair bytes, ...); ``flow`` — the transport conservation snapshot;
``faults`` — injected/healed counts; ``invariants`` + ``violations`` —
what the harness checked and what failed.

The scenarios' node naming is the contract the presets in
:mod:`repro.faults.presets` target: ``srv<i>`` (E4 federation servers),
``dev<ii>`` (E5 devices), ``client0``/``ca`` (E6), ``prov<i>`` (E9
providers), ``ca``/``hub1``/``hub2`` + ``client0``/``dev<ii>`` (E4P
partial-federation hubs and users, so the E6 and E5 presets apply to it
unchanged).  The censor scenarios (``E4C``/``E5C``/``E9C``) share one
cast built from a region-labelled :func:`~repro.net.topology.isp_tree`
— inside nodes ``isp0``/``isp2`` + their users (the ``cn`` region),
outside services ``svc0``/``svc1``, and volunteer relays
``relay0``–``relay3`` — so the ``border-*`` presets apply to all three.

Everything is deterministic in (plan, seed): all randomness flows
through :class:`~repro.sim.rng.RngStreams`, and observation hooks are
adopted from any enclosing :func:`repro.obs.observe` block, so the CLI
gets full traces without the scenarios knowing about it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Tuple

from repro.crypto.keys import generate_keypair
from repro.errors import (
    FaultError,
    NameTakenError,
    RpcTimeoutError,
    StorageError,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import (
    InvariantContext,
    InvariantHarness,
    eventually,
    message_conservation,
    monotonic,
    no_double_resume,
    read_your_writes,
)
from repro.faults.plan import FaultPlan
from repro.gossip.relay import CircumventionClient, RelayNode
from repro.groupcomm.federated import ReplicatedFederation
from repro.groupcomm.partial import PartialFederation
from repro.naming.centralized_pki import CentralizedPKI
from repro.net.churn import ChurnProcess, ChurnProfile, attach_churn
from repro.net.node import NodeClass
from repro.net.topology import isp_tree, nodes_in_region
from repro.net.transport import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.storage.blob import DataBlob
from repro.storage.provider import StorageProvider
from repro.storage.replication import ReplicatedBlobStore

__all__ = [
    "SCENARIOS",
    "run_chaos",
    "run_chaos_e4",
    "run_chaos_e4c",
    "run_chaos_e4p",
    "run_chaos_e5",
    "run_chaos_e5c",
    "run_chaos_e6",
    "run_chaos_e9",
    "run_chaos_e9c",
]


def _assemble(
    experiment: str,
    plan: FaultPlan,
    seed: int,
    sim: Simulator,
    network: Network,
    injector: FaultInjector,
    harness: InvariantHarness,
    result: Dict[str, Any],
) -> Dict[str, Any]:
    """Close the harness and build the common result envelope."""
    violations = harness.finish()
    return {
        "experiment": experiment,
        "plan": plan.name,
        "seed": seed,
        "horizon": sim.now,
        "result": result,
        "flow": network.flow_snapshot(),
        "faults": {"injected": injector.injected, "healed": injector.healed},
        "invariants": {
            "registered": len(harness.invariants),
            "checks_run": harness.checks_run,
            "violated": len(violations),
        },
        "violations": [
            {
                "name": v.name,
                "message": v.message,
                "at": v.at,
                "details": v.details,
            }
            for v in violations
        ],
    }


# -- E4: replicated federation availability under server kills -----------


def run_chaos_e4(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E4 variant: 4-server replicated federation, 12 users, failover on.

    One user posts six messages early; at t=400 every user fetches the
    room (failing over from dead home servers).  Availability is the
    fraction of users whose fetch returns the full room.
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    servers = [f"srv{i}" for i in range(4)]
    fed = ReplicatedFederation(
        network, servers, streams, gossip_interval=2.0, allow_failover=True
    )
    users = [f"user{i:02d}" for i in range(12)]
    for user in users:
        fed.add_user(user)  # round-robin homes: user00->srv0, ...
    fed.create_room("room", users)
    fed.start_replication()

    posted: List[str] = []
    post_times: Dict[str, float] = {}
    reads = {"ok": 0, "failed": 0}

    def poster() -> Generator:
        yield 10.0
        for i in range(6):
            msg_id = yield from fed.post("user02", "room", f"msg-{i}")
            posted.append(msg_id)
            post_times[msg_id] = sim.now
            yield 5.0

    def reader(user: str) -> Generator:
        try:
            messages = yield from fed.fetch(user, "room")
        except RpcTimeoutError:
            reads["failed"] += 1
            return
        if len(messages) == len(posted):
            reads["ok"] += 1
        else:
            reads["failed"] += 1

    def start_readers() -> None:
        for user in users:
            sim.spawn(reader(user), name=f"reader-{user}")

    sim.spawn(poster(), name="poster")
    sim.schedule_at(400.0, start_readers)

    def replicas_probe(ctx: InvariantContext):
        # After heal (+grace), every *online* server's anti-entropy
        # replica must hold every posted message old enough for gossip
        # to have propagated (5 rounds of the 2 s interval).
        settled = [m for m in posted if ctx.now >= post_times[m] + 10.0]
        for server_id in servers:
            if not network.node(server_id).online:
                continue
            store = fed.replicas[server_id].store
            keys = set(store.keys())
            missing = [m for m in settled if f"room/{m}" not in keys]
            if missing:
                return (
                    f"{server_id} missing {len(missing)} posted message(s)",
                    {"server": server_id, "missing": len(missing)},
                )
        return None

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    harness.add(read_your_writes(replicas_probe, grace=30.0))
    injector.arm()
    harness.start()
    sim.run(until=600.0)

    total = reads["ok"] + reads["failed"]
    result = {
        "posted": len(posted),
        "reads_ok": reads["ok"],
        "reads_failed": reads["failed"],
        "availability": reads["ok"] / total if total else 0.0,
    }
    return _assemble("E4", plan, seed, sim, network, injector, harness, result)


# -- E4P: partial federation diverging and re-converging under faults ----


def run_chaos_e4p(
    plan: FaultPlan, seed: int, interval: float = 5.0,
    strategy: str = "lww",
) -> Dict[str, Any]:
    """E4P variant: 3 trust-gated hubs whose room state diverges and must
    re-converge under the chosen :class:`ConflictStrategy`.

    Hubs ``ca``/``hub1``/``hub2`` federate fully; users ``client0`` and
    ``dev00``–``dev04`` share the public room "town".  ``client0`` posts
    messages (retrying through faults) while ``dev00`` and ``dev01`` —
    homed on different hubs — rewrite the room topic on competing
    schedules until t=150, manufacturing divergence under any partition
    the plan opens.  An operator process drains manual conflict queues
    every 20 s, so the ``manual`` strategy converges too.  The
    ``replicas_converge`` invariant requires zero divergence and empty
    conflict queues from t=380 onward; ``read_your_writes`` requires all
    online hubs to agree once faults are quiet, writes have settled, and
    the heal grace has passed.
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    hubs = ["ca", "hub1", "hub2"]
    fed = PartialFederation(
        network, hubs, streams, gossip_interval=2.0,
        conflict_strategy=strategy,
    )
    # Federation-wide reputations: ca is the venerable anchor, hub2 the
    # freshly-spun-up (possibly Sybil) instance.
    fed.set_reputation("ca", 0.9)
    fed.set_reputation("hub1", 0.7)
    fed.set_reputation("hub2", 0.2)
    homes = {
        "client0": "ca", "dev00": "hub1", "dev01": "hub2",
        "dev02": "ca", "dev03": "hub1", "dev04": "hub2",
    }
    for user in sorted(homes):
        fed.add_user(user, homes[user])
    users = sorted(homes)
    fed.create_room("town", users, public=True)
    fed.start_federation()

    posted: List[str] = []
    last_write = {"t": 0.0}
    topic_writes = {"count": 0}
    reads = {"ok": 0, "failed": 0}

    def poster() -> Generator:
        yield 10.0
        for i in range(6):
            while True:
                try:
                    msg_id = yield from fed.post(
                        "client0", "town", f"msg-{i}"
                    )
                except RpcTimeoutError:
                    yield 5.0
                    continue
                break
            posted.append(msg_id)
            last_write["t"] = sim.now
            yield 8.0

    def topic_writer(user: str, phase: float, label: str) -> Generator:
        yield phase
        while sim.now < 150.0:
            try:
                yield from fed.set_room_state(
                    user, "town", "topic", f"{label}-{sim.now:.0f}"
                )
                topic_writes["count"] += 1
                last_write["t"] = sim.now
            except RpcTimeoutError:
                pass
            yield 25.0

    def operator() -> Generator:
        while True:
            yield 20.0
            if fed.resolve_manual_queues():
                last_write["t"] = sim.now

    def reader(user: str) -> Generator:
        try:
            messages = yield from fed.fetch(user, "town")
        except RpcTimeoutError:
            reads["failed"] += 1
            return
        if len(messages) == len(posted):
            reads["ok"] += 1
        else:
            reads["failed"] += 1

    def start_readers() -> None:
        for user in users:
            sim.spawn(reader(user), name=f"reader-{user}")

    sim.spawn(poster(), name="poster")
    sim.spawn(topic_writer("dev00", 15.0, "north"), name="topic-dev00")
    sim.spawn(topic_writer("dev01", 27.0, "south"), name="topic-dev01")
    sim.spawn(operator(), name="conflict-operator")
    sim.schedule_at(390.0, start_readers)

    def agreement_probe(ctx: InvariantContext) -> Any:
        # Writes need time to gossip (and, under `manual`, an operator
        # pass) before agreement is a fair demand.
        if ctx.now < last_write["t"] + 60.0:
            return None
        divergent = fed.divergence(online_only=True)
        if divergent:
            return (
                f"{len(divergent)} divergent key(s) among online hubs",
                {"keys": sorted(divergent)},
            )
        return None

    def converged() -> bool:
        if fed.divergence():
            return False
        return not any(
            fed.pending_conflicts(server_id) for server_id in hubs
        )

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    harness.add(read_your_writes(agreement_probe, grace=60.0))
    harness.add(eventually(
        "replicas_converge", deadline=380.0,
        predicate=lambda ctx: converged(),
    ))
    injector.arm()
    harness.start()
    sim.run(until=420.0)

    total = reads["ok"] + reads["failed"]
    queued = sum(len(fed.pending_conflicts(s)) for s in hubs)
    result = {
        "strategy": fed.strategy.name,
        "posted": len(posted),
        "topic_writes": topic_writes["count"],
        "reads_ok": reads["ok"],
        "reads_failed": reads["failed"],
        "availability": reads["ok"] / total if total else 0.0,
        "divergent_keys": len(fed.divergence()),
        "conflicts_pending": queued,
        "final_topic": (
            fed.hubs["ca"].store.get("state/town/topic") or {}
        ).get("value"),
    }
    return _assemble(
        "E4P", plan, seed, sim, network, injector, harness, result
    )


# -- E5: device fleet pinging a datacenter through a churn storm ---------


def run_chaos_e5(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E5 variant: 16 churning devices ping a datacenter every 10 s.

    The measurement is the ping success rate — the §5.2 social cost of
    device-grade infrastructure, degraded further by whatever the plan
    throws at the transport.
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    dc = network.create_node("dc", node_class=NodeClass.DATACENTER)
    dc.register_handler("ping", lambda node, payload, sender: "pong")
    devices = [
        network.create_node(f"dev{i:02d}", node_class=NodeClass.SMARTPHONE)
        for i in range(16)
    ]
    profile = ChurnProfile(mean_uptime=300.0, mean_downtime=100.0,
                           name="e5-device")
    churn_processes = attach_churn(sim, streams, devices, profile)
    churn: Dict[str, ChurnProcess] = {
        p.node.node_id: p for p in churn_processes
    }

    pings = {"attempts": 0, "ok": 0}

    def pinger(device_id: str) -> Generator:
        while True:
            yield 10.0
            if not network.node(device_id).online:
                continue  # an offline device does not originate traffic
            pings["attempts"] += 1
            try:
                yield from network.rpc(
                    device_id, "dc", "ping", None, timeout=5.0, retries=1
                )
            except RpcTimeoutError:
                continue
            pings["ok"] += 1

    for device in devices:
        sim.spawn(pinger(device.node_id), name=f"pinger-{device.node_id}")

    injector = FaultInjector(sim, network, plan, streams, churn=churn)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    injector.arm()
    harness.start()
    sim.run(until=400.0)

    result = {
        "ping_attempts": pings["attempts"],
        "ping_ok": pings["ok"],
        "ping_success_rate": (
            pings["ok"] / pings["attempts"] if pings["attempts"] else 0.0
        ),
    }
    return _assemble("E5", plan, seed, sim, network, injector, harness, result)


# -- E6: name registration while partitioned from the CA -----------------


def run_chaos_e6(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E6 variant: a client registers a name, retrying through faults.

    The client starts at t=10 and re-issues the registration on every
    timeout; the measurement is end-to-end registration latency.  The
    liveness invariant requires completion by t=150, which the
    ``registration-partition-noheal`` mutation plan must violate.
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    pki = CentralizedPKI(network)  # creates the "ca" node
    network.create_node("client0", node_class=NodeClass.PERSONAL_COMPUTER)
    keypair = generate_keypair("client0-key")

    outcome: Dict[str, Any] = {"registered": False, "attempts": 0,
                               "latency": None}

    def registrar() -> Generator:
        yield 10.0
        start = sim.now
        while True:
            outcome["attempts"] += 1
            try:
                yield from pki.register(
                    keypair, "alice", {"host": "client0"}, client="client0"
                )
            except RpcTimeoutError:
                continue
            except NameTakenError:
                pass  # an earlier attempt landed after all
            outcome["registered"] = True
            outcome["latency"] = sim.now - start
            return

    sim.spawn(registrar(), name="registrar")

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    harness.add(monotonic(
        "names_registered_monotonic",
        lambda ctx: float(pki.names_registered),
    ))
    harness.add(eventually(
        "registration_completes", deadline=150.0,
        predicate=lambda ctx: outcome["registered"],
    ))
    injector.arm()
    harness.start()
    sim.run(until=200.0)

    result = dict(outcome)
    return _assemble("E6", plan, seed, sim, network, injector, harness, result)


# -- E9: replicated blob storage across flapping devices -----------------


def run_chaos_e9(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E9 variant: a 3-way replicated blob on 8 device-grade providers.

    A repair loop re-replicates every 20 s; a prober retrieves the blob
    every 25 s.  Measurements: retrieval availability and total repair
    traffic (the §5.2 redundancy bandwidth cost).
    """
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    providers = [
        StorageProvider(network, f"prov{i}", node_class=NodeClass.SMARTPHONE)
        for i in range(8)
    ]
    store = ReplicatedBlobStore(
        network, providers, streams, replication_factor=3, check_interval=20.0
    )
    blob = DataBlob.from_bytes(b"\xa5" * 4096, chunk_size=1024)
    probes = {"attempts": 0, "ok": 0}

    def setup() -> Generator:
        yield from store.store(blob)
        store.start_repair()

    def prober() -> Generator:
        yield 30.0
        while True:
            probes["attempts"] += 1
            try:
                yield from store.retrieve(blob.merkle_root)
            except StorageError:
                pass
            else:
                probes["ok"] += 1
            yield 25.0

    sim.spawn(setup(), name="blob-setup")
    sim.spawn(prober(), name="blob-prober")

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    harness.add(monotonic(
        "repair_bytes_monotonic",
        lambda ctx: float(store.repair_bytes()),
    ))
    injector.arm()
    harness.start()
    sim.run(until=300.0)

    result = {
        "repair_bytes": store.repair_bytes(),
        "probe_attempts": probes["attempts"],
        "probe_ok": probes["ok"],
        "availability": (
            probes["ok"] / probes["attempts"] if probes["attempts"] else 0.0
        ),
    }
    return _assemble("E9", plan, seed, sim, network, injector, harness, result)


# -- E4C/E5C/E9C: censorship campaigns over a labelled border ------------
#
# One shared cast (so every border-* preset validates against all
# three): a region-labelled isp_tree supplies the censored country
# (region "cn" -> isp0/isp2 and their users), svc0/svc1 are the outside
# services the campaigns blocklist, and relay0-relay3 are outside
# volunteers.  Inside users run CircumventionClients that start with no
# relay knowledge and learn addresses from relay.announce gossip — the
# announcements cross the border carrying the relay fingerprint, so
# probing campaigns detect relays even before they carry traffic.


def _censor_fabric(
    seed: int,
) -> Tuple[Simulator, RngStreams, Network, List[str], List[CircumventionClient]]:
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams)
    graph = isp_tree(4, 2, regions=("cn", "intl"))
    for node_id in sorted(graph.nodes):
        network.create_node(
            node_id,
            node_class=(
                NodeClass.DATACENTER if node_id.startswith("isp")
                else NodeClass.PERSONAL_COMPUTER
            ),
        )
    inside = nodes_in_region(graph, "cn")
    for service in ("svc0", "svc1"):
        network.create_node(service, node_class=NodeClass.DATACENTER)
    relays = []
    for i in range(4):
        network.create_node(f"relay{i}",
                            node_class=NodeClass.PERSONAL_COMPUTER)
        relays.append(RelayNode(network, f"relay{i}"))
    clients = [
        CircumventionClient(network, user)
        for user in inside if user.startswith("user")
    ]

    def announcer(relay: RelayNode, phase: float) -> Generator:
        yield phase
        while True:
            relay.announce([c.node.node_id for c in clients])
            yield 30.0

    for i, relay in enumerate(relays):
        sim.spawn(announcer(relay, 20.0 + 2.0 * i),
                  name=f"announce-{relay.node.node_id}")
    return sim, streams, network, inside, clients


def _censor_result(
    injector: FaultInjector,
    attempts: List[Tuple[float, bool]],
    horizon: float,
    bucket: float = 100.0,
) -> Dict[str, Any]:
    """The shared censor measurements: reachability over time,
    time-to-reblock, and the censor's cost model."""
    ok = sum(1 for _, success in attempts if success)
    timeline = []
    edge = 0.0
    while edge < horizon:
        window = [s for t, s in attempts if edge <= t < edge + bucket]
        timeline.append({
            "t": edge,
            "attempts": len(window),
            "ok": sum(window),
        })
        edge += bucket
    return {
        "attempts": len(attempts),
        "ok": ok,
        "reachability": ok / len(attempts) if attempts else 0.0,
        "timeline": timeline,
        "relays_detected": len(injector.detection_log),
        "relays_reblocked": injector.relays_reblocked,
        "first_detection_at": (
            injector.detection_log[0][0] if injector.detection_log else None
        ),
        "first_reblock_at": (
            injector.reblock_log[0][0] if injector.reblock_log else None
        ),
        "censor_cost": injector.censor_cost(),
    }


def _run_censor_scenario(
    experiment: str,
    plan: FaultPlan,
    seed: int,
    interval: float,
    attempt_factory: Callable[
        [Network, CircumventionClient, List[Tuple[float, bool]]],
        Callable[[], Generator],
    ],
    period: float,
    horizon: float = 400.0,
) -> Dict[str, Any]:
    """Common driver: every inside user runs ``attempt_factory``'s
    probe loop against the blocked services while the plan's campaigns
    come and go."""
    sim, streams, network, inside, clients = _censor_fabric(seed)
    attempts: List[Tuple[float, bool]] = []

    def prober(client: CircumventionClient, phase: float) -> Generator:
        attempt = attempt_factory(network, client, attempts)
        yield phase
        while True:
            yield from attempt()
            yield period

    for i, client in enumerate(clients):
        sim.spawn(prober(client, 10.0 + 1.0 * i),
                  name=f"prober-{client.node.node_id}")

    injector = FaultInjector(sim, network, plan, streams)
    harness = InvariantHarness(sim, network, injector, interval=interval)
    harness.add(message_conservation())
    harness.add(no_double_resume())
    injector.arm()
    harness.start()
    sim.run(until=horizon)

    result = _censor_result(injector, attempts, horizon)
    return _assemble(
        experiment, plan, seed, sim, network, injector, harness, result
    )


def run_chaos_e4c(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E4C: group-feed reads from a blocked outside service.

    ``svc0`` hosts a message feed that grows until t=200; inside users
    fetch it every 20 s through their circumvention clients.  An attempt
    succeeds only if the full feed (as of fetch time) comes back —
    the E4 availability question asked across a censored border.
    """
    feed: List[str] = []

    def attempt_factory(
        network: Network,
        client: CircumventionClient,
        attempts: List[Tuple[float, bool]],
    ) -> Callable[[], Generator]:
        if not network.node("svc0").has_handler("feed.fetch"):
            network.node("svc0").register_handler(
                "feed.fetch", lambda node, payload, sender: list(feed)
            )

            def poster() -> Generator:
                yield 5.0
                while network.sim.now < 200.0:
                    feed.append(f"msg-{len(feed)}")
                    yield 15.0

            network.sim.spawn(poster(), name="feed-poster")

        def attempt() -> Generator:
            expected = len(feed)
            try:
                messages = yield from client.request("svc0", "feed.fetch")
            except RpcTimeoutError:
                attempts.append((network.sim.now, False))
                return
            attempts.append((network.sim.now, len(messages) >= expected))
        return attempt

    report = _run_censor_scenario(
        "E4C", plan, seed, interval, attempt_factory, period=20.0
    )
    report["result"]["posted"] = len(feed)
    return report


def run_chaos_e5c(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E5C: liveness pings to a blocked outside service.

    The E5 question — can a device reach the service at all — asked
    across a censored border: inside users ping ``svc0`` every 10 s via
    their circumvention clients.
    """

    def attempt_factory(
        network: Network,
        client: CircumventionClient,
        attempts: List[Tuple[float, bool]],
    ) -> Callable[[], Generator]:
        if not network.node("svc0").has_handler("ping"):
            network.node("svc0").register_handler(
                "ping", lambda node, payload, sender: "pong"
            )

        def attempt() -> Generator:
            try:
                yield from client.request("svc0", "ping")
            except RpcTimeoutError:
                attempts.append((network.sim.now, False))
                return
            attempts.append((network.sim.now, True))
        return attempt

    return _run_censor_scenario(
        "E5C", plan, seed, interval, attempt_factory, period=10.0
    )


def run_chaos_e9c(
    plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """E9C: chunked blob retrieval from a blocked outside service.

    ``svc0`` serves a 4-chunk blob; every 30 s each inside user pulls
    all four chunks through its circumvention client.  An attempt
    succeeds only if every chunk arrives — partial retrievals count as
    failures, so mid-fetch re-blocking (a relay dying between chunk 2
    and 3) is visible in the reachability curve.
    """
    chunks = [bytes([0xA0 + i]) * 256 for i in range(4)]

    def attempt_factory(
        network: Network,
        client: CircumventionClient,
        attempts: List[Tuple[float, bool]],
    ) -> Callable[[], Generator]:
        if not network.node("svc0").has_handler("blob.chunk"):
            network.node("svc0").register_handler(
                "blob.chunk",
                lambda node, payload, sender: chunks[int(payload)],
            )

        def attempt() -> Generator:
            got = 0
            for index in range(len(chunks)):
                try:
                    data = yield from client.request(
                        "svc0", "blob.chunk", index
                    )
                except RpcTimeoutError:
                    break
                if data == chunks[index]:
                    got += 1
            attempts.append((network.sim.now, got == len(chunks)))
        return attempt

    return _run_censor_scenario(
        "E9C", plan, seed, interval, attempt_factory, period=30.0
    )


#: Experiment key -> chaos scenario runner.
SCENARIOS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "E4": run_chaos_e4,
    "E4C": run_chaos_e4c,
    "E4P": run_chaos_e4p,
    "E5": run_chaos_e5,
    "E5C": run_chaos_e5c,
    "E6": run_chaos_e6,
    "E9": run_chaos_e9,
    "E9C": run_chaos_e9c,
}


def run_chaos(
    experiment: str, plan: FaultPlan, seed: int, interval: float = 5.0
) -> Dict[str, Any]:
    """Dispatch to a chaos scenario by experiment key (``E4``/``E5``/...)."""
    runner = SCENARIOS.get(experiment)
    if runner is None:
        raise FaultError(
            f"no chaos scenario for {experiment!r}; available:"
            f" {', '.join(sorted(SCENARIOS))}"
        )
    return runner(plan, seed, interval=interval)
