"""Smoke tests: every example script must run clean and print its story.

These run the examples as subprocesses — exactly what a new user does
first — so a broken example is a test failure, not a bad first impression.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": ["200 Tbps", "Done."],
    "feasibility_study.py": ["Table 3", "video_streaming"],
    "decentralized_naming.py": ["51% attack", "ATTACKER"],
    "federated_social.py": ["Matrix", "metadata"],
    "storage_marketplace.py": ["slashed", "honest-provider"],
    "webapp_swarm.py": ["popular app", "fork"],
    "research_agenda.py": ["HARD problems", "agenda"],
    "overthrow_simulation.py": ["ACT III", "ada still owns ada.community: True"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{name} exited {result.returncode}:\n{result.stderr[-2000:]}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_MARKERS))
def test_example_runs(name):
    stdout = run_example(name)
    for marker in EXPECTED_MARKERS[name]:
        assert marker in stdout, f"{name}: missing {marker!r} in output"


def test_all_examples_are_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_MARKERS), (
        "examples/ and the smoke-test table drifted apart"
    )
