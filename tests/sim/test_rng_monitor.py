"""Tests for RNG streams and measurement helpers."""

import pytest

from repro.sim import Monitor, RngStreams, Sampler, TimeWeightedGauge, derive_seed
from repro.sim.monitor import Counter, summarize


class TestRngStreams:
    def test_same_name_same_stream_object(self):
        streams = RngStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RngStreams(42).stream("x").random()
        b = RngStreams(42).stream("x").random()
        assert a == b

    def test_streams_independent(self):
        # Drawing from one stream must not perturb another.
        s1 = RngStreams(42)
        s2 = RngStreams(42)
        _ = [s1.stream("noise").random() for _ in range(100)]
        assert s1.stream("signal").random() == s2.stream("signal").random()

    def test_different_seeds_differ(self):
        assert RngStreams(1).stream("x").random() != RngStreams(2).stream("x").random()

    def test_derive_seed_stable(self):
        assert derive_seed(7, "a") == derive_seed(7, "a")
        assert derive_seed(7, "a") != derive_seed(7, "b")

    def test_fork_creates_independent_space(self):
        streams = RngStreams(5)
        fork_a = streams.fork("node-a")
        fork_b = streams.fork("node-b")
        assert fork_a.stream("x").random() != fork_b.stream("x").random()

    def test_exponential_positive_and_mean(self):
        streams = RngStreams(3)
        draws = [streams.exponential("e", 10.0) for _ in range(5000)]
        assert all(d >= 0 for d in draws)
        assert 9.0 < sum(draws) / len(draws) < 11.0

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RngStreams(1).exponential("e", 0.0)

    def test_shuffled_does_not_mutate(self):
        streams = RngStreams(4)
        original = [1, 2, 3, 4, 5]
        out = streams.shuffled("s", original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(out) == original


class TestCounterSampler:
    def test_counter_accumulates(self):
        c = Counter()
        c.increment("x")
        c.increment("x", 4)
        assert c.get("x") == 5
        assert c.get("missing") == 0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment("x", -1)

    def test_sampler_mean_and_summary(self):
        s = Sampler()
        for v in [1.0, 2.0, 3.0]:
            s.record("lat", v)
        assert s.mean("lat") == pytest.approx(2.0)
        summary = s.summary("lat")
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_sampler_empty_mean_raises(self):
        with pytest.raises(ValueError):
            Sampler().mean("nothing")

    def test_summarize_percentiles(self):
        summary = summarize([float(i) for i in range(1, 101)])
        assert summary.p50 == 50.0
        assert summary.p90 == 90.0
        assert summary.p99 == 99.0

    def test_summarize_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestGauge:
    def test_time_average_piecewise(self):
        g = TimeWeightedGauge(initial=0.0)
        g.set(10.0, 4.0)   # 0 for [0,10], then 4
        assert g.time_average(20.0) == pytest.approx((0 * 10 + 4 * 10) / 20)

    def test_add_delta(self):
        g = TimeWeightedGauge(initial=2.0)
        g.add(5.0, 3.0)
        assert g.value == 5.0

    def test_backwards_time_rejected(self):
        g = TimeWeightedGauge()
        g.set(10.0, 1.0)
        with pytest.raises(ValueError):
            g.set(5.0, 2.0)

    def test_monitor_report_shape(self):
        m = Monitor()
        m.counters.increment("events")
        m.samples.record("lat", 1.5)
        m.gauge("replicas", initial=3.0)
        report = m.report(now=10.0)
        assert report["count.events"] == 1
        assert report["sample.lat"]["count"] == 1
        assert report["gauge.replicas"] == pytest.approx(3.0)
