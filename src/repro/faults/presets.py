"""Named fault plans matching the chaos scenarios' node conventions.

Each preset is a zero-argument factory returning a fresh
:class:`~repro.faults.plan.FaultPlan`.  Node ids follow the scenario
naming in :mod:`repro.faults.scenarios` (``srv<i>`` federation servers,
``dev<ii>`` E5 devices, ``prov<i>`` E9 providers, ``client0``/``ca``
for E6), so a preset pairs with the experiment it was written for:

=========================== ==========  =======================================
preset                      experiment  what it exercises
=========================== ==========  =======================================
``quiet``                   any         no faults (baseline / overhead check)
``server-kill``             E4          one permanent + one transient server
                                        crash under replicated federation
``churn-storm``             E5          loss burst + latency spike + a wave of
                                        device crashes on top of churn
``registration-partition``  E6          client cut off from the CA mid-
                                        registration, healing later
``registration-partition-`` E6          the same partition, never healed — the
``noheal``                              mutation-smoke plan a liveness
                                        invariant must catch
``hub-partition``           E4P         partial-federation hub mesh split in
                                        two (divergent room state), healed,
                                        then one hub crash/restart
``device-flap``             E9          staggered crash/restart across every
                                        storage provider
``border-block``            E4C/E5C/    static national-firewall campaign over
                            E9C         the censor scenarios' labelled border
``border-block-probing``    E4C/E5C/    the same border plus DPI fingerprint
                            E9C         detection and delayed relay re-blocking
``border-flap``             E4C/E5C/    two overlapping campaigns — the border
                            E9C         flaps, exercising guarded-heal
                                        semantics under load
=========================== ==========  =======================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import FaultError
from repro.faults.plan import (
    Censor,
    Corrupt,
    Crash,
    DropBurst,
    FaultPlan,
    LatencySpike,
    Partition,
)

__all__ = ["CENSOR_INSIDE", "PRESETS", "load_plan", "preset_plan"]


def _quiet() -> FaultPlan:
    return FaultPlan([], name="quiet")


def _server_kill() -> FaultPlan:
    return FaultPlan(
        [
            Crash("srv0", at=60.0),                      # never restarts
            Crash("srv1", at=90.0, restart_at=240.0),
        ],
        name="server-kill",
    )


def _churn_storm() -> FaultPlan:
    events: List = [
        DropBurst(window=(100.0, 200.0), prob=0.4),
        LatencySpike(window=(150.0, 250.0), factor=4.0),
        Corrupt(window=(160.0, 220.0), prob=0.1),
    ]
    for i in range(4):
        events.append(Crash(f"dev{i:02d}", at=120.0, restart_at=180.0))
    return FaultPlan(events, name="churn-storm")


def _registration_partition() -> FaultPlan:
    return FaultPlan(
        [Partition((("client0",), ("ca",)), at=5.0, heal_at=75.0)],
        name="registration-partition",
    )


def _registration_partition_noheal() -> FaultPlan:
    # Mutation smoke: the heal event deliberately removed.  The E6
    # liveness invariant (registration completes by its deadline) must
    # flag this plan; tests pin that it does.
    return FaultPlan(
        [Partition((("client0",), ("ca",)), at=5.0)],
        name="registration-partition-noheal",
    )


def _hub_partition() -> FaultPlan:
    # The E4P arc: split the hub mesh (users stay with their homes, so
    # both sides keep writing and room state diverges), heal, then flap
    # one hub to exercise post-convergence repair.
    return FaultPlan(
        [
            Partition(
                (
                    ("ca", "hub1", "client0", "dev00", "dev02", "dev03"),
                    ("hub2", "dev01", "dev04"),
                ),
                at=40.0,
                heal_at=160.0,
            ),
            Crash("hub1", at=200.0, restart_at=260.0),
        ],
        name="hub-partition",
    )


def _device_flap() -> FaultPlan:
    return FaultPlan(
        [
            Crash(f"prov{i}", at=50.0 + 10.0 * i, restart_at=80.0 + 10.0 * i)
            for i in range(8)
        ],
        name="device-flap",
    )


#: The censor scenarios' border membership: the ``cn`` region of their
#: ``isp_tree(4, 2, regions=("cn", "intl"))`` topology (see
#: :mod:`repro.faults.scenarios`).
CENSOR_INSIDE = (
    "isp0", "isp2", "user0_0", "user0_1", "user2_0", "user2_1",
)


def _border_block() -> FaultPlan:
    # Static national firewall: both services blocklisted for the middle
    # of the run, outbound hard-blocked, inbound degraded.  No DPI, so
    # relays stay alive for the whole campaign.
    return FaultPlan(
        [
            Censor(
                inside=CENSOR_INSIDE,
                at=60.0,
                heal_at=300.0,
                blocked=("svc0", "svc1"),
                direction="outbound",
                degrade_prob=0.25,
                fingerprints=("relay.",),
            ),
        ],
        name="border-block",
    )


def _border_block_probing() -> FaultPlan:
    # The same border, but the censor's DPI watches for the relay
    # protocol fingerprint: each observed relay message is detected with
    # p=0.3 and the relay joins the blocklist 15 s later — the
    # whack-a-mole dynamic the censor scenarios measure.
    return FaultPlan(
        [
            Censor(
                inside=CENSOR_INSIDE,
                at=60.0,
                heal_at=300.0,
                blocked=("svc0", "svc1"),
                direction="outbound",
                degrade_prob=0.25,
                fingerprints=("relay.",),
                detect_prob=0.3,
                reblock_delay=15.0,
            ),
        ],
        name="border-block-probing",
    )


def _border_flap() -> FaultPlan:
    # Two overlapping campaigns: the second (probing, harsher) replaces
    # the first mid-window, so the first heal at t=180 must be a no-op —
    # the overlapping-window semantics the PR-10 heal guard pins, now
    # exercised end-to-end in a preset.
    return FaultPlan(
        [
            Censor(
                inside=CENSOR_INSIDE,
                at=40.0,
                heal_at=180.0,
                blocked=("svc0",),
                direction="outbound",
                fingerprints=("relay.",),
            ),
            Censor(
                inside=CENSOR_INSIDE,
                at=120.0,
                heal_at=280.0,
                blocked=("svc0", "svc1"),
                direction="both",
                fingerprints=("relay.",),
                detect_prob=0.5,
                reblock_delay=10.0,
            ),
        ],
        name="border-flap",
    )


#: Preset name -> plan factory.  Factories, not instances, so callers
#: can never mutate a shared plan.
PRESETS: Dict[str, Callable[[], FaultPlan]] = {
    "quiet": _quiet,
    "server-kill": _server_kill,
    "churn-storm": _churn_storm,
    "registration-partition": _registration_partition,
    "registration-partition-noheal": _registration_partition_noheal,
    "hub-partition": _hub_partition,
    "device-flap": _device_flap,
    "border-block": _border_block,
    "border-block-probing": _border_block_probing,
    "border-flap": _border_flap,
}


def preset_plan(name: str) -> FaultPlan:
    """Instantiate a preset by name; raises FaultError on unknown names."""
    factory = PRESETS.get(name)
    if factory is None:
        raise FaultError(
            f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        )
    return factory()


def load_plan(spec: str) -> FaultPlan:
    """Resolve a CLI ``--plan`` value: preset name or JSON file path."""
    if spec in PRESETS:
        return preset_plan(spec)
    if spec.endswith(".json"):
        return FaultPlan.from_file(spec)
    raise FaultError(
        f"--plan {spec!r} is neither a preset"
        f" ({', '.join(sorted(PRESETS))}) nor a .json plan file"
    )
