"""Command-line entry point: regenerate any paper artifact from a shell.

Usage::

    python -m repro table1            # Table 1 (project taxonomy)
    python -m repro table2            # Table 2 (storage systems)
    python -m repro table3            # Table 3 (capacity estimates)
    python -m repro zooko             # the Zooko's-triangle assessment
    python -m repro agenda            # the §5 research agenda
    python -m repro experiment E4     # any DESIGN.md experiment driver
    python -m repro sweep E8 --workers 4   # grid drivers, parallel + cached
    python -m repro sweep E8 --metrics     # plus an obs metrics summary
    python -m repro trace E4 --out trace.jsonl  # run under full tracing
    python -m repro lint              # determinism/invariant linter
    python -m repro chaos E4 --plan server-kill --seed 7  # fault injection
    python -m repro bench --suite micro --out BENCH.json  # perf benchmarks
    python -m repro list              # what can be run

Experiment runs use small default parameters (seconds of wall clock);
the benchmarks run the calibrated versions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.analysis import render_kv, render_table


def _table1() -> None:
    from repro.core import table1_rows

    print(render_table(table1_rows()))


def _table2() -> None:
    from repro.storage import table2_rows

    print(render_table(table2_rows()))


def _table3() -> None:
    from repro.analysis import run_feasibility

    result = run_feasibility()
    print(render_table(result["table3"]))
    print()
    print(render_kv({k: str(v) for k, v in result["sufficient"].items()},
                    title="Sufficient capacity among devices?"))


def _zooko() -> None:
    from repro.naming import triangle_table

    print(render_table(triangle_table()))


def _agenda() -> None:
    from repro.core import AGENDA

    rows = [
        {"difficulty": item.difficulty, "problem": item.title,
         "experiments": ", ".join(item.informed_by_experiments) or "-"}
        for item in AGENDA
    ]
    print(render_table(rows))


_EXPERIMENTS: Dict[str, Callable[[], object]] = {}


def _register_experiments() -> None:
    from repro.analysis import (
        naming_attack_curve,
        run_censorship_sweep,
        run_federation_availability,
        run_name_theft,
        run_naming_comparison,
        run_partial_federation_sweep,
        run_proof_economics,
        run_quality_vs_quantity,
        run_social_tradeoff,
        run_swarm_availability,
    )
    from repro.analysis.experiments import (
        run_endless_ledger,
        run_moderation_comparison,
        run_usenet_collapse,
    )

    _EXPERIMENTS.update({
        "E4": lambda: run_federation_availability(seed=7),
        "E4P": lambda: run_partial_federation_sweep(seed=7),
        "E5": lambda: run_social_tradeoff(seed=3),
        "E6A": lambda: run_naming_comparison(seed=2),
        "E6B": lambda: naming_attack_curve(),
        "E6C": lambda: [run_name_theft(seed=9)],
        "E7": lambda: run_proof_economics(seed=4),
        "E8": lambda: run_swarm_availability(seed=6),
        "E9": lambda: run_quality_vs_quantity(seed=2),
        "E10": lambda: run_moderation_comparison(seed=1),
        "E11": lambda: run_usenet_collapse(seed=3),
        "E12": lambda: run_endless_ledger(seed=3),
        "EC": lambda: run_censorship_sweep(seed=1),
    })


# Grid-shaped drivers the parallel runner can fan out (driver defaults;
# --seed overrides the base seed where the driver takes one).
_SWEEPABLE: Dict[str, Callable[..., object]] = {}

# The subset with a vectorized cohort-engine variant (--engine cohort);
# lambdas take (runner, seed, devices) with devices=None meaning the
# driver default.
_SWEEPABLE_COHORT: Dict[str, Callable[..., object]] = {}

# The subset with a space-partitioned shard-engine variant
# (--engine shard --shards K); lambdas take (runner, seed, shards).
_SWEEPABLE_SHARD: Dict[str, Callable[..., object]] = {}


def _register_sweeps() -> None:
    from repro.analysis import (
        run_censorship_sweep,
        run_federation_availability,
        run_feasibility,
        run_naming_comparison,
        run_partial_federation_sweep,
        run_proof_economics,
        run_quality_vs_quantity,
        run_social_tradeoff,
        run_swarm_availability,
    )
    from repro.analysis.experiments import run_usenet_collapse

    _SWEEPABLE.update({
        "E3": lambda runner, seed: run_feasibility(runner=runner)["table3"],
        "E4": lambda runner, seed: run_federation_availability(
            seed=seed, runner=runner),
        "E4P": lambda runner, seed: run_partial_federation_sweep(
            seed=seed, runner=runner),
        "E5": lambda runner, seed: run_social_tradeoff(
            seed=seed, runner=runner),
        "E6A": lambda runner, seed: run_naming_comparison(
            seed=seed, runner=runner),
        "E7": lambda runner, seed: run_proof_economics(
            seed=seed, runner=runner),
        "E8": lambda runner, seed: run_swarm_availability(
            seed=seed, runner=runner),
        "E9": lambda runner, seed: run_quality_vs_quantity(
            seed=seed, runner=runner),
        "E11": lambda runner, seed: run_usenet_collapse(
            seed=seed, runner=runner),
        "EC": lambda runner, seed: run_censorship_sweep(
            seed=seed, runner=runner),
    })

    from repro.analysis import (
        run_feasibility_cohort,
        run_federation_availability_cohort,
        run_quality_vs_quantity_cohort,
        run_social_tradeoff_cohort,
    )

    def _devices_kwargs(devices):
        return {} if devices is None else {"devices": devices}

    _SWEEPABLE_COHORT.update({
        "E3": lambda runner, seed, devices: run_feasibility_cohort(
            seed=seed, runner=runner, **_devices_kwargs(devices))["table3"],
        "E4": lambda runner, seed, devices: run_federation_availability_cohort(
            seed=seed, runner=runner, **_devices_kwargs(devices)),
        "E5": lambda runner, seed, devices: run_social_tradeoff_cohort(
            seed=seed, runner=runner, **_devices_kwargs(devices)),
        "E9": lambda runner, seed, devices: run_quality_vs_quantity_cohort(
            seed=seed, runner=runner, **_devices_kwargs(devices)),
    })

    from repro.analysis import (
        run_federation_availability_shard,
        run_registration_shard_smoke,
        run_social_tradeoff_shard,
    )

    _SWEEPABLE_SHARD.update({
        "E4": lambda runner, seed, shards: run_federation_availability_shard(
            seed=seed, shards=shards, runner=runner),
        "E5": lambda runner, seed, shards: run_social_tradeoff_shard(
            seed=seed, shards=shards, runner=runner),
        "E6S": lambda runner, seed, shards: run_registration_shard_smoke(
            seed=seed, shards=shards, runner=runner),
    })


def _sweep(args) -> int:
    from repro.analysis import SweepCache, SweepRunner

    _register_sweeps()
    if args.engine == "cohort":
        cohort_driver = _SWEEPABLE_COHORT.get(args.name.upper())
        if cohort_driver is None:
            print(f"no cohort engine for {args.name!r}; cohort-sweepable:"
                  f" {', '.join(sorted(_SWEEPABLE_COHORT))}", file=sys.stderr)
            return 2
        driver = lambda runner, seed: cohort_driver(runner, seed, args.devices)
        if args.shards is not None:
            print("--shards requires --engine shard", file=sys.stderr)
            return 2
    elif args.engine == "shard":
        shard_driver = _SWEEPABLE_SHARD.get(args.name.upper())
        if shard_driver is None:
            print(f"no shard engine for {args.name!r}; shard-sweepable:"
                  f" {', '.join(sorted(_SWEEPABLE_SHARD))}", file=sys.stderr)
            return 2
        shards = 2 if args.shards is None else args.shards
        if shards < 1:
            print(f"--shards must be >= 1, got {shards}", file=sys.stderr)
            return 2
        driver = lambda runner, seed: shard_driver(runner, seed, shards)
        if args.devices is not None:
            print("--devices requires --engine cohort", file=sys.stderr)
            return 2
    else:
        driver = _SWEEPABLE.get(args.name.upper())
        if driver is None:
            print(f"unknown sweep {args.name!r}; sweepable:"
                  f" {', '.join(sorted(_SWEEPABLE))}", file=sys.stderr)
            return 2
        if args.devices is not None:
            print("--devices requires --engine cohort", file=sys.stderr)
            return 2
        if args.shards is not None:
            print("--shards requires --engine shard", file=sys.stderr)
            return 2
    if args.chunksize < 1:
        print(f"--chunksize must be >= 1, got {args.chunksize}",
              file=sys.stderr)
        return 2
    metrics = None
    if args.metrics:
        from repro.obs import Metrics

        metrics = Metrics()
    cache = None if args.no_cache else SweepCache(args.cache_dir)
    runner = SweepRunner(workers=args.workers, cache=cache,
                         chunksize=args.chunksize, metrics=metrics)
    rows = driver(runner, args.seed)
    print(render_table(list(rows)))
    print()
    print(render_table(runner.stats.summary_rows()))
    if metrics is not None:
        from repro.obs import render_report_human

        print()
        print(render_report_human(metrics))
    if cache is not None:
        print(f"\ncache: {cache.cache_dir}"
              + (f" ({cache.corrupt_files} corrupt file(s) ignored)"
                 if cache.corrupt_files else ""))
    return 0


def _trace(args) -> int:
    from repro.obs.cli import run_trace

    _register_experiments()
    return run_trace(args, _EXPERIMENTS)


def _experiment(name: str) -> int:
    _register_experiments()
    runner = _EXPERIMENTS.get(name.upper())
    if runner is None:
        print(f"unknown experiment {name!r}; known:"
              f" {', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    rows = runner()
    print(render_table(list(rows)))
    return 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artifacts from 'The Barriers to Overthrowing"
                    " Internet Feudalism' (HotNets 2017).",
    )
    sub = parser.add_subparsers(dest="command")
    for name in ("table1", "table2", "table3", "zooko", "agenda", "verify", "list"):
        sub.add_parser(name)
    experiment = sub.add_parser("experiment")
    experiment.add_argument("name", help="experiment id, e.g. E4 or E6b")
    sweep_cmd = sub.add_parser(
        "sweep",
        help="run a grid driver through the parallel, cached runner",
    )
    sweep_cmd.add_argument("name", help="sweepable experiment id, e.g. E8")
    sweep_cmd.add_argument("--workers", type=int, default=1,
                           help="worker processes (default: 1, serial)")
    sweep_cmd.add_argument("--no-cache", action="store_true",
                           help="always recompute; do not touch the cache")
    sweep_cmd.add_argument("--cache-dir", default=None,
                           help="cache directory (default: $REPRO_CACHE_DIR"
                                " or .repro_cache)")
    sweep_cmd.add_argument("--seed", type=int, default=1,
                           help="base seed passed to the driver")
    sweep_cmd.add_argument("--chunksize", type=int, default=1,
                           help="grid points per worker dispatch")
    sweep_cmd.add_argument("--metrics", action="store_true",
                           help="record and print an obs metrics summary")
    sweep_cmd.add_argument("--engine", choices=("process", "cohort", "shard"),
                           default="process",
                           help="per-process event engine (default), the"
                                " vectorized cohort engine, or the"
                                " space-partitioned shard engine")
    sweep_cmd.add_argument("--devices", type=int, default=None,
                           help="cohort population size (cohort engine only;"
                                " default: driver-specific)")
    sweep_cmd.add_argument("--shards", type=int, default=None,
                           help="shard count K (shard engine only;"
                                " default: 2)")
    trace_cmd = sub.add_parser(
        "trace",
        help="run an experiment under tracing; write a JSONL trace",
    )
    from repro.obs.cli import add_trace_arguments

    add_trace_arguments(trace_cmd)
    lint_cmd = sub.add_parser(
        "lint",
        help="run the determinism & simulation-invariant linter",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint_cmd)
    chaos_cmd = sub.add_parser(
        "chaos",
        help="run an experiment scenario under a fault plan with"
             " invariant checking",
    )
    from repro.faults.cli import add_chaos_arguments

    add_chaos_arguments(chaos_cmd)
    bench_cmd = sub.add_parser(
        "bench",
        help="run the deterministic perf benchmarks; record or compare"
             " BENCH_*.json reports",
    )
    from repro.bench.cli import add_bench_arguments

    add_bench_arguments(bench_cmd)
    args = parser.parse_args(argv)

    if args.command == "table1":
        _table1()
    elif args.command == "table2":
        _table2()
    elif args.command == "table3":
        _table3()
    elif args.command == "zooko":
        _zooko()
    elif args.command == "agenda":
        _agenda()
    elif args.command == "experiment":
        return _experiment(args.name)
    elif args.command == "sweep":
        return _sweep(args)
    elif args.command == "trace":
        return _trace(args)
    elif args.command == "lint":
        from repro.lint.cli import run_lint

        return run_lint(args)
    elif args.command == "chaos":
        from repro.faults.cli import run_chaos_command

        return run_chaos_command(args)
    elif args.command == "bench":
        from repro.bench.cli import run_bench_command

        return run_bench_command(args)
    elif args.command == "verify":
        from repro.analysis import verify_reproduction

        rows = verify_reproduction()
        print(render_table(rows))
        if any(row["status"] != "PASS" for row in rows):
            return 3
        print("\nAll reproduction targets hold.")
    elif args.command == "list":
        _register_experiments()
        _register_sweeps()
        print("tables: table1 table2 table3")
        print("other:  zooko agenda verify lint")
        print(f"experiments: {' '.join(sorted(_EXPERIMENTS))}")
        print("traceable (python -m repro trace <id> --out t.jsonl):"
              f" {' '.join(sorted(_EXPERIMENTS))}")
        print(f"sweepable (python -m repro sweep <id> --workers N):"
              f" {' '.join(sorted(_SWEEPABLE))}")
        print("cohort engine (python -m repro sweep <id> --engine cohort"
              f" --devices N): {' '.join(sorted(_SWEEPABLE_COHORT))}")
        print("shard engine (python -m repro sweep <id> --engine shard"
              f" --shards K): {' '.join(sorted(_SWEEPABLE_SHARD))}")
        from repro.faults import PRESETS, SCENARIOS

        print("chaos (python -m repro chaos <id> --plan <preset>):"
              f" {' '.join(sorted(SCENARIOS))}")
        print(f"fault presets: {' '.join(sorted(PRESETS))}")
        from repro.bench import all_benchmarks

        print("bench (python -m repro bench --suite micro|macro):"
              f" {' '.join(b.name for b in all_benchmarks())}")
    else:
        parser.print_help()
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
