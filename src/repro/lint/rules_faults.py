"""FLT001: ad-hoc fault injection bypassing ``repro.faults``.

The chaos subsystem's reproducibility rests on every fault being part of
a declarative :class:`~repro.faults.FaultPlan`: plans are serialized
into reports, replayed byte-identically, and covered by the invariant
harness.  Code that pokes the transport's fault state directly —
assigning ``Network._partition``, swapping the ``_faults`` surface,
mutating ``loss_rate``/``drop_prob``/``corrupt_prob`` after
construction, or calling ``_set_fault_surface`` — creates faults no
plan records, so the run can neither be replayed from its report nor
checked by FLT-aware tooling.

Censorship campaigns are fault state too: assigning ``_censor``,
installing a surface via ``_set_censor_surface``, or editing a
``CensorSurface.blocklist`` in place (``.add``/``.discard``/...)
rewrites the censor's behavior behind the :class:`~repro.faults.Censor`
event that owns it — re-blocking that never happened in the plan, so
the reported censor cost model and detection log no longer describe
the run.

Exempt: the :mod:`repro.faults` package itself (the one sanctioned
caller) and ``repro/net/transport.py`` (where the state lives).  The
public ``Network.partition()`` / ``Network.heal()`` methods and
constructor parameters (``loss_rate=...``) remain fine everywhere —
the rule targets attribute *mutation*, not supported API.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import LintContext, Rule, register
from repro.lint.findings import Finding

__all__ = ["DirectFaultMutation"]

#: Transport fault-state attributes nobody outside the exempt modules
#: may assign to.
FAULT_STATE_ATTRS = frozenset({
    "_partition", "_faults", "_censor", "loss_rate", "drop_prob",
    "corrupt_prob", "latency_factor", "blocklist",
})

#: Internal surface installers only repro.faults may call.
FAULT_SETTERS = frozenset({"_set_fault_surface", "_set_censor_surface"})

#: Set methods that mutate a ``CensorSurface.blocklist`` in place.
BLOCKLIST_MUTATORS = frozenset({
    "add", "discard", "remove", "update", "clear", "pop",
    "difference_update", "intersection_update", "symmetric_difference_update",
})


def _is_exempt(ctx: LintContext) -> bool:
    return ctx.in_package("faults") or ctx.is_module("net", "transport.py")


@register
class DirectFaultMutation(Rule):
    rule_id = "FLT001"
    title = "direct mutation of transport fault state outside repro.faults"
    rationale = (
        "Faults must be declared as FaultPlan events so chaos runs are"
        " recorded, replayable, and invariant-checked; assigning"
        " Network._partition / _faults / _censor / loss_rate, calling"
        " _set_fault_surface / _set_censor_surface, or editing a censor"
        " blocklist in place injects a fault no plan knows about."
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _is_exempt(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in FAULT_STATE_ATTRS
                    ):
                        yield ctx.finding(
                            self.rule_id, node,
                            f"assignment to '{target.attr}' bypasses"
                            " repro.faults; express this fault as a"
                            " FaultPlan event (Partition/DropBurst/...)"
                            " driven by FaultInjector",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in FAULT_SETTERS:
                    yield ctx.finding(
                        self.rule_id, node,
                        f"call to '{func.attr}' outside repro.faults;"
                        " only FaultInjector may install a fault surface",
                    )
                elif (
                    func.attr in BLOCKLIST_MUTATORS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "blocklist"
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "in-place blocklist mutation outside repro.faults;"
                        " re-blocking must come from a Censor event's"
                        " detect_prob/reblock_delay so the campaign stays"
                        " replayable",
                    )
