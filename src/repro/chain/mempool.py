"""The mempool: pending transactions awaiting inclusion in a block."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.chain.ledger import LedgerRules, LedgerState, apply_transaction
from repro.chain.transaction import Transaction
from repro.errors import InvalidTransactionError

__all__ = ["Mempool"]


class Mempool:
    """Fee-prioritized pending-transaction pool.

    Shape-validates on admission; full contextual validation happens at
    block-assembly time against the then-current ledger state (a
    transaction valid when submitted can be invalidated by a conflicting
    one mined first — e.g. two registrations of the same name, the race
    the naming experiments exercise).
    """

    def __init__(self, max_size: int = 100_000):
        self._txs: Dict[str, Transaction] = {}
        self.max_size = max_size
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: str) -> bool:
        return txid in self._txs

    def add(self, tx: Transaction) -> bool:
        """Admit a transaction; returns False for duplicates/full pool."""
        if tx.is_coinbase:
            raise InvalidTransactionError("coinbase txs cannot enter the mempool")
        try:
            tx.validate_shape()
        except InvalidTransactionError:
            self.rejected += 1
            raise
        if tx.txid in self._txs:
            return False
        if len(self._txs) >= self.max_size:
            self.rejected += 1
            return False
        self._txs[tx.txid] = tx
        return True

    def add_all(self, txs: Iterable[Transaction]) -> int:
        count = 0
        for tx in txs:
            try:
                if self.add(tx):
                    count += 1
            except InvalidTransactionError:
                continue
        return count

    def remove(self, txid: str) -> None:
        self._txs.pop(txid, None)

    def remove_mined(self, txs: Iterable[Transaction]) -> None:
        for tx in txs:
            self._txs.pop(tx.txid, None)

    def pending(self) -> List[Transaction]:
        """All pending transactions, fee-descending then txid (stable)."""
        return sorted(
            self._txs.values(), key=lambda tx: (-tx.fee, tx.txid)
        )

    def select(
        self,
        base_state: LedgerState,
        height: int,
        rules: LedgerRules,
        max_txs: int = 1000,
    ) -> List[Transaction]:
        """Pick a valid, fee-maximal batch by greedy trial application.

        Applies candidates to a scratch copy of ``base_state`` so the batch
        is consistent as a whole (respects nonce ordering, balances, and
        name conflicts).  Transactions whose nonce is not yet current stay
        in the pool for later blocks.
        """
        scratch = base_state.copy()
        selected: List[Transaction] = []
        # Two passes by (sender, nonce) within fee order handle same-sender
        # chains: sort primarily by fee but keep nonce order per sender.
        candidates = sorted(
            self._txs.values(), key=lambda tx: (tx.sender, tx.nonce)
        )
        candidates.sort(key=lambda tx: -tx.fee)
        made_progress = True
        while made_progress and len(selected) < max_txs:
            made_progress = False
            for tx in list(candidates):
                if len(selected) >= max_txs:
                    break
                if scratch.next_nonce(tx.sender) != tx.nonce:
                    continue
                trial = scratch.copy()
                try:
                    apply_transaction(trial, tx, height, rules, fees_to=None)
                except InvalidTransactionError:
                    continue
                scratch = trial
                selected.append(tx)
                candidates.remove(tx)
                made_progress = True
        return selected

    def drop_invalid(
        self, base_state: LedgerState, height: int, rules: LedgerRules
    ) -> int:
        """Evict transactions that can never apply (stale nonce).

        Returns the eviction count.  Called after adopting a new tip.
        """
        stale = [
            txid
            for txid, tx in self._txs.items()
            if tx.nonce < base_state.next_nonce(tx.sender)
        ]
        for txid in stale:
            del self._txs[txid]
        return len(stale)
