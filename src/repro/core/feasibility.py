"""The infrastructure feasibility model — the paper's §4 and Table 3.

The paper's only quantitative result is a back-of-the-envelope comparison
of aggregate cloud capacity against the *unproductive* capacity of user
devices, across three resources: bandwidth, compute, and storage.  This
module encodes that calculation with every published assumption as an
explicit, overridable parameter, so the bench regenerates Table 3 exactly
and sensitivity sweeps show how robust the "sufficient capacity exists"
conclusion is.

Paper assumptions (all defaults below):

* Google: ~1 M servers (reports [19, 32]), extrapolated to ~100 M cores
  and 20 EB of storage today.
* Internet traffic: ~200 Tbps in 2016 (Cisco VNI [48]); Google carries a
  quarter of it [15] — so cloud aggregate = Google × 4.
* Devices in use: 2 B PCs, 2 B smartphones, 1 B tablets [11].
* Idle resources: PC = 2 cores + 100 GB free; phone = 1 core, negligible
  storage; tablet = 1 core + 10 GB.
* Phones/tablets contribute no *compute* (battery constraints).
* PC cores are discounted 8x against server cores (weaker CPUs + power
  management).
* Every device has 1 Mbps usable upstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Tuple

from repro.core.units import (
    EB,
    GB,
    MBPS,
    MILLION,
    format_bandwidth,
    format_cores,
    format_storage,
)
from repro.errors import FeasibilityError

__all__ = [
    "Capacity",
    "DeviceClassAssumptions",
    "CloudAssumptions",
    "FeasibilityModel",
    "PAPER_DEVICE_CLASSES",
    "PAPER_CLOUD",
    "paper_model",
]


@dataclass(frozen=True)
class Capacity:
    """An aggregate resource bundle in SI base units."""

    bandwidth_bps: float
    cores: float
    storage_bytes: float

    def __post_init__(self) -> None:
        for name, value in (
            ("bandwidth_bps", self.bandwidth_bps),
            ("cores", self.cores),
            ("storage_bytes", self.storage_bytes),
        ):
            if value < 0:
                raise FeasibilityError(f"{name} cannot be negative: {value}")

    def __add__(self, other: "Capacity") -> "Capacity":
        return Capacity(
            self.bandwidth_bps + other.bandwidth_bps,
            self.cores + other.cores,
            self.storage_bytes + other.storage_bytes,
        )

    def covers(self, demand: "Capacity") -> bool:
        """True when this capacity meets or exceeds ``demand`` on every axis."""
        return (
            self.bandwidth_bps >= demand.bandwidth_bps
            and self.cores >= demand.cores
            and self.storage_bytes >= demand.storage_bytes
        )

    def ratio_to(self, demand: "Capacity") -> Dict[str, float]:
        """Per-resource supply/demand ratios (inf where demand is zero)."""

        def _ratio(supply: float, need: float) -> float:
            return float("inf") if need == 0 else supply / need

        return {
            "bandwidth": _ratio(self.bandwidth_bps, demand.bandwidth_bps),
            "cores": _ratio(self.cores, demand.cores),
            "storage": _ratio(self.storage_bytes, demand.storage_bytes),
        }

    def formatted(self) -> Dict[str, str]:
        return {
            "bandwidth": format_bandwidth(self.bandwidth_bps),
            "cores": format_cores(self.cores),
            "storage": format_storage(self.storage_bytes),
        }


@dataclass(frozen=True)
class DeviceClassAssumptions:
    """Idle-resource assumptions for one class of user device."""

    name: str
    population: float
    unused_cores_per_device: float
    free_storage_bytes: float
    upstream_bps: float
    compute_usable: bool

    def __post_init__(self) -> None:
        if self.population < 0:
            raise FeasibilityError(f"negative population for {self.name!r}")
        if self.unused_cores_per_device < 0 or self.free_storage_bytes < 0:
            raise FeasibilityError(f"negative resources for {self.name!r}")


@dataclass(frozen=True)
class CloudAssumptions:
    """How the paper extrapolates global cloud capacity from Google's."""

    google_cores: float = 100 * MILLION
    google_storage_bytes: float = 20 * EB
    internet_traffic_bps: float = 200e12
    google_traffic_share: float = 0.25

    def __post_init__(self) -> None:
        if not 0 < self.google_traffic_share <= 1:
            raise FeasibilityError(
                f"traffic share must be in (0,1]: {self.google_traffic_share}"
            )

    @property
    def scale_factor(self) -> float:
        """Google-to-global multiplier (the paper's 'scale up by 4')."""
        return 1.0 / self.google_traffic_share


# The paper's device fleet ([11]: Statista consumer-electronics counts).
PAPER_DEVICE_CLASSES: Tuple[DeviceClassAssumptions, ...] = (
    DeviceClassAssumptions(
        name="personal_computer",
        population=2e9,
        unused_cores_per_device=2.0,
        free_storage_bytes=100 * GB,
        upstream_bps=1 * MBPS,
        compute_usable=True,
    ),
    DeviceClassAssumptions(
        name="smartphone",
        population=2e9,
        unused_cores_per_device=1.0,
        free_storage_bytes=0.0,  # "negligible free storage"
        upstream_bps=1 * MBPS,
        compute_usable=False,  # battery constraints
    ),
    DeviceClassAssumptions(
        name="tablet",
        population=1e9,
        unused_cores_per_device=1.0,
        free_storage_bytes=10 * GB,
        upstream_bps=1 * MBPS,
        compute_usable=False,
    ),
)

PAPER_CLOUD = CloudAssumptions()


@dataclass(frozen=True)
class FeasibilityModel:
    """The full §4 calculation, parameterized.

    ``core_discount`` divides usable device cores to convert them into
    server-equivalent cores (the paper's factor of 8 for weaker CPUs and
    power management).
    """

    cloud: CloudAssumptions = PAPER_CLOUD
    device_classes: Tuple[DeviceClassAssumptions, ...] = PAPER_DEVICE_CLASSES
    core_discount: float = 8.0

    def __post_init__(self) -> None:
        if self.core_discount <= 0:
            raise FeasibilityError(
                f"core_discount must be positive: {self.core_discount}"
            )

    # -- the two sides of Table 3 -------------------------------------------

    def cloud_capacity(self) -> Capacity:
        """Aggregate cloud-provider capacity (Google scaled by traffic share)."""
        scale = self.cloud.scale_factor
        return Capacity(
            bandwidth_bps=self.cloud.internet_traffic_bps,
            cores=self.cloud.google_cores * scale,
            storage_bytes=self.cloud.google_storage_bytes * scale,
        )

    def device_capacity(self) -> Capacity:
        """Aggregate unproductive user-device capacity."""
        bandwidth = sum(d.population * d.upstream_bps for d in self.device_classes)
        raw_cores = sum(
            d.population * d.unused_cores_per_device
            for d in self.device_classes
            if d.compute_usable
        )
        storage = sum(
            d.population * d.free_storage_bytes for d in self.device_classes
        )
        return Capacity(
            bandwidth_bps=bandwidth,
            cores=raw_cores / self.core_discount,
            storage_bytes=storage,
        )

    def sufficient(self) -> Dict[str, bool]:
        """Per-resource: do devices meet or exceed cloud capacity?

        The paper's conclusion — 'roughly speaking, there appears to be
        sufficient capacity among existing devices' — corresponds to all
        three being True under the default assumptions.
        """
        supply = self.device_capacity()
        demand = self.cloud_capacity()
        ratios = supply.ratio_to(demand)
        return {resource: ratio >= 1.0 for resource, ratio in ratios.items()}

    def table3(self) -> List[Dict[str, str]]:
        """Rows matching the paper's Table 3 exactly (formatted strings)."""
        cloud = self.cloud_capacity().formatted()
        devices = self.device_capacity().formatted()
        return [
            {
                "resource": "Bandwidth",
                "cloud": cloud["bandwidth"],
                "devices": devices["bandwidth"],
            },
            {"resource": "Cores", "cloud": cloud["cores"], "devices": devices["cores"]},
            {
                "resource": "Storage",
                "cloud": cloud["storage"],
                "devices": devices["storage"],
            },
        ]

    # -- sensitivity analysis ---------------------------------------------------

    def with_core_discount(self, discount: float) -> "FeasibilityModel":
        return replace(self, core_discount=discount)

    def with_upstream_bps(self, upstream_bps: float) -> "FeasibilityModel":
        """Set every device class's upstream (e.g. fibre-era assumptions)."""
        classes = tuple(
            replace(d, upstream_bps=upstream_bps) for d in self.device_classes
        )
        return replace(self, device_classes=classes)

    def with_populations_scaled(self, factor: float) -> "FeasibilityModel":
        if factor < 0:
            raise FeasibilityError(f"population factor cannot be negative: {factor}")
        classes = tuple(
            replace(d, population=d.population * factor)
            for d in self.device_classes
        )
        return replace(self, device_classes=classes)

    def sweep(
        self,
        make_variant: Callable[[float], "FeasibilityModel"],
        values: Iterable[float],
    ) -> List[Dict[str, object]]:
        """Evaluate supply/demand ratios across parameter variants."""
        rows = []
        for value in values:
            variant = make_variant(value)
            ratios = variant.device_capacity().ratio_to(variant.cloud_capacity())
            rows.append({"value": value, **ratios})
        return rows

    def breakeven_core_discount(self) -> float:
        """The core-discount factor at which device compute exactly matches
        cloud compute (above it, devices fall short)."""
        raw_cores = sum(
            d.population * d.unused_cores_per_device
            for d in self.device_classes
            if d.compute_usable
        )
        cloud_cores = self.cloud_capacity().cores
        if cloud_cores == 0:
            return float("inf")
        return raw_cores / cloud_cores


def paper_model() -> FeasibilityModel:
    """The model with every assumption exactly as published."""
    return FeasibilityModel()
