"""Churn: nodes joining, leaving, and permanently departing.

Availability of device-grade infrastructure is modeled as an alternating
renewal process: each node alternates exponentially-distributed online and
offline periods.  A profile may also include *attrition* — a probability
that a node never comes back after going offline (the paper's §3.2 lists
"node attrition" as a connectedness threat).

The stationary availability of the alternating renewal process is
``mean_uptime / (mean_uptime + mean_downtime)``, which tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional

from repro.errors import NetworkError
from repro.net.node import Node, NodeClass
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import for annotations only
    import numpy

    from repro.sim.cohort import DeviceCohort

__all__ = [
    "ChurnProfile",
    "ChurnProcess",
    "attach_churn",
    "cohort_from_profile",
    "profile_for_class",
]


@dataclass(frozen=True)
class ChurnProfile:
    """Parameters of the on/off renewal process, in seconds.

    ``attrition`` is the per-departure probability of never returning.
    """

    mean_uptime: float
    mean_downtime: float
    attrition: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise NetworkError(
                f"churn profile needs positive means, got {self.mean_uptime},"
                f" {self.mean_downtime}"
            )
        if not 0 <= self.attrition <= 1:
            raise NetworkError(f"attrition must be in [0,1]: {self.attrition}")

    @property
    def availability(self) -> float:
        """Stationary availability of the on/off process (ignoring attrition)."""
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)


# Profiles roughly matching the infrastructure classes of the paper's §4/§5.2.
# Datacenter: ~four nines.  Home server: residential power/net interruptions.
# Personal computer: on during the workday.  Phone/tablet: short app sessions.
DATACENTER_PROFILE = ChurnProfile(
    mean_uptime=30 * 86400.0, mean_downtime=300.0, attrition=0.0, name="datacenter"
)
HOME_SERVER_PROFILE = ChurnProfile(
    mean_uptime=7 * 86400.0, mean_downtime=3600.0, attrition=0.001, name="home_server"
)
PERSONAL_COMPUTER_PROFILE = ChurnProfile(
    mean_uptime=8 * 3600.0, mean_downtime=16 * 3600.0, attrition=0.002,
    name="personal_computer",
)
SMARTPHONE_PROFILE = ChurnProfile(
    mean_uptime=1800.0, mean_downtime=5400.0, attrition=0.005, name="smartphone"
)
TABLET_PROFILE = ChurnProfile(
    mean_uptime=3600.0, mean_downtime=3 * 3600.0, attrition=0.005, name="tablet"
)

_CLASS_PROFILES = {
    NodeClass.DATACENTER: DATACENTER_PROFILE,
    NodeClass.HOME_SERVER: HOME_SERVER_PROFILE,
    NodeClass.PERSONAL_COMPUTER: PERSONAL_COMPUTER_PROFILE,
    NodeClass.SMARTPHONE: SMARTPHONE_PROFILE,
    NodeClass.TABLET: TABLET_PROFILE,
}


def profile_for_class(node_class: str) -> ChurnProfile:
    """Default churn profile for a hardware class."""
    profile = _CLASS_PROFILES.get(node_class)
    if profile is None:
        raise NetworkError(f"no churn profile for class {node_class!r}")
    return profile


class ChurnProcess:
    """Drives one node's on/off behaviour on the simulator.

    The process is deterministic given the RNG stream
    ``churn.<node_id>``.  Call :meth:`start` once; :meth:`stop` freezes the
    node in its current state.

    Fault injection (``Crash``/restart events from a
    :class:`~repro.faults.FaultPlan`) layers on top of the renewal
    process: :meth:`crash` forces the node offline and *suspends* the
    renewal clock (cancelling the pending flip, so churn cannot revive a
    crashed node), and :meth:`restore` brings it back online and
    restarts the clock.  Both transitions leave the RNG stream untouched
    — the dwell sequence after a restore continues exactly where an
    uncrashed run's stream would have, keeping chaos runs replayable.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams,
        node: Node,
        profile: ChurnProfile,
    ):
        self.sim = sim
        self.node = node
        self.profile = profile
        self._rng = streams.stream(f"churn.{node.node_id}")
        self._stopped = False
        self._crashed = False
        self._pending = None  # handle of the next scheduled flip
        self.departed = False

    def start(self) -> None:
        """Schedule the first transition from the node's current state."""
        self._schedule_next()

    def stop(self) -> None:
        self._stopped = True

    @property
    def crashed(self) -> bool:
        """Whether the node is held offline by an injected crash."""
        return self._crashed

    def crash(self) -> None:
        """Force the node offline and suspend the renewal process.

        Idempotent; a crashed node stays down (regardless of scheduled
        churn transitions) until :meth:`restore`.
        """
        if self._crashed:
            return
        self._crashed = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.node.set_online(False, self.sim.now)

    def restore(self) -> None:
        """Bring a crashed node back online and resume the renewal clock.

        A no-op unless crashed; a node that permanently departed (via
        attrition) or whose process was stopped stays down.
        """
        if not self._crashed:
            return
        self._crashed = False
        if self._stopped or self.departed:
            return
        self.node.set_online(True, self.sim.now)
        self._schedule_next()

    def _schedule_next(self) -> None:
        if self._stopped or self.departed or self._crashed:
            return
        if self.node.online:
            dwell = self._rng.expovariate(1.0 / self.profile.mean_uptime)
        else:
            dwell = self._rng.expovariate(1.0 / self.profile.mean_downtime)
        self._pending = self.sim.schedule(dwell, self._flip)

    def _flip(self) -> None:
        self._pending = None
        if self._stopped or self.departed or self._crashed:
            return
        going_offline = self.node.online
        self.node.set_online(not self.node.online, self.sim.now)
        if going_offline and self._rng.random() < self.profile.attrition:
            self.departed = True  # never returns
            return
        self._schedule_next()


def attach_churn(
    sim: Simulator,
    streams: RngStreams,
    nodes: Iterable[Node],
    profile: Optional[ChurnProfile] = None,
) -> List[ChurnProcess]:
    """Attach and start a churn process per node.

    With ``profile=None`` each node gets the default profile for its
    hardware class, which is how mixed-fleet experiments are set up.
    """
    processes = []
    for node in nodes:
        node_profile = profile or profile_for_class(node.node_class)
        process = ChurnProcess(sim, streams, node, node_profile)
        process.start()
        processes.append(process)
    return processes


def cohort_from_profile(
    name: str,
    profile: ChurnProfile,
    size: int,
    generator: "numpy.random.Generator",
) -> "DeviceCohort":
    """A :class:`~repro.sim.cohort.DeviceCohort` driven by ``profile``.

    The vectorized counterpart of :func:`attach_churn`: instead of one
    :class:`ChurnProcess` heap event per node, all ``size`` devices share
    one set of arrays and one numpy generator (build it with
    :func:`repro.sim.rng.seeded_generator`).  Aggregates agree with the
    per-process path within the tolerance contract of ``docs/SCALING.md``.
    """
    from repro.sim.cohort import DeviceCohort

    return DeviceCohort(
        name,
        size,
        mean_uptime=profile.mean_uptime,
        mean_downtime=profile.mean_downtime,
        attrition=profile.attrition,
        generator=generator,
    )
