"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "200 Tbps" in out and "5000 Tbps" in out
        assert "210 EB" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Namecoin" in out and "ZeroNet" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Filecoin" in out and "Bitswap" in out

    def test_zooko(self, capsys):
        assert main(["zooko"]) == 0
        out = capsys.readouterr().out
        assert "blockchain" in out

    def test_agenda(self, capsys):
        assert main(["agenda"]) == 0
        out = capsys.readouterr().out
        assert "feudalism" in out.lower()

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E4" in out and "E12" in out

    def test_experiment_e6b_fast(self, capsys):
        assert main(["experiment", "E6b"]) == 0
        out = capsys.readouterr().out
        assert "attacker_share" in out

    def test_experiment_e10_fast(self, capsys):
        assert main(["experiment", "e10"]) == 0
        out = capsys.readouterr().out
        assert "spam_pass_rate" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "Regenerate artifacts" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_cold_then_warm_cache(self, capsys, tmp_path):
        assert main(["sweep", "E4", "--cache-dir", str(tmp_path)]) == 0
        cold = capsys.readouterr().out
        assert "read_availability" in cold
        assert "cache_misses" in cold

        assert main(["sweep", "E4", "--cache-dir", str(tmp_path)]) == 0
        warm = capsys.readouterr().out
        # Zero recomputation on the warm run, and identical rows.
        warm_summary = warm.splitlines()
        assert any(
            line.startswith("3      3           0")
            for line in warm_summary
        ), f"expected 3 hits / 0 misses in:\n{warm}"
        assert cold.split("\n\n")[0] == warm.split("\n\n")[0]

    def test_sweep_parallel_workers(self, capsys, tmp_path):
        assert main([
            "sweep", "E4", "--workers", "2", "--no-cache",
            "--cache-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "replicated_failover" in out

    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "E99"]) == 2
        assert "unknown sweep" in capsys.readouterr().err

    def test_list_mentions_sweepable(self, capsys):
        assert main(["list"]) == 0
        assert "sweepable" in capsys.readouterr().out


class TestShardEngineCommand:
    def test_sweep_e4_on_shard_engine(self, capsys):
        assert main([
            "sweep", "E4", "--engine", "shard", "--shards", "4",
            "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "replicated_failover" in out
        assert "messages_crossed" in out

    def test_shard_count_defaults_to_two(self, capsys):
        assert main([
            "sweep", "E6S", "--engine", "shard", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "registration-partition" in out

    def test_shards_flag_requires_shard_engine(self, capsys):
        assert main(["sweep", "E4", "--shards", "2", "--no-cache"]) == 2
        assert "--shards requires --engine shard" in (
            capsys.readouterr().err
        )

    def test_invalid_shard_count_rejected(self, capsys):
        assert main([
            "sweep", "E4", "--engine", "shard", "--shards", "0",
            "--no-cache",
        ]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_unsharded_experiment_rejected(self, capsys):
        assert main([
            "sweep", "E8", "--engine", "shard", "--no-cache",
        ]) == 2
        assert "no shard engine" in capsys.readouterr().err

    def test_list_mentions_shard_engine(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "--engine shard" in out
        assert "E6S" in out


class TestVerifyCommand:
    def test_verify_passes_and_exits_zero(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out
        assert "All reproduction targets hold." in out
