"""E9 — infrastructure quality vs quantity (§5.2).

Table 3 says device capacity is sufficient in aggregate; §5.2 warns the
quality is far poorer.  The bench runs the same replicated-storage
workload on datacenter-grade and device-grade churn and reports the
replication factor and repair traffic each needs.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table, run_quality_vs_quantity


def test_bench_quality_vs_quantity(benchmark):
    rows = benchmark.pedantic(
        run_quality_vs_quantity,
        kwargs={"seed": 2, "replication_factors": (1, 2, 3, 4),
                "n_probes": 30},
        rounds=1, iterations=1,
    )
    emit("E9 — retrieval availability and repair traffic by infrastructure"
         " grade", render_table(rows))
    table = {
        (row["infrastructure"], row["replication_factor"]): row
        for row in rows
    }
    # Datacenter-grade: available at R=1 with zero repair traffic.
    assert table[("datacenter", 1)]["retrieval_availability"] == 1.0
    assert table[("datacenter", 1)]["repair_bytes"] == 0
    # Device-grade at R=1 loses availability...
    assert table[("device", 1)]["retrieval_availability"] < 1.0
    # ...recovers it with enough replication...
    assert table[("device", 3)]["retrieval_availability"] >= 0.95
    # ...and pays continuously for repair, increasing with R.
    assert table[("device", 3)]["repair_bytes"] > 0
    assert (
        table[("device", 4)]["repair_bytes"]
        >= table[("device", 2)]["repair_bytes"]
    )
    # Datacenter-grade never pays meaningful repair traffic at any R.
    for factor in (1, 2, 3, 4):
        assert (
            table[("datacenter", factor)]["repair_bytes"]
            <= table[("device", 3)]["repair_bytes"]
        )


def test_bench_erasure_vs_replication_under_churn(benchmark):
    """E9 extension: the same durability problem solved two ways.

    Replication (R=3) vs Reed-Solomon (4, 2) on identical device-grade
    churn: erasure stores half the bytes for the same 2-failure
    tolerance, at the cost of decode-based repair.
    """
    from repro.net import ChurnProfile, ConstantLatency, Network, attach_churn
    from repro.sim import RngStreams, Simulator
    from repro.storage import (
        ErasureBlobStore,
        ReplicatedBlobStore,
        StorageProvider,
        make_random_blob,
    )

    def compare():
        profile = ChurnProfile(mean_uptime=400.0, mean_downtime=200.0)
        rows = []
        for scheme in ("replication_r3", "erasure_4_2"):
            sim = Simulator()
            streams = RngStreams(17)
            network = Network(sim, streams, latency=ConstantLatency(0.01))
            providers = [StorageProvider(network, f"p{i}") for i in range(12)]
            attach_churn(sim, streams, [p.node for p in providers], profile)
            blob = make_random_blob(streams, 8 * 1024, chunk_size=1024)
            outcome = {"ok": 0, "attempts": 0}

            if scheme == "replication_r3":
                store = ReplicatedBlobStore(
                    network, providers, streams,
                    replication_factor=3, check_interval=30.0,
                )

                def scenario():
                    yield from store.store(blob)
                    store.start_repair()
                    for _ in range(15):
                        yield 150.0
                        outcome["attempts"] += 1
                        try:
                            yield from store.retrieve(blob.merkle_root)
                            outcome["ok"] += 1
                        except Exception:
                            pass
                    store.stop_repair()

                sim.run_process(scenario(), until=20_000.0)
                stored = 3 * blob.size_bytes
                repair = store.repair_bytes()
            else:
                store = ErasureBlobStore(
                    network, providers, streams, k=4, m=2, check_interval=30.0,
                )

                def scenario():
                    yield from store.store(blob.to_bytes(), "doc")
                    store.start_repair()
                    for _ in range(15):
                        yield 150.0
                        outcome["attempts"] += 1
                        try:
                            yield from store.retrieve("doc")
                            outcome["ok"] += 1
                        except Exception:
                            pass
                    store.stop_repair()

                sim.run_process(scenario(), until=20_000.0)
                stored = store.stored_bytes("doc")
                repair = store.repair_bytes()

            rows.append({
                "scheme": scheme,
                "stored_bytes": stored,
                "availability": round(outcome["ok"] / outcome["attempts"], 3),
                "repair_bytes": repair,
            })
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit("E9 extension — replication vs erasure coding on device churn",
         render_table(rows))
    replication = next(r for r in rows if r["scheme"] == "replication_r3")
    erasure = next(r for r in rows if r["scheme"] == "erasure_4_2")
    # Same 2-failure tolerance at roughly half the stored bytes.
    assert erasure["stored_bytes"] < 0.6 * replication["stored_bytes"]
    # Both keep the blob usable on this churn.
    assert replication["availability"] >= 0.85
    assert erasure["availability"] >= 0.85
