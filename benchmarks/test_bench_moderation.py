"""Extension bench — abuse prevention vs expression (§3.2).

The paper: "moderation is often in direct tension with freedom of
expression", centralized norms are dictated by operators, and federations
let each instance set its own rules.  One spam-laced traffic mix runs
through four regimes; the tension shows up as spam-pass-rate vs
collateral-block-rate.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.analysis.experiments import run_moderation_comparison


def test_bench_moderation(benchmark):
    rows = benchmark(run_moderation_comparison, 5)
    emit("Moderation regimes — spam pass rate vs collateral censorship",
         render_table(rows))
    by_regime = {row["regime"]: row for row in rows}

    none = by_regime["none (pure P2P)"]
    keyword = by_regime["central keyword filter"]
    reputation = by_regime["report-driven reputation"]
    federated = by_regime["per-instance federation"]

    # No moderation: all spam delivered, nothing censored.
    assert none["spam_pass_rate"] == 1.0
    assert none["collateral_block_rate"] == 0.0
    # Central keyword filter kills the spam AND some legitimate speech —
    # the moderation/expression tension, measured.
    assert keyword["spam_pass_rate"] == 0.0
    assert keyword["collateral_block_rate"] > 0.0
    # Reputation moderation lets a few spams through (detection lag) but
    # blocks no legitimate speech.
    assert 0.0 < reputation["spam_pass_rate"] < 0.2
    assert reputation["collateral_block_rate"] == 0.0
    # Federation-wide reachability: content blocked on strict instances
    # remains reachable on lax ones (no global censorship).
    assert federated["spam_pass_rate"] == 1.0
