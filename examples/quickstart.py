#!/usr/bin/env python3
"""Quickstart: a five-minute tour of the feudalsim library.

Reproduces the paper's headline artifact (Table 3), then runs one tiny
instance of each simulated subsystem the paper surveys: blockchain naming,
federated messaging, the storage marketplace, and a visitor-seeded web
app.

Run:  python examples/quickstart.py
"""

from repro.analysis import render_kv, render_table, run_feasibility
from repro.core import paper_model
from repro.crypto import generate_keypair
from repro.groupcomm import ReplicatedFederation
from repro.naming import CentralizedPKI
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import ProofKind, StorageMarketplace, StorageProvider, make_random_blob
from repro.webapps import HostlessSite, SiteSwarm, Tracker


def feasibility() -> None:
    print("\n--- 1. The paper's Table 3: is device capacity sufficient? ---")
    result = run_feasibility(paper_model())
    print(render_table(result["table3"]))
    print(render_kv({k: v for k, v in result["sufficient"].items()},
                    title="\nSufficient?"))


def naming() -> None:
    print("\n--- 2. Naming: registering alice.id with a centralized PKI ---")
    sim = Simulator()
    network = Network(sim, RngStreams(1), latency=ConstantLatency(0.05))
    network.create_node("laptop")
    pki = CentralizedPKI(network)
    alice = generate_keypair("quickstart-alice")

    def scenario():
        receipt = yield from pki.register(
            alice, "alice.id", {"pk": alice.public_key[:16]}, client="laptop"
        )
        resolution = yield from pki.resolve("alice.id", client="laptop")
        return receipt, resolution

    receipt, resolution = sim.run_process(scenario())
    print(f"registered in {receipt.latency * 1000:.0f} ms;"
          f" resolves to owner {resolution.owner_public_key[:16]}...")
    print("(the blockchain backend takes minutes; see"
          " examples/decentralized_naming.py)")


def messaging() -> None:
    print("\n--- 3. Group communication: a two-server Matrix-style room ---")
    sim = Simulator()
    streams = RngStreams(2)
    network = Network(sim, streams, latency=ConstantLatency(0.02))
    federation = ReplicatedFederation(
        network, ["srv0", "srv1"], streams, gossip_interval=2.0,
        allow_failover=True,
    )
    federation.add_user("alice", home="srv0")
    federation.add_user("bob", home="srv1")
    federation.create_room("lobby", ["alice", "bob"])
    federation.start_replication()

    def scenario():
        yield from federation.post("alice", "lobby", "hello from alice")
        yield 30.0  # let replication converge
        network.node("srv0").set_online(False, sim.now)  # alice's home dies
        messages = yield from federation.fetch("alice", "lobby")
        federation.stop_replication()
        return messages

    messages = sim.run_process(scenario(), until=10_000.0)
    print(f"alice still reads {len(messages)} message(s) after her home"
          " server died (replication + failover)")


def storage() -> None:
    print("\n--- 4. Storage: one audited deal on the marketplace ---")
    sim = Simulator()
    streams = RngStreams(3)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    market = StorageMarketplace(network, streams)
    market.register_provider(StorageProvider(network, "provider"))
    network.create_node("consumer")
    market.ledger.credit("consumer", 100.0)
    blob = make_random_blob(streams, 16 * 1024, chunk_size=1024)

    def scenario():
        deal = yield from market.make_deal(
            "consumer", blob, epochs=3, proof_kind=ProofKind.STORAGE,
            price_per_epoch=1.0,
        )
        for _ in range(3):
            yield from market.run_epoch()
        return deal

    deal = sim.run_process(scenario())
    print(f"deal {deal.deal_id}: state={deal.state},"
          f" provider earned {market.provider_earnings('provider'):.1f}"
          " after 3 audited epochs")


def webapps() -> None:
    print("\n--- 5. Web apps: a hostless site served by its visitors ---")
    sim = Simulator()
    streams = RngStreams(4)
    network = Network(sim, streams, latency=ConstantLatency(0.01))
    swarm = SiteSwarm(network, Tracker(network))
    site = HostlessSite("quickstart-blog")
    site.write_file("index.html", b"<h1>no server required</h1>")
    bundle = site.publish()

    def scenario():
        yield from swarm.seed("author", bundle)
        fetched = yield from swarm.visit("visitor1", bundle.manifest.site_address)
        yield from swarm.seed("visitor1", fetched)
        network.node("author").set_online(False, sim.now)
        again = yield from swarm.visit("visitor2", bundle.manifest.site_address)
        return again

    fetched = sim.run_process(scenario())
    print(f"site {bundle.manifest.site_address[:16]}... survives its author:"
          f" visitor2 fetched {len(fetched.files)} verified file(s) from"
          " visitor1's seed")


if __name__ == "__main__":
    feasibility()
    naming()
    messaging()
    storage()
    webapps()
    print("\nDone. See DESIGN.md for the full experiment index and"
          " benchmarks/ for every table and figure.")
