"""Named metrics: counters, histograms, and last-value gauges.

One :class:`Metrics` registry is threaded through all three hot layers
(simulation engine, network transport, sweep runner) so a single run —
or a whole sweep — lands in one mergeable, JSON-able snapshot.

Design constraints, in priority order:

* **Zero cost when disabled** — instrumented code holds ``None`` instead
  of a registry and guards every record with one ``is not None`` check;
  nothing here runs at all.
* **Bounded memory when enabled** — :class:`Histogram` keeps streaming
  aggregates (count/sum/min/max) plus power-of-two bucket counts, and
  retains raw samples only up to a fixed cap, so tracing a
  multi-million-event simulation cannot exhaust memory.
* **Deterministic output** — snapshots sort every name; nothing reads
  the host clock or ``id()``.
* **Order-independent merges** — folding k histograms together yields
  the same :meth:`Histogram.summary` for every merge order: exact
  aggregates are commutative, and the moment raw retention cannot hold
  *every* observation the percentiles switch to the power-of-two bucket
  sketch (a pure count map, merged by addition) instead of answering
  from whichever raw prefix happened to survive.  ``summary()`` labels
  the provenance via ``percentile_source`` and flags lossy merges with
  ``merged_truncated``, so an estimated percentile is never silently
  reported as exact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["Histogram", "Metrics", "RAW_SAMPLE_CAP"]

#: Raw observations a histogram retains verbatim (streaming aggregates
#: keep counting past the cap; ``truncated`` flags the overflow).
RAW_SAMPLE_CAP = 4096


class Histogram:
    """Streaming distribution of observed values.

    Exact count/sum/min/max always; raw values up to
    :data:`RAW_SAMPLE_CAP` for percentile queries on small samples;
    power-of-two magnitude buckets for a shape sketch at any scale.

    Percentiles are exact (nearest-rank over the full raw sample) while
    every observation is retained, and switch to a bucket-sketch
    estimate — deterministic and merge-order-independent — once raw
    retention has overflowed (:attr:`truncated`).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_raw", "_buckets",
                 "_merged_truncated")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._raw: List[float] = []
        self._buckets: Dict[int, int] = {}
        self._merged_truncated = False

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._raw) < RAW_SAMPLE_CAP:
            self._raw.append(value)
        bucket = _bucket_of(value)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of an empty histogram")
        # Clamp: float summation can drift a few ULPs outside [min, max].
        return min(max(self.total / self.count, self.minimum), self.maximum)

    @property
    def truncated(self) -> bool:
        """True when raw retention overflowed (aggregates stay exact)."""
        return self.count > len(self._raw)

    @property
    def merged_truncated(self) -> bool:
        """True when a merge could not retain every raw observation.

        Set when either merge side was already truncated or the combined
        raw samples overflowed :data:`RAW_SAMPLE_CAP`; from then on
        percentiles come from the bucket sketch, never from the
        (necessarily partial) raw retention.
        """
        return self._merged_truncated

    @property
    def percentile_source(self) -> str:
        """``"raw"`` (exact) or ``"buckets"`` (sketch estimate)."""
        return "buckets" if self.truncated else "raw"

    def values(self) -> List[float]:
        """Retained raw observations (all of them unless ``truncated``)."""
        return list(self._raw)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile.

        Exact over the full raw sample while every observation is
        retained; once :attr:`truncated`, answers with a bucket-sketch
        estimate (see :meth:`percentile_source`) instead of silently
        using whatever raw prefix survived.
        """
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        if self.truncated:
            return self._bucket_percentile(q)
        ordered = sorted(self._raw)
        rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def _bucket_percentile(self, q: float) -> float:
        """Estimate a percentile from the power-of-two bucket counts.

        Buckets are scanned in ascending value order (bucket index order)
        to the one containing the nearest rank; the result interpolates
        linearly inside that bucket's range and is clamped into
        ``[minimum, maximum]``.  Depends only on the bucket count map and
        the exact aggregates, both of which merge commutatively — so the
        estimate is identical for every merge order.
        """
        rank = max(0, min(self.count - 1, math.ceil(q * self.count) - 1))
        seen = 0
        for bucket in sorted(self._buckets):
            n = self._buckets[bucket]
            if rank < seen + n:
                lo, hi = _bucket_bounds(bucket)
                span = hi - lo
                if not math.isfinite(span):
                    estimate = lo if math.isfinite(lo) else 0.0
                else:
                    estimate = lo + ((rank - seen) + 0.5) / n * span
                return min(max(estimate, self.minimum), self.maximum)
            seen += n
        # Unreachable unless bucket counts disagree with ``count``.
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram, order-independently.

        Aggregates and bucket counts add exactly.  Raw samples are kept
        in full while the combination fits :data:`RAW_SAMPLE_CAP`;
        otherwise each side contributes a deterministic, proportional
        stride-sample (for :meth:`values` inspection only) and
        :attr:`merged_truncated` is set — reported percentiles then come
        from the bucket sketch, which does not depend on merge order.
        """
        lossy = (
            self.truncated
            or other.truncated
            or len(self._raw) + len(other._raw) > RAW_SAMPLE_CAP
        )
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        if lossy:
            total_raw = len(self._raw) + len(other._raw)
            if total_raw > RAW_SAMPLE_CAP:
                quota_other = min(
                    len(other._raw),
                    round(RAW_SAMPLE_CAP * len(other._raw) / total_raw),
                )
                quota_self = min(
                    len(self._raw), RAW_SAMPLE_CAP - quota_other
                )
                self._raw = _stride_sample(self._raw, quota_self)
                self._raw.extend(_stride_sample(other._raw, quota_other))
            else:
                self._raw.extend(other._raw)
            self._merged_truncated = True
        else:
            self._raw.extend(other._raw)
        self._merged_truncated = self._merged_truncated or other._merged_truncated
        for bucket, n in other._buckets.items():
            self._buckets[bucket] = self._buckets.get(bucket, 0) + n

    def summary(self) -> Dict[str, Any]:
        if self.count == 0:
            return {"count": 0}
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "percentile_source": self.percentile_source,
        }
        if self.truncated:
            out["truncated"] = True
        if self._merged_truncated:
            out["merged_truncated"] = True
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(count={self.count})"


def _bucket_of(value: float) -> int:
    """Power-of-two magnitude bucket index; 0 holds [0, 1), negatives
    and non-finite values get sentinel buckets."""
    if value != value or value in (math.inf, -math.inf):
        return -(10 ** 6)
    if value < 0:
        return -1 - _bucket_of(-value)
    if value < 1.0:
        return 0
    return 1 + int(math.log2(value))


#: The sentinel bucket holding NaN/inf observations.
_NONFINITE_BUCKET = -(10 ** 6)


def _bucket_bounds(bucket: int) -> Tuple[float, float]:
    """The half-open value range ``[lo, hi)`` a bucket index covers.

    Mirrors :func:`_bucket_of`: bucket 0 is ``[0, 1)``, bucket ``b >= 1``
    is ``[2**(b-1), 2**b)``, and negative buckets are the mirrored
    negative ranges.  Exponents beyond float range degrade to ``inf``
    (callers clamp into ``[minimum, maximum]`` anyway).
    """
    if bucket == _NONFINITE_BUCKET:
        return -math.inf, math.inf
    if bucket == 0:
        return 0.0, 1.0
    if bucket >= 1:
        lo = 2.0 ** (bucket - 1) if bucket <= 1024 else math.inf
        hi = 2.0 ** bucket if bucket <= 1023 else math.inf
        return lo, hi
    lo, hi = _bucket_bounds(-1 - bucket)
    return -hi, -lo


def _stride_sample(values: List[float], k: int) -> List[float]:
    """``k`` evenly spaced elements of ``values`` (all of them if
    ``k >= len``); purely positional, so deterministic."""
    n = len(values)
    if k >= n:
        return list(values)
    if k <= 0:
        return []
    step = n / k
    return [values[min(n - 1, int((i + 0.5) * step))] for i in range(k)]


class Metrics:
    """The registry: flat ``inc``/``observe``/``set_gauge`` interface.

    Names are dotted strings, conventionally ``<layer>.<metric>``
    (``sim.events_fired``, ``net.rpc_latency_s``, ``sweep.cache_hits``).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, float] = {}

    # -- recording -------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge for deltas")
        self._counters[name] = self._counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    # -- reading ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    def names(self) -> Iterator[Tuple[str, str]]:
        """All registered ``(kind, name)`` pairs, sorted."""
        for name in sorted(self._counters):
            yield "counter", name
        for name in sorted(self._gauges):
            yield "gauge", name
        for name in sorted(self._histograms):
            yield "histogram", name

    def merge(self, other: "Metrics") -> None:
        """Fold another registry into this one (sweep fan-in)."""
        for name, amount in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + amount
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, hist in other._histograms.items():
            self.histogram(name).merge(hist)

    def snapshot(self) -> Dict[str, Any]:
        """A sorted, JSON-able dump of everything recorded."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].summary()
                for k in sorted(self._histograms)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Metrics(counters={len(self._counters)},"
            f" histograms={len(self._histograms)},"
            f" gauges={len(self._gauges)})"
        )
