"""Sweep-runner observability: per-task records, cache counters, gauges.

Also covers the acceptance path: a metrics-enabled sweep produces a
summary (and, with a tracer, ``sweep_task`` trace events) that downstream
tooling can consume.
"""

import json

import pytest

from repro.analysis import SweepCache, SweepRunner
from repro.obs import Metrics, Tracer, observe, render_report_json


def _square(x, seed=0):
    return {"x": x, "y": x * x}


def _explode(x, seed=0):
    raise ValueError(f"bad point {x}")


class TestRunnerMetrics:
    def test_cache_hit_miss_counters(self, tmp_path):
        configs = [{"x": 1}, {"x": 2}, {"x": 3}]

        cold_metrics = Metrics()
        cold = SweepRunner(cache=SweepCache(str(tmp_path)),
                           metrics=cold_metrics)
        cold.run("sq", _square, configs)
        assert cold_metrics.counter("sweep.cache_misses") == 3
        assert cold_metrics.counter("sweep.cache_hits") == 0
        assert cold_metrics.histogram("sweep.task_wall_s").count == 3

        warm_metrics = Metrics()
        warm = SweepRunner(cache=SweepCache(str(tmp_path)),
                           metrics=warm_metrics)
        warm.run("sq", _square, configs)
        assert warm_metrics.counter("sweep.cache_hits") == 3
        assert warm_metrics.counter("sweep.cache_misses") == 0
        # Cached replays do not pollute the wall-time histogram.
        assert warm_metrics.histogram("sweep.task_wall_s").count == 0

    def test_utilization_gauges_set(self):
        metrics = Metrics()
        runner = SweepRunner(metrics=metrics)
        runner.run("sq", _square, [{"x": 1}, {"x": 2}])
        assert metrics.gauge("sweep.workers") == 1.0
        assert metrics.gauge("sweep.wall_s") > 0.0
        assert 0.0 <= metrics.gauge("sweep.worker_utilization") <= 1.0

    def test_sweep_task_trace_events(self, tmp_path):
        tracer = Tracer()
        runner = SweepRunner(cache=SweepCache(str(tmp_path)), tracer=tracer)
        runner.run("sq", _square, [{"x": 1}, {"x": 2}])
        runner.run("sq", _square, [{"x": 1}])  # warm replay
        tasks = list(tracer.iter_kind("sweep_task"))
        assert [t["cached"] for t in tasks] == [False, False, True]
        assert all(t["experiment"] == "sq" for t in tasks)
        # Cache identity in the trace matches the runner's own key.
        assert tasks[0]["config_hash"] == tasks[2]["config_hash"]
        assert tasks[2]["elapsed_s"] == 0.0

    def test_runner_adopts_ambient_observation(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            runner = SweepRunner()
        runner.run("sq", _square, [{"x": 5}])
        assert metrics.counter("sweep.cache_misses") == 1

    def test_unobserved_runner_records_nothing(self):
        runner = SweepRunner()
        assert runner._metrics is None and runner._tracer is None
        results = runner.run("sq", _square, [{"x": 4}])
        assert results == [{"x": 4, "y": 16}]

    def test_metrics_summary_consumable_as_json(self):
        """The acceptance check: run a sweep under metrics, feed the
        registry through the JSON reporter, and consume the payload."""
        metrics = Metrics()
        runner = SweepRunner(metrics=metrics)
        runner.run("sq", _square, [{"x": i} for i in range(4)])
        payload = json.loads(render_report_json(metrics))
        assert payload["metrics"]["counters"]["sweep.cache_misses"] == 4
        hist = payload["metrics"]["histograms"]["sweep.task_wall_s"]
        assert hist["count"] == 4
        assert payload["metrics"]["gauges"]["sweep.workers"] == 1.0

    def test_parallel_run_still_counts_every_task(self, tmp_path):
        metrics = Metrics()
        runner = SweepRunner(workers=2, cache=SweepCache(str(tmp_path)),
                             metrics=metrics)
        results = runner.run("sq", _square, [{"x": i} for i in range(6)])
        assert [r["y"] for r in results] == [0, 1, 4, 9, 16, 25]
        assert metrics.counter("sweep.cache_misses") == 6


class TestRaisingTask:
    """A grid point that raises must not corrupt the runner's stats.

    Regression: ``run()`` used to accrue ``wall_s`` and set the
    utilization gauges only on the success path, so the first raising
    point left ``wall_s`` at 0.0 — and ``utilization()`` reported on a
    sweep that was never timed.
    """

    def test_exception_propagates_but_wall_clock_accrues(self):
        metrics = Metrics()
        runner = SweepRunner(metrics=metrics)
        with pytest.raises(ValueError, match="bad point 2"):
            runner.run("boom", _explode, [{"x": 2}])
        assert runner.stats.wall_s > 0.0
        assert metrics.gauge("sweep.wall_s") == pytest.approx(
            runner.stats.wall_s, abs=1e-6
        )
        assert metrics.gauge("sweep.workers") == 1.0
        assert 0.0 <= metrics.gauge("sweep.worker_utilization") <= 1.0

    def test_wall_clock_keeps_accruing_across_failed_sweeps(self):
        runner = SweepRunner()
        with pytest.raises(ValueError):
            runner.run("boom", _explode, [{"x": 1}])
        first = runner.stats.wall_s
        assert first > 0.0
        with pytest.raises(ValueError):
            runner.run("boom", _explode, [{"x": 1}])
        assert runner.stats.wall_s > first

    def test_utilization_stays_sane_after_a_mixed_failed_sweep(self):
        # A successful sweep accrues busy_s; a later raising sweep must
        # still accrue wall_s, or utilization() would overstate.
        runner = SweepRunner()
        runner.run("sq", _square, [{"x": 0}, {"x": 1}])
        with pytest.raises(ValueError):
            runner.run("boom", _explode, [{"x": 2}])
        assert runner.stats.misses == 2
        assert runner.stats.wall_s >= runner.stats.busy_s > 0.0
        assert 0.0 <= runner.stats.utilization() <= 1.0
