"""Space-partitioned simulation: K shards under conservative lookahead.

The per-process engine (:mod:`repro.sim.engine`) runs one event heap;
the cohort engine (:mod:`repro.sim.cohort`) abandons per-node fidelity
for arrays.  This module is the middle path of ROADMAP item 1 track
(b): keep protocol-faithful nodes, handlers, and fault plans, but
space-partition the population into ``K`` shards that advance in
parallel and exchange cross-shard messages as timestamped envelopes.

Synchronization is *conservative* (Chandy–Misra–Bryant style): all
shards advance window by window, and each window ends ``lookahead``
past the earliest pending event anywhere, where ``lookahead`` is the
minimum cross-shard propagation delay exposed by
:meth:`repro.net.latency.LatencyModel.propagation_bounds`.  A message
sent inside a window therefore always arrives in a *later* window, so
injecting collected envelopes at each barrier never delivers anything
into a shard's past.  Windows are half-open: events exactly at a
barrier run in the next window, after that barrier's envelopes are in.

Determinism contract (tested by ``tests/sim/test_shard_equivalence.py``):

* Every shard builds its world from ``RngStreams(seed)`` with the same
  root, so *per-node* named streams (``churn.<node_id>``,
  ``shard.<workload>.<node_id>``) draw identically no matter which
  shard owns the node.  Workloads that keep all randomness on per-node
  streams, use a latency model with deterministic pairwise delays, and
  keep ``loss_rate == 0`` produce aggregates **equal across K** —
  including ``K == 1``, which is event-for-event the single-process
  engine.  Shard-level machinery randomness rides the dedicated
  ``sim.shard.<k>`` streams.
* At fixed ``(plan, seed, K)`` a run is exactly deterministic: envelope
  injection is sorted by ``(arrival, origin shard, emission seq)`` and
  shards advance in index order, so double runs are byte-identical
  (trace and work counters alike).

Observability: the coordinator threads ``shard.messages_crossed``,
``shard.sync_rounds``, and ``shard.horizon_stalls`` counters plus
``shard_sync`` / ``shard_envelope`` trace kinds through
:mod:`repro.obs`.  Fault plans arm one
:class:`~repro.faults.FaultInjector` per shard, so ``FaultSurface``
windows and partitions apply on every shard consistently.

Execution modes: ``mode="inline"`` (default) advances every shard in
one process — the mode goldens, CI smokes, and traces use.
``mode="process"`` runs each shard's event loop in a persistent worker
process coordinated over pipes; the workload spec must be picklable
(checked with the same guard discipline as
:meth:`repro.analysis.runner.SweepRunner._picklable`, falling back to
inline instead of crashing), and results are byte-identical to inline.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.errors import NetworkError, ReproError, SimulationError
from repro.net.latency import LatencyModel
from repro.net.transport import Network, _is_generator, _swallow_repro_errors
from repro.obs.metrics import Metrics
from repro.obs.runtime import active as _active_observation
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

__all__ = [
    "Envelope",
    "Shard",
    "ShardNetwork",
    "ShardRouter",
    "ShardWorkload",
    "ShardedSimulator",
    "assign_shards",
    "derive_lookahead",
    "run_single_process",
]


# ---------------------------------------------------------------------------
# Partitioning and lookahead
# ---------------------------------------------------------------------------

def assign_shards(labels: Iterable[str], shards: int) -> Dict[str, int]:
    """Deterministic node-label -> shard assignment.

    Hashes each topology label (the node-id strings
    :mod:`repro.net.topology` builders produce) with SHA-256, so the
    mapping is stable across Python versions, platforms, and insertion
    order — the same discipline as :func:`repro.sim.rng.derive_seed`.
    Accepts any iterable of labels, including a networkx graph's
    ``nodes`` view.
    """
    if shards < 1:
        raise SimulationError(f"shard count must be >= 1, got {shards}")
    assignment: Dict[str, int] = {}
    for label in labels:
        digest = hashlib.sha256(str(label).encode("utf-8")).digest()
        assignment[str(label)] = int.from_bytes(digest[:8], "big") % shards
    return assignment


def derive_lookahead(latency: LatencyModel) -> float:
    """The conservative window size a latency model supports.

    The minimum cross-shard propagation delay: any message sent at
    ``t`` arrives no earlier than ``t + lookahead``, so a shard may
    safely run ``lookahead`` past the earliest pending event anywhere.
    Raises when the model's lower bound is not positive (e.g.
    :class:`~repro.net.latency.LogNormalLatency`), because a zero
    lookahead cannot make progress.
    """
    lo, _hi = latency.propagation_bounds()
    if lo <= 0:
        raise SimulationError(
            f"{type(latency).__name__} has zero minimum propagation delay;"
            " the sharded engine needs a positive cross-shard lookahead"
        )
    return lo


# ---------------------------------------------------------------------------
# Envelopes and the router
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Envelope:
    """One cross-shard message leg, frozen at send time.

    ``seq`` is the origin shard's emission counter; the triple
    ``(arrival, origin_shard, seq)`` totally orders every envelope of a
    round, which is what makes barrier injection deterministic.
    """

    arrival: float
    src_id: str
    dst_id: str
    method: str
    payload: Any
    size_bytes: int
    origin_shard: int
    seq: int
    sent_at: float

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.arrival, self.origin_shard, self.seq)


class ShardRouter:
    """Barrier-time conduit for envelopes between shard networks.

    Extends the :class:`~repro.net.transport.Network` flow-accounting
    surface across shard boundaries: an exported envelope leaves its
    origin network as ``sent`` and is carried here (``in_transit``)
    until the coordinator injects it into the destination network,
    where it becomes ``in_flight`` and finally ``delivered`` or
    ``dropped``.  :meth:`combined_flow` is therefore conservative at
    every barrier — the surface the chaos invariant harness checks.
    """

    def __init__(self) -> None:
        self.messages_crossed = 0
        self._envelopes_in_transit: List[Envelope] = []

    @property
    def in_transit(self) -> int:
        return len(self._envelopes_in_transit)

    def collect(self, envelopes: Iterable[Envelope]) -> None:
        """Accept one shard's outbox at a barrier."""
        self._envelopes_in_transit.extend(envelopes)

    def peek_min_arrival(self) -> Optional[float]:
        """Earliest arrival among carried envelopes, or ``None``."""
        if not self._envelopes_in_transit:
            return None
        return min(e.arrival for e in self._envelopes_in_transit)

    def drain(self) -> List[Envelope]:
        """All carried envelopes in deterministic injection order."""
        batch = sorted(self._envelopes_in_transit, key=Envelope.sort_key)
        self._envelopes_in_transit = []
        self.messages_crossed += len(batch)
        return batch

    def combined_flow(
        self, shard_flows: Iterable[Dict[str, int]]
    ) -> Dict[str, int]:
        """Whole-population flow snapshot: per-shard sums plus carried
        envelopes.  Per-shard snapshots do not individually conserve
        (an envelope is ``sent`` on one shard and ``delivered`` on
        another); this combined view does."""
        total = {"sent": 0, "delivered": 0, "dropped": 0, "in_flight": 0}
        for flow in shard_flows:
            for key in total:
                total[key] += flow[key]
        total["in_flight"] += self.in_transit
        return total


class ShardNetwork(Network):
    """A :class:`Network` that exports non-local sends as envelopes.

    Every shard registers the *entire* node population (identical
    construction on every shard, so latency/serialization math sees
    real endpoint objects), but only nodes assigned to this shard run
    behaviour.  A ``send`` to a remote node performs the normal
    send-side accounting and loss draw, then freezes the leg into an
    :class:`Envelope` instead of scheduling local delivery; arrival
    checks (liveness, partition, corruption) happen on the destination
    shard, where that node's state is authoritative.

    Cross-shard ``rpc`` is not supported — the request/response
    generator would need to block across the barrier; shard workloads
    express protocols as one-way sends (request and reply legs).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RngStreams,
        assignment: Dict[str, int],
        shard_index: int,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
    ):
        super().__init__(sim, streams, latency=latency, loss_rate=loss_rate)
        self._shard_assignment = dict(assignment)
        self.shard_index = shard_index
        self._shard_outbox: List[Envelope] = []
        self._shard_seq = 0

    # -- partition helpers -------------------------------------------------

    def shard_of(self, node_id: str) -> int:
        shard = self._shard_assignment.get(node_id)
        if shard is None:
            raise NetworkError(f"node {node_id!r} has no shard assignment")
        return shard

    def is_local(self, node_id: str) -> bool:
        return self.shard_of(node_id) == self.shard_index

    # -- transport overrides ----------------------------------------------

    def send(
        self,
        src_id: str,
        dst_id: str,
        method: str,
        payload: Any = None,
        size_bytes: int = 512,
    ) -> None:
        if self.is_local(dst_id):
            super().send(src_id, dst_id, method, payload, size_bytes)
            return
        src, dst = self.node(src_id), self.node(dst_id)
        self.monitor.counters.increment("messages_sent")
        self.monitor.counters.increment(f"bytes_sent.{src_id}", size_bytes)
        self._flow_sent += 1
        self._msg_event("msg_send", src_id, dst_id, method, size_bytes)
        # Same send-side loss/latency fault logic as Network.send; the
        # arrival-side checks run on the destination shard.
        faults = self._faults
        if (self.loss_rate > 0
                and self._loss_rng.random() < self.loss_rate) or (
                faults is not None and faults.drop_prob > 0
                and faults.drop_rng.random() < faults.drop_prob):
            self.monitor.counters.increment("messages_lost")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="loss")
            return
        delay = self.latency.delay(src, dst, size_bytes)
        if faults is not None and faults.latency_factor != 1.0:
            delay *= faults.latency_factor
        seq = self._shard_seq
        self._shard_seq = seq + 1
        self._shard_outbox.append(Envelope(
            arrival=self.sim.now + delay,
            src_id=src_id,
            dst_id=dst_id,
            method=method,
            payload=payload,
            size_bytes=size_bytes,
            origin_shard=self.shard_index,
            seq=seq,
            sent_at=self.sim.now,
        ))

    def rpc(
        self,
        src_id: str,
        dst_id: str,
        method: str,
        payload: Any = None,
        size_bytes: int = 512,
        response_bytes: int = 512,
        timeout: float = 30.0,
        retries: int = 0,
    ) -> Any:
        if not self.is_local(dst_id):
            raise NetworkError(
                f"cross-shard rpc {src_id!r}->{dst_id!r} is not supported;"
                " shard workloads express request/response as one-way sends"
            )
        return super().rpc(src_id, dst_id, method, payload, size_bytes,
                           response_bytes, timeout, retries)

    # -- barrier API (coordinator only) ------------------------------------

    def _take_outbox(self) -> List[Envelope]:
        outbox = self._shard_outbox
        self._shard_outbox = []
        return outbox

    def _inject_envelope(self, envelope: Envelope) -> None:
        """Accept one cross-shard envelope; delivery checks run at its
        (strictly future) arrival instant against local node state."""
        self._flow_in_flight += 1
        self.sim.schedule_at(
            envelope.arrival, self._arrive_envelope, envelope
        )

    def _arrive_envelope(self, envelope: Envelope) -> None:
        # Mirrors the deliver() closure in Network.send: same checks,
        # same counters, same trace events — on the authoritative shard.
        self._flow_in_flight -= 1
        src_id, dst_id = envelope.src_id, envelope.dst_id
        method, size_bytes = envelope.method, envelope.size_bytes
        dst = self.node(dst_id)
        if not dst.online:
            self.monitor.counters.increment("messages_to_offline")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="offline")
            return
        if not self.can_reach(src_id, dst_id):
            self.monitor.counters.increment("messages_partitioned")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="partition")
            return
        faults = self._faults
        if (faults is not None and faults.corrupt_prob > 0
                and faults.corrupt_rng.random() < faults.corrupt_prob):
            self.monitor.counters.increment("messages_corrupted")
            self._flow_dropped += 1
            self._msg_event("msg_drop", src_id, dst_id, method, size_bytes,
                            reason="corrupt")
            return
        self.monitor.counters.increment("messages_delivered")
        self._flow_delivered += 1
        self._msg_event("msg_deliver", src_id, dst_id, method, size_bytes)
        try:
            result = dst.dispatch(method, envelope.payload, src_id)
        except ReproError:
            self.monitor.counters.increment("handler_errors")
            return  # fire-and-forget: failures are silent
        if _is_generator(result):
            self.sim.spawn(
                _swallow_repro_errors(result, self.monitor),
                name=f"{dst_id}.{method}",
            )


# ---------------------------------------------------------------------------
# One shard's world
# ---------------------------------------------------------------------------

class Shard:
    """Everything one shard owns: simulator, streams, network, state.

    ``state`` is workload scratch space (build writes, collect reads);
    ``churn`` maps owned node ids to their
    :class:`~repro.net.churn.ChurnProcess` so fault-plan crashes
    suspend renewal clocks.  ``rng`` is this shard's dedicated
    ``sim.shard.<k>`` stream for shard-level machinery randomness —
    per-*node* behaviour must ride per-node streams instead, or
    aggregates stop being K-invariant.
    """

    def __init__(
        self,
        index: int,
        sim: Simulator,
        streams: RngStreams,
        network: Network,
        assignment: Optional[Dict[str, int]] = None,
    ):
        self.index = index
        self.sim = sim
        self.streams = streams
        self.network = network
        self.assignment = assignment
        self.state: Dict[str, Any] = {}
        self.churn: Dict[str, Any] = {}
        self.rng = streams.stream(f"sim.shard.{index}")

    def owns(self, node_id: str) -> bool:
        """Whether this shard runs the node's behaviour.  With no
        assignment (the single-process reference path) it owns all."""
        if self.assignment is None:
            return True
        return self.assignment.get(node_id) == self.index


@dataclass(frozen=True)
class ShardWorkload:
    """A space-partitionable simulation, described shard-agnostically.

    ``build(shard)`` must create **every** node of ``node_ids`` on
    ``shard.network`` (identical order and parameters on every shard)
    but attach behaviour — processes, churn, scheduled sends — only
    where ``shard.owns(node_id)``.  ``collect(shard)`` returns that
    shard's JSON-safe partial aggregates; the driver merges them.
    ``latency_factory(streams)`` builds the latency model per shard —
    it must be pairwise-deterministic (constant, or placed
    :class:`~repro.net.latency.PlanetLatency`) for cross-K equality.
    """

    name: str
    node_ids: Tuple[str, ...]
    build: Callable[[Shard], None]
    collect: Callable[[Shard], Dict[str, Any]]
    latency_factory: Optional[Callable[[RngStreams], LatencyModel]] = None
    horizon: float = 100.0
    loss_rate: float = 0.0


def _build_shard(
    workload: ShardWorkload,
    shards: int,
    seed: int,
    index: int,
    plan: Any = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> Shard:
    """Construct one shard's world (used by inline and worker modes)."""
    streams = RngStreams(seed)
    sim = Simulator(tracer=tracer, metrics=metrics)
    assignment = assign_shards(workload.node_ids, shards)
    latency = (
        workload.latency_factory(streams)
        if workload.latency_factory is not None
        else None
    )
    network = ShardNetwork(
        sim, streams, assignment, index,
        latency=latency, loss_rate=workload.loss_rate,
    )
    shard = Shard(index, sim, streams, network, assignment)
    workload.build(shard)
    if plan is not None:
        # Local import: repro.faults imports the sim package.
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(sim, network, plan, streams,
                                 churn=shard.churn)
        injector.arm()
        shard.state["_injector"] = injector
    return shard


def run_single_process(
    workload: ShardWorkload,
    seed: int,
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
) -> Dict[str, Any]:
    """The unsharded reference: same workload, plain engine + network.

    Builds one :class:`~repro.net.transport.Network` owning every node
    and runs to the horizon — the baseline the equivalence suite holds
    every ``K`` against (and that ``K == 1`` must match exactly).
    """
    streams = RngStreams(seed)
    sim = Simulator(tracer=tracer, metrics=metrics)
    latency = (
        workload.latency_factory(streams)
        if workload.latency_factory is not None
        else None
    )
    network = Network(sim, streams, latency=latency,
                      loss_rate=workload.loss_rate)
    shard = Shard(0, sim, streams, network, assignment=None)
    workload.build(shard)
    sim.run(until=workload.horizon)
    result = workload.collect(shard)
    result["flow"] = network.flow_snapshot()
    return result


# ---------------------------------------------------------------------------
# Shard handles: uniform coordinator API over inline and worker shards
# ---------------------------------------------------------------------------

class _InlineHandle:
    """Drives one shard in the coordinator's own process."""

    def __init__(self, shard: Shard, workload: ShardWorkload):
        self.shard = shard
        self.workload = workload
        self.next_time = shard.sim.next_event_time()

    def window(
        self, until: float, inclusive: bool, envelopes: List[Envelope]
    ) -> List[Envelope]:
        network = self.shard.network
        assert isinstance(network, ShardNetwork)
        for envelope in envelopes:
            network._inject_envelope(envelope)
        self.shard.sim.run(until=until, inclusive=inclusive)
        self.next_time = self.shard.sim.next_event_time()
        return network._take_outbox()

    def finish(self, horizon: float) -> Tuple[Dict[str, Any], Dict[str, int]]:
        self.shard.sim.run(until=horizon)
        return (
            self.workload.collect(self.shard),
            self.shard.network.flow_snapshot(),
        )

    def close(self) -> None:
        return None


def _shard_worker(
    conn: Any,
    factory: Callable[..., ShardWorkload],
    kwargs: Dict[str, Any],
    shards: int,
    seed: int,
    index: int,
    plan: Any,
) -> None:
    """Worker-process entry point: one shard's event loop over a pipe.

    The worker rebuilds its world from the picklable spec, then serves
    ``window`` commands until ``finish``.  It runs unobserved — traces
    and sim-level metrics are an inline-mode feature; the coordinator
    still emits all ``shard_*`` events and counters itself, and
    collected aggregates are byte-identical to inline mode.
    """
    try:
        workload = factory(**kwargs)
        shard = _build_shard(workload, shards, seed, index, plan)
        conn.send(("ready", shard.sim.next_event_time()))
        network = shard.network
        assert isinstance(network, ShardNetwork)
        while True:
            command = conn.recv()
            if command[0] == "window":
                _tag, until, inclusive, envelopes = command
                for envelope in envelopes:
                    network._inject_envelope(envelope)
                shard.sim.run(until=until, inclusive=inclusive)
                conn.send((
                    "window_done",
                    shard.sim.next_event_time(),
                    network._take_outbox(),
                ))
            elif command[0] == "finish":
                shard.sim.run(until=command[1])
                conn.send((
                    "result",
                    workload.collect(shard),
                    network.flow_snapshot(),
                ))
                return
            else:  # pragma: no cover - protocol guard
                raise SimulationError(f"unknown shard command {command[0]!r}")
    except Exception as exc:  # pragma: no cover - crash relay  # repro: noqa[ERR001]
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        raise


class _ProcessHandle:
    """Drives one shard living in a persistent worker process."""

    def __init__(
        self,
        factory: Callable[..., ShardWorkload],
        kwargs: Dict[str, Any],
        shards: int,
        seed: int,
        index: int,
        plan: Any,
    ):
        parent_conn, child_conn = multiprocessing.Pipe()
        self._conn = parent_conn
        self._process = multiprocessing.Process(
            target=_shard_worker,
            args=(child_conn, factory, kwargs, shards, seed, index, plan),
            name=f"repro-shard-{index}",
        )
        self._process.start()
        self.next_time = self._expect("ready")[1]

    def _expect(self, tag: str) -> Tuple[Any, ...]:
        reply = self._conn.recv()
        if reply[0] == "error":
            self.close()
            raise SimulationError(f"shard worker failed: {reply[1]}")
        if reply[0] != tag:  # pragma: no cover - protocol guard
            raise SimulationError(f"expected {tag!r}, got {reply[0]!r}")
        return reply

    def window(
        self, until: float, inclusive: bool, envelopes: List[Envelope]
    ) -> List[Envelope]:
        self._conn.send(("window", until, inclusive, envelopes))
        _tag, next_time, outbox = self._expect("window_done")
        self.next_time = next_time
        return list(outbox)

    def finish(self, horizon: float) -> Tuple[Dict[str, Any], Dict[str, int]]:
        self._conn.send(("finish", horizon))
        _tag, collected, flow = self._expect("result")
        return collected, flow

    def close(self) -> None:
        self._conn.close()
        self._process.join(timeout=10.0)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=10.0)


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------

class ShardedSimulator:
    """Runs a :class:`ShardWorkload` across ``K`` space-partition shards.

    Parameters
    ----------
    factory / kwargs:
        ``factory(**kwargs)`` builds the workload.  Passing the spec
        (not a built workload) is what lets ``mode="process"`` ship it
        to workers; inline mode calls it directly.
    shards / seed:
        The partition count and the root seed — together with the
        fault plan these fully determine the run.
    mode:
        ``"inline"`` (default) or ``"process"``.  Process mode checks
        the spec for picklability exactly like the sweep runner's
        pool guard and falls back to inline (``serial_fallback``)
        rather than crash.
    plan:
        Optional :class:`~repro.faults.FaultPlan`, armed on every
        shard.
    tracer / metrics:
        :mod:`repro.obs` hooks; each omitted hook independently adopts
        the ambient one, like :class:`~repro.sim.engine.Simulator`.
    """

    def __init__(
        self,
        factory: Callable[..., ShardWorkload],
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        shards: int,
        seed: int,
        mode: str = "inline",
        plan: Any = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ):
        if shards < 1:
            raise SimulationError(f"shard count must be >= 1, got {shards}")
        if mode not in ("inline", "process"):
            raise SimulationError(f"unknown shard mode {mode!r}")
        if tracer is None or metrics is None:
            observation = _active_observation()
            if observation is not None:
                if tracer is None:
                    tracer = observation.tracer
                if metrics is None:
                    metrics = observation.metrics
        self._tracer = tracer
        self._metrics = metrics
        self.factory = factory
        self.kwargs = dict(kwargs or {})
        self.shards = shards
        self.seed = seed
        self.mode = mode
        self.plan = plan
        self.router = ShardRouter()
        self.serial_fallback = False
        self.sync_rounds = 0
        self.horizon_stalls = 0
        self.flow: Dict[str, int] = {}
        self._handles: Optional[List[Any]] = None

    # -- plumbing ---------------------------------------------------------

    def _spec_picklable(self) -> bool:
        """The sweep-runner pool guard, applied to the shard spec."""
        try:
            pickle.dumps((self.factory, self.kwargs, self.plan))
        except (pickle.PicklingError, TypeError, AttributeError):
            return False
        return True

    def _make_handles(self, workload: ShardWorkload) -> List[Any]:
        if self.mode == "process":
            if self._spec_picklable():
                return [
                    _ProcessHandle(self.factory, self.kwargs, self.shards,
                                   self.seed, index, self.plan)
                    for index in range(self.shards)
                ]
            self.serial_fallback = True
        return [
            _InlineHandle(
                _build_shard(workload, self.shards, self.seed, index,
                             self.plan, tracer=self._tracer,
                             metrics=self._metrics),
                workload,
            )
            for index in range(self.shards)
        ]

    # -- the conservative window loop -------------------------------------

    def run(
        self,
        on_sync: Optional[Callable[[int, float], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Advance all shards to the workload horizon; returns the
        per-shard ``collect()`` results in shard order.

        ``on_sync(round, barrier_time)`` fires after every barrier with
        all shards consistent at ``barrier_time`` — the hook chaos
        drivers use for invariant sweeps across shard boundaries
        (:meth:`live_flow` is valid inside the callback).
        """
        workload = self.factory(**self.kwargs)
        latency = (
            workload.latency_factory(RngStreams(self.seed))
            if workload.latency_factory is not None
            else None
        )
        if latency is None:
            from repro.net.latency import ConstantLatency

            latency = ConstantLatency()
        lookahead = derive_lookahead(latency)
        horizon = workload.horizon
        handles = self._make_handles(workload)
        self._handles = handles
        assignment = assign_shards(workload.node_ids, self.shards)
        try:
            while True:
                live = [
                    t for t in (h.next_time for h in handles)
                    if t is not None
                ]
                min_arrival = self.router.peek_min_arrival()
                if min_arrival is not None:
                    live.append(min_arrival)
                if not live:
                    break
                t_min = min(live)
                if t_min > horizon:
                    break
                window_end = t_min + lookahead
                if window_end <= t_min:
                    raise SimulationError(
                        f"lookahead {lookahead} vanishes at t={t_min};"
                        " cannot make progress"
                    )
                inclusive = window_end > horizon
                until = horizon if inclusive else window_end
                batch = self.router.drain()
                for envelope in batch:
                    if self._metrics is not None:
                        self._metrics.inc("shard.messages_crossed")
                    if self._tracer is not None:
                        self._tracer.emit(
                            "shard_envelope", t=envelope.sent_at,
                            arrival=envelope.arrival, src=envelope.src_id,
                            dst=envelope.dst_id, method=envelope.method,
                            origin_shard=envelope.origin_shard,
                            origin_seq=envelope.seq,
                        )
                by_shard: Dict[int, List[Envelope]] = {}
                for envelope in batch:
                    by_shard.setdefault(
                        assignment[envelope.dst_id], []
                    ).append(envelope)
                stalls = 0
                outboxes: List[Envelope] = []
                for index, handle in enumerate(handles):
                    incoming = by_shard.get(index, [])
                    first = handle.next_time
                    if incoming:
                        earliest = min(e.arrival for e in incoming)
                        first = (
                            earliest if first is None
                            else min(first, earliest)
                        )
                    if first is None or (
                        first > until if inclusive else first >= until
                    ):
                        stalls += 1
                    outboxes.extend(handle.window(until, inclusive, incoming))
                self.router.collect(outboxes)
                self.sync_rounds += 1
                self.horizon_stalls += stalls
                if self._metrics is not None:
                    self._metrics.inc("shard.sync_rounds")
                    if stalls:
                        self._metrics.inc("shard.horizon_stalls", stalls)
                if self._tracer is not None:
                    self._tracer.emit(
                        "shard_sync", t=until, round=self.sync_rounds,
                        envelopes=len(batch), stalls=stalls,
                        shards=self.shards,
                    )
                if on_sync is not None:
                    on_sync(self.sync_rounds, until)
            # Envelopes collected but never drained (arrival past the
            # horizon with no earlier work left) stay with the router,
            # exactly as an in-flight message past the horizon stays
            # in_flight on the single-process engine.
            results: List[Dict[str, Any]] = []
            flows: List[Dict[str, int]] = []
            for handle in handles:
                collected, flow = handle.finish(horizon)
                results.append(collected)
                flows.append(flow)
            self.flow = self.router.combined_flow(flows)
            return results
        finally:
            self._handles = None
            for handle in handles:
                handle.close()

    def live_flow(self) -> Optional[Dict[str, int]]:
        """Combined flow snapshot mid-run (inline mode only).

        Valid inside an ``on_sync`` callback: every envelope is either
        inside some shard's flow accounting or carried by the router,
        so the combined snapshot conserves at every barrier.  Returns
        ``None`` when shards live in worker processes (their counters
        are not reachable between barriers).
        """
        handles = self._handles
        if handles is None or any(
            not isinstance(h, _InlineHandle) for h in handles
        ):
            return None
        return self.router.combined_flow(
            h.shard.network.flow_snapshot() for h in handles
        )
