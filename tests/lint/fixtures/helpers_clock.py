"""Fixture helper: a wall-clock read in a *non-simulated* module.

Clean on its own (DET002 only scopes the simulated packages) — the
violation appears when simulated code reaches it through the call
graph; see ``sim/det006_transitive.py``.
"""

import time


def read_clock():
    return time.perf_counter()
