"""Meta-test: the library must satisfy its own lint rules.

This is the enforcement point for the determinism contract — if a PR
introduces ad-hoc randomness, a wall-clock read in simulated code, a
swallowed broad except, or an ``__all__`` drift, this test names the
file, line, and rule.
"""

from pathlib import Path

import repro
from repro.lint import lint_paths


def test_repro_package_is_lint_clean():
    package_dir = Path(repro.__file__).parent
    findings = lint_paths([str(package_dir)])
    details = "\n".join(f.render() for f in findings)
    assert not findings, f"repro must lint clean; found:\n{details}"
