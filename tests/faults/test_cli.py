"""``python -m repro chaos``: exit codes, report schema, trace output."""

import json

import pytest

from repro.__main__ import main
from repro.faults.cli import validate_chaos_report
from repro.obs import validate_trace_file


class TestExitCodes:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["chaos", "E6", "--plan", "quiet", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos E6" in out
        assert "invariants:" in out

    def test_violation_exits_one(self, capsys):
        code = main(["chaos", "E6", "--plan",
                     "registration-partition-noheal", "--seed", "2"])
        assert code == 1
        assert "VIOLATED registration_completes" in capsys.readouterr().out

    def test_missing_experiment_exits_two(self, capsys):
        assert main(["chaos"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_experiment_exits_two(self, capsys):
        assert main(["chaos", "E99"]) == 2
        assert "no scenario" in capsys.readouterr().err

    def test_unknown_plan_exits_two(self, capsys):
        assert main(["chaos", "E4", "--plan", "nope"]) == 2
        assert "chaos:" in capsys.readouterr().err

    def test_bad_interval_exits_two(self, capsys):
        code = main(["chaos", "E4", "--plan", "quiet", "--interval", "0"])
        assert code == 2
        assert "--interval" in capsys.readouterr().err

    def test_lowercase_experiment_accepted(self, capsys):
        assert main(["chaos", "e6", "--plan", "quiet"]) == 0
        capsys.readouterr()


class TestListing:
    def test_list_prints_presets_and_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios: E4 E4C E4P E5 E5C E6 E9 E9C" in out
        for preset in ("quiet", "server-kill", "churn-storm",
                       "registration-partition", "device-flap"):
            assert preset in out


class TestJsonReport:
    @pytest.fixture(scope="class")
    def report(self):
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(["chaos", "E6", "--plan", "registration-partition",
                         "--seed", "2", "--format", "json"])
        assert code == 0
        return json.loads(buffer.getvalue())

    def test_schema_validates(self, report):
        assert validate_chaos_report(report) == []

    def test_envelope_contents(self, report):
        assert report["schema"] == 1
        assert report["experiment"] == "E6"
        assert report["plan"] == "registration-partition"
        assert report["seed"] == 2
        assert report["result"]["registered"] is True
        assert report["violations"] == []
        assert report["trace"]["events"] > 0
        assert report["trace"]["by_kind"]["fault_injected"] == 1
        assert report["metrics"]["counters"]["faults.injected"] == 1

    def test_validator_flags_broken_reports(self):
        assert validate_chaos_report([]) != []
        assert any("schema" in e
                   for e in validate_chaos_report({"schema": 99}))
        missing = validate_chaos_report({"schema": 1})
        assert any("experiment" in e for e in missing)


class TestTraceOutput:
    def test_identical_invocations_write_identical_traces(
        self, tmp_path, capsys
    ):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            code = main(["chaos", "E6", "--plan", "registration-partition",
                         "--seed", "2", "--out", str(path)])
            assert code == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_trace_validates_against_obs_schema(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(["chaos", "E9", "--plan", "device-flap", "--seed", "2",
              "--out", str(path)])
        capsys.readouterr()
        assert validate_trace_file(str(path)) == []

    def test_trace_contains_fault_kinds(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(["chaos", "E4", "--plan", "server-kill", "--seed", "7",
              "--out", str(path)])
        capsys.readouterr()
        kinds = {json.loads(line)["kind"]
                 for line in path.read_text().splitlines()}
        assert {"fault_injected", "fault_healed",
                "invariant_checked"} <= kinds
