"""Fixture: IMP001 — module-level import cycle (cycle_a -> cycle_b -> cycle_a)."""

import cycle_b


def ping():
    return cycle_b.pong()
