"""Experiment drivers and table rendering (the bench layer's engine)."""

from repro.analysis.censorship import run_censorship_sweep
from repro.analysis.cohort import (
    run_churn_availability,
    run_feasibility_cohort,
    run_federation_availability_cohort,
    run_quality_vs_quantity_cohort,
    run_social_tradeoff_cohort,
)
from repro.analysis.experiments import (
    naming_attack_curve,
    run_federation_availability,
    run_feasibility,
    run_name_theft,
    run_naming_comparison,
    run_partial_federation_sweep,
    run_proof_economics,
    run_quality_vs_quantity,
    run_social_tradeoff,
    run_swarm_availability,
)
from repro.analysis.figures import ascii_plot, sparkline
from repro.analysis.shard_driver import (
    run_federation_availability_shard,
    run_registration_shard_smoke,
    run_shard_chaos,
    run_social_tradeoff_shard,
)
from repro.analysis.runner import (
    RunnerStats,
    SweepCache,
    SweepRunner,
    canonical_config_hash,
    derive_task_seed,
)
from repro.analysis.sweep import cross_product, sweep
from repro.analysis.verification import verify_reproduction
from repro.analysis.tables import render_kv, render_table

__all__ = [
    "run_feasibility",
    "run_federation_availability",
    "run_partial_federation_sweep",
    "run_social_tradeoff",
    "run_naming_comparison",
    "naming_attack_curve",
    "run_name_theft",
    "run_proof_economics",
    "run_swarm_availability",
    "run_quality_vs_quantity",
    "sweep",
    "cross_product",
    "SweepRunner",
    "SweepCache",
    "RunnerStats",
    "canonical_config_hash",
    "derive_task_seed",
    "render_table",
    "render_kv",
    "sparkline",
    "ascii_plot",
    "verify_reproduction",
    "run_churn_availability",
    "run_federation_availability_cohort",
    "run_social_tradeoff_cohort",
    "run_quality_vs_quantity_cohort",
    "run_feasibility_cohort",
    "run_federation_availability_shard",
    "run_social_tradeoff_shard",
    "run_registration_shard_smoke",
    "run_shard_chaos",
    "run_censorship_sweep",
]
