"""The benchmark registry: named, suite-tagged, deterministic workloads.

A benchmark is a plain function ``fn(metrics)`` that performs a fixed
amount of *simulated* work while recording into the supplied
:class:`~repro.obs.metrics.Metrics` registry.  The contract every
registered workload must honor:

* **The body never times itself.**  Wall-clock measurement belongs to
  :mod:`repro.bench.harness` exclusively; a body that calls ``time.*``
  or ``perf_counter`` is flagged by lint rule BEN001.
* **Work counters are deterministic.**  Two executions of the same body
  must land byte-identical counter snapshots (events fired, messages
  delivered, cache hits, ...), which is what lets CI detect *work*
  regressions exactly even when wall-clock noise drowns out timing.
* **Self-contained.**  Each run builds its world from fixed seeds via
  :mod:`repro.sim.rng` and tears it down; nothing leaks between
  repetitions.

Workloads are registered at import time by :mod:`repro.bench.micro` and
:mod:`repro.bench.macro` (imported from ``repro.bench.__init__``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import BenchError
from repro.obs.metrics import Metrics

__all__ = [
    "SUITES",
    "Benchmark",
    "all_benchmarks",
    "get_benchmark",
    "register_benchmark",
    "select_benchmarks",
]

#: The two benchmark suites: fast single-primitive loops and
#: experiment-shaped end-to-end workloads.
SUITES = ("micro", "macro")


@dataclass(frozen=True)
class Benchmark:
    """One registered workload."""

    name: str
    suite: str
    description: str
    fn: Callable[[Metrics], None]


_REGISTRY: Dict[str, Benchmark] = {}


def register_benchmark(
    name: str, suite: str, description: str
) -> Callable[[Callable[[Metrics], None]], Callable[[Metrics], None]]:
    """Decorator registering ``fn(metrics)`` under ``name`` in ``suite``."""
    if suite not in SUITES:
        raise BenchError(f"unknown suite {suite!r}; known: {', '.join(SUITES)}")

    def decorator(fn: Callable[[Metrics], None]) -> Callable[[Metrics], None]:
        if name in _REGISTRY:
            raise BenchError(f"duplicate benchmark name {name!r}")
        _REGISTRY[name] = Benchmark(name, suite, description, fn)
        return fn

    return decorator


def all_benchmarks() -> List[Benchmark]:
    """Every registered benchmark, ordered by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_benchmark(name: str) -> Benchmark:
    """Look one benchmark up by exact name."""
    bench = _REGISTRY.get(name)
    if bench is None:
        known = ", ".join(sorted(_REGISTRY))
        raise BenchError(f"unknown benchmark {name!r}; known: {known}")
    return bench


def select_benchmarks(
    suite: Optional[str] = None, name_filter: Optional[str] = None
) -> List[Benchmark]:
    """Benchmarks in ``suite`` (all suites when ``None``) whose name
    contains ``name_filter`` (no filter when ``None``), ordered by name."""
    if suite is not None and suite not in SUITES:
        raise BenchError(f"unknown suite {suite!r}; known: {', '.join(SUITES)}")
    chosen = [
        bench
        for bench in all_benchmarks()
        if (suite is None or bench.suite == suite)
        and (name_filter is None or name_filter in bench.name)
    ]
    return chosen
