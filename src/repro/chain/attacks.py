"""Blockchain attacks: the 51% double-spend/history-rewrite machinery.

The paper (§3.1) names the 51% attack as the canonical blockchain weakness
that survives in the naming use case.  Two tools here:

* :func:`catch_up_probability` — Nakamoto's analytic success probability
  for an attacker starting ``z`` blocks behind with hashrate share ``q``.
* :class:`MajorityAttack` — an empirical attack driver for a
  :class:`~repro.chain.network.BlockchainNetwork`: mine a private fork
  from before a victim transaction, then release it once longer, erasing
  the transaction from the consensus chain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.chain.network import BlockchainNetwork, Participant
from repro.errors import ChainError
from repro.sim.rng import seeded_rng

__all__ = [
    "catch_up_probability",
    "double_spend_success_probability",
    "MajorityAttack",
    "AttackOutcome",
    "selfish_mining_revenue",
]


def catch_up_probability(attacker_share: float, deficit: int) -> float:
    """Probability an attacker ever catches up from ``deficit`` blocks back.

    Nakamoto (2008): with attacker rate fraction ``q`` and honest ``p``,
    the catch-up probability from deficit z is ``1`` if q > p else
    ``(q/p)**z``.  ``deficit`` counts blocks the attacker must overtake.
    """
    if not 0 <= attacker_share <= 1:
        raise ChainError(f"attacker share must be in [0,1]: {attacker_share}")
    if deficit < 0:
        raise ChainError(f"deficit must be non-negative: {deficit}")
    q = attacker_share
    p = 1.0 - q
    if q >= p:
        return 1.0
    if deficit == 0:
        return 1.0
    return (q / p) ** deficit


def double_spend_success_probability(
    attacker_share: float, confirmations: int
) -> float:
    """Nakamoto's full double-spend probability after ``z`` confirmations.

    Accounts for the Poisson-distributed progress the attacker has already
    made while the victim waited for confirmations.
    """
    q = attacker_share
    p = 1.0 - q
    z = confirmations
    if q <= 0:
        return 0.0
    if q >= p:
        return 1.0
    lam = z * (q / p)
    total = 1.0
    for k in range(z + 1):
        poisson = math.exp(-lam) * lam**k / math.factorial(k)
        total -= poisson * (1.0 - (q / p) ** (z - k))
    return max(0.0, min(1.0, total))


@dataclass
class AttackOutcome:
    """Result of an empirical majority attack run."""

    succeeded: bool
    attacker_blocks: int
    honest_blocks: int
    sim_time: float
    victim_tx_erased: bool


class MajorityAttack:
    """Drive a withholding participant to rewrite recent history.

    Usage::

        attack = MajorityAttack(network, attacker)
        outcome = attack.run(victim_txid, horizon=...)

    ``run`` forks the attacker's private chain from the block *before* the
    one containing the victim transaction, censors the victim transaction
    from the attacker's blocks, optionally mines a conflicting transaction,
    and releases once the private fork leads the public chain.
    """

    def __init__(self, network: BlockchainNetwork, attacker: Participant):
        self.network = network
        self.attacker = attacker

    def lead(self, reference: Participant) -> float:
        """Attacker private-fork lead over the honest tip, measured in
        cumulative *work* and expressed in honest-difficulty block
        equivalents.  Fork choice is by work, so a longer-but-lighter
        private chain (possible across difficulty retargets) is not a
        lead."""
        honest_tip = reference.chain.tip
        honest_work = reference.chain.cumulative_work(honest_tip.block_id)
        return (
            self.attacker.private_tip_work - honest_work
        ) / honest_tip.difficulty

    def run(
        self,
        victim_txid: str,
        reference: Participant,
        horizon: float,
        check_interval: float = 60.0,
        release_lead: int = 1,
        conflicting_tx=None,
    ) -> AttackOutcome:
        """Run the simulation until the attacker leads by ``release_lead``
        blocks or ``horizon`` simulated seconds elapse, then release.

        The attacker censors the victim transaction from its own blocks.
        ``conflicting_tx`` (e.g. the attacker registering the victim's name
        to itself) is injected into the attacker's mempool only, so the
        rewrite permanently invalidates the victim transaction rather than
        merely delaying it.

        Returns the outcome, including whether the victim transaction is
        still on the reference participant's main chain afterwards.
        """
        sim = self.network.sim
        self.attacker.censor_txids.add(victim_txid)
        if conflicting_tx is not None:
            self.attacker.receive_transaction(conflicting_tx)
        victim_height = self.attacker.chain.find_transaction(victim_txid)
        fork_point_id = None
        if victim_height is not None and victim_height > 0:
            fork_block = self.attacker.chain.block_at_height(victim_height - 1)
            if fork_block is not None:
                fork_point_id = fork_block.block_id
        self.attacker.begin_withholding(fork_point_id)
        released = {"done": False}

        def watch() -> None:
            if released["done"]:
                return
            if self.lead(reference) >= release_lead:
                self.attacker.release_private_chain()
                released["done"] = True
                return
            sim.schedule(check_interval, watch)

        sim.schedule(check_interval, watch)
        sim.run(until=sim.now + horizon)
        if not released["done"]:
            # Horizon hit without overtaking: release anyway (attack fails).
            self.attacker.release_private_chain()
        # Let the release propagate.
        sim.run(until=sim.now + 10 * self.network.propagation_delay + 1)

        erased = reference.chain.find_transaction(victim_txid) is None
        return AttackOutcome(
            succeeded=released["done"] and erased,
            attacker_blocks=self.attacker.blocks_mined,
            honest_blocks=self.network.monitor.counters.get("blocks_mined")
            - self.attacker.blocks_mined,
            sim_time=sim.now,
            victim_tx_erased=erased,
        )


def selfish_mining_revenue(
    alpha: float,
    gamma: float = 0.0,
    blocks: int = 200_000,
    seed: int = 0,
) -> float:
    """Eyal-Sirer selfish mining: the attacker's long-run revenue share.

    ``alpha`` is the attacker's hashrate fraction; ``gamma`` the fraction
    of honest miners that build on the attacker's branch during a race.
    Runs the standard state machine over ``blocks`` block-discovery
    events and returns attacker revenue / total revenue.

    Known result this reproduces: with gamma = 0 selfish mining beats
    honest mining (revenue > alpha) once alpha > 1/3; with gamma = 1 the
    threshold drops to 0 — the §5.1 "performance and security of
    blockchain systems" analysis, runnable.

    Draws come from the named stream ``"attacks.selfish_mining"`` (see
    :func:`repro.sim.rng.seeded_rng`), so runs sharing a root seed with
    other components stay decorrelated; exact per-seed outputs are
    pinned in ``tests/chain/test_selfish_mining.py``.
    """
    if not 0 < alpha < 1:
        raise ChainError(f"alpha must be in (0,1): {alpha}")
    if not 0 <= gamma <= 1:
        raise ChainError(f"gamma must be in [0,1]: {gamma}")
    rng = seeded_rng(seed, "attacks.selfish_mining")
    lead = 0          # private-chain lead over the public chain
    fork = False      # a 1-vs-1 public race is in progress
    attacker_revenue = 0
    honest_revenue = 0

    for _ in range(blocks):
        if rng.random() < alpha:
            # -- attacker finds a block ----------------------------------
            previous_lead = lead
            lead += 1
            if previous_lead == 0 and fork:
                # Attacker extends its own racing branch: wins the race.
                attacker_revenue += 2
                lead = 0
                fork = False
        else:
            # -- honest network finds a block ------------------------------
            previous_lead = lead
            if previous_lead == 0:
                if fork:
                    # Race resolved by an honest block.
                    if rng.random() < gamma:
                        attacker_revenue += 1  # built on attacker branch
                        honest_revenue += 1
                    else:
                        honest_revenue += 2
                    fork = False
                else:
                    honest_revenue += 1
            elif previous_lead == 1:
                # Attacker publishes its one-block lead: a race begins.
                lead = 0
                fork = True
            elif previous_lead == 2:
                # Attacker publishes everything, orphaning the honest block.
                attacker_revenue += 2
                lead = 0
            else:
                # Attacker stays ahead; one private block becomes safe.
                attacker_revenue += 1
                lead -= 1

    total = attacker_revenue + honest_revenue
    return attacker_revenue / total if total else 0.0
