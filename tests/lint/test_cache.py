"""Incremental-cache behavior: hits, invalidation, byte-identical output."""

import json

import pytest

import repro.lint.engine as engine_mod
from repro.lint import LintCache, LintStats, lint_paths
from repro.lint.reporters import render_json

DIRTY = (
    "import random\n"
    "\n"
    "def roll():\n"
    "    return random.random()\n"
)

CLEAN = (
    "from repro.sim.rng import seeded_rng\n"
    "\n"
    "def roll(seed):\n"
    "    return seeded_rng(seed, 'demo.roll').random()\n"
)


@pytest.fixture
def tree(tmp_path):
    target = tmp_path / "repro_demo"
    target.mkdir()
    (target / "dirty.py").write_text(DIRTY)
    (target / "clean.py").write_text(CLEAN)
    return target


@pytest.fixture
def cache(tmp_path):
    return LintCache(tmp_path / "cache")


def run(tree, cache):
    stats = LintStats()
    findings = lint_paths([str(tree)], cache=cache, stats=stats)
    return findings, stats


class TestHitsAndMisses:
    def test_cold_run_misses_then_warm_run_hits(self, tree, cache):
        _, cold = run(tree, cache)
        assert cold.files == 2
        assert cold.parsed == 2
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2

        _, warm = run(tree, cache)
        assert warm.files == 2
        assert warm.parsed == 0  # nothing re-parsed: the incremental win
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0

    def test_warm_findings_are_byte_identical_to_cold(self, tree, cache):
        cold_findings, _ = run(tree, cache)
        warm_findings, _ = run(tree, cache)
        assert render_json(warm_findings) == render_json(cold_findings)

    def test_no_cache_always_parses(self, tree):
        stats = LintStats()
        lint_paths([str(tree)], stats=stats)
        assert stats.parsed == 2
        assert stats.cache_hits == 0 and stats.cache_misses == 0


class TestInvalidation:
    def test_content_change_invalidates_only_that_file(self, tree, cache):
        run(tree, cache)
        (tree / "clean.py").write_text(CLEAN + "\n# touched\n")
        findings, stats = run(tree, cache)
        assert stats.parsed == 1
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_pack_version_bump_invalidates_everything(
        self, tree, cache, monkeypatch
    ):
        run(tree, cache)
        monkeypatch.setattr(
            engine_mod, "RULE_PACK_VERSION",
            engine_mod.RULE_PACK_VERSION + 1,
        )
        _, stats = run(tree, cache)
        assert stats.parsed == 2
        assert stats.cache_hits == 0

    def test_rule_selection_is_part_of_the_key(self, tree, cache):
        from repro.lint import resolve_rules

        lint_paths([str(tree)], resolve_rules(["DET001"]), cache=cache)
        stats = LintStats()
        lint_paths([str(tree)], cache=cache, stats=stats)
        assert stats.cache_hits == 0  # full pack != DET001-only entries

    def test_corrupt_entry_is_a_miss_not_an_error(self, tree, cache):
        run(tree, cache)
        for entry in cache.cache_dir.glob("*.json"):
            entry.write_text("{ not json")
        findings, stats = run(tree, cache)
        assert stats.parsed == 2
        assert stats.cache_hits == 0
        assert [f.rule_id for f in findings] == ["DET001"]

    def test_schema_mismatched_entry_is_a_miss(self, tree, cache):
        run(tree, cache)
        for entry in cache.cache_dir.glob("*.json"):
            doc = json.loads(entry.read_text())
            doc["schema"] = -1
            entry.write_text(json.dumps(doc))
        _, stats = run(tree, cache)
        assert stats.cache_hits == 0


class TestProjectRulesOverCache:
    def test_project_findings_recompute_from_cached_fragments(self, tmp_path):
        target = tmp_path / "repro_demo"
        target.mkdir()
        (target / "one.py").write_text(
            "from repro.sim.rng import seeded_rng\n"
            "def a(seed):\n"
            "    return seeded_rng(seed, 'pkg.shared')\n"
        )
        (target / "two.py").write_text(
            "from repro.sim.rng import seeded_rng\n"
            "def b(seed):\n"
            "    return seeded_rng(seed, 'pkg.shared')\n"
        )
        cache = LintCache(tmp_path / "cache")
        cold = lint_paths([str(target)], cache=cache)
        stats = LintStats()
        warm = lint_paths([str(target)], cache=cache, stats=stats)
        assert stats.parsed == 0
        assert [f.rule_id for f in cold] == ["DET005", "DET005"]
        assert render_json(warm) == render_json(cold)

    def test_noqa_map_survives_the_cache(self, tmp_path):
        # A suppressed project finding must stay suppressed on warm runs,
        # which requires the noqa map to ride along in the cache entry.
        target = tmp_path / "repro_demo"
        target.mkdir()
        (target / "one.py").write_text(
            "from repro.sim.rng import seeded_rng\n"
            "def a(seed):\n"
            "    return seeded_rng(seed, 'pkg.shared')  # repro: noqa[DET005]\n"
        )
        (target / "two.py").write_text(
            "from repro.sim.rng import seeded_rng\n"
            "def b(seed):\n"
            "    return seeded_rng(seed, 'pkg.shared')\n"
        )
        cache = LintCache(tmp_path / "cache")
        cold = lint_paths([str(target)], cache=cache)
        warm = lint_paths([str(target)], cache=cache)
        assert render_json(warm) == render_json(cold)
        assert all("one.py" not in f.path for f in cold)


class TestParallelParity:
    def test_jobs_parallel_matches_serial(self, tree):
        serial = lint_paths([str(tree)])
        parallel = lint_paths([str(tree)], jobs=2)
        assert parallel == serial

    def test_jobs_auto_with_cache(self, tree, cache):
        stats = LintStats()
        findings = lint_paths([str(tree)], cache=cache, jobs=0, stats=stats)
        assert stats.jobs >= 1
        warm = lint_paths([str(tree)], cache=cache, jobs=0)
        assert render_json(warm) == render_json(findings)
