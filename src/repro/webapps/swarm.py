"""Visitor-seeded site distribution: the ZeroNet swarm (§3.4).

"Web applications are seeded and served by visitors": a peer that fetches
a site bundle verifies it (signature + file hashes) and then serves it to
later visitors for as long as it stays around.  :class:`SiteSwarm` wires
the fetch/serve/announce mechanics; :class:`VisitorProcess` drives Poisson
visitor arrivals with finite seeding lifetimes, which makes site
availability an explicit birth-death process — E8 sweeps its parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import RemoteError, RpcTimeoutError, WebAppError
from repro.net.node import NodeClass
from repro.net.transport import Network
from repro.sim.monitor import Monitor
from repro.sim.rng import RngStreams
from repro.webapps.site import SiteBundle
from repro.webapps.tracker import Tracker

__all__ = ["SiteSwarm", "VisitorProcess", "VisitorStats"]


class SiteSwarm:
    """Fetch-verify-seed mechanics for one network of peers."""

    def __init__(self, network: Network, tracker: Tracker):
        self.network = network
        self.tracker = tracker
        self.monitor = Monitor()
        # peer -> site address -> bundle
        self._seeding: Dict[str, Dict[str, SiteBundle]] = {}

    # -- peer management ------------------------------------------------------

    def register_peer(self, peer_id: str, node_class: str = NodeClass.PERSONAL_COMPUTER) -> None:
        if not self.network.has_node(peer_id):
            self.network.create_node(peer_id, node_class=node_class)
        if peer_id not in self._seeding:
            self._seeding[peer_id] = {}
            self.network.node(peer_id).register_handler(
                "site.fetch", self._make_fetch_handler(peer_id)
            )

    def _make_fetch_handler(self, peer_id: str):
        def handler(node, payload: dict, sender: str) -> SiteBundle:
            bundle = self._seeding[peer_id].get(payload["site"])
            if bundle is None:
                raise WebAppError(f"{peer_id!r} is not seeding {payload['site'][:12]}")
            return bundle

        return handler

    # -- seeding lifecycle --------------------------------------------------------

    def seed(self, peer_id: str, bundle: SiteBundle) -> Generator:
        """Start seeding a (verified) bundle and announce to the tracker."""
        self.register_peer(peer_id)
        if not bundle.verify():
            raise WebAppError("refusing to seed an unverifiable bundle")
        existing = self._seeding[peer_id].get(bundle.manifest.site_address)
        if existing is None or existing.manifest.version < bundle.manifest.version:
            self._seeding[peer_id][bundle.manifest.site_address] = bundle
        yield from self.tracker.announce(peer_id, bundle.manifest.site_address)
        self.monitor.counters.increment("seeds_started")
        return True

    def stop_seeding(self, peer_id: str, site: str) -> Generator:
        self._seeding.get(peer_id, {}).pop(site, None)
        try:
            yield from self.tracker.depart(peer_id, site)
        except (RpcTimeoutError, RemoteError):
            pass  # tracker may be down; the stale entry just lingers
        self.monitor.counters.increment("seeds_stopped")
        return True

    def seeders_of(self, site: str) -> List[str]:
        """Peers currently holding the site and online (ground truth)."""
        return sorted(
            peer
            for peer, sites in self._seeding.items()
            if site in sites and self.network.node(peer).online
        )

    # -- visiting ----------------------------------------------------------------------

    def visit(self, visitor_id: str, site: str) -> Generator:
        """Fetch a site: tracker lookup, then try seeders until one
        delivers a bundle that verifies.  Returns the verified bundle.

        Raises :class:`WebAppError` when the site is unreachable — a dead
        swarm is exactly how a hostless site "goes down".
        """
        self.register_peer(visitor_id)
        try:
            candidates = yield from self.tracker.get_peers(visitor_id, site)
        except (RpcTimeoutError, RemoteError) as exc:
            self.monitor.counters.increment("visits_failed_tracker")
            raise WebAppError("tracker unreachable") from exc
        tried = 0
        for peer in candidates:
            if peer == visitor_id:
                continue
            tried += 1
            try:
                bundle = yield from self.network.rpc(
                    visitor_id, peer, "site.fetch", {"site": site},
                    response_bytes=max(512, self._bundle_size_hint(peer, site)),
                    timeout=10.0,
                )
            except (RpcTimeoutError, RemoteError):
                continue
            if isinstance(bundle, SiteBundle) and bundle.verify():
                if bundle.manifest.site_address == site:
                    self.monitor.counters.increment("visits_ok")
                    return bundle
            self.monitor.counters.increment("bad_bundles_rejected")
        self.monitor.counters.increment("visits_failed_no_seeder")
        raise WebAppError(
            f"no live seeder for site {site[:12]} ({tried} peers tried)"
        )

    def _bundle_size_hint(self, peer: str, site: str) -> int:
        bundle = self._seeding.get(peer, {}).get(site)
        return bundle.size_bytes if bundle is not None else 512


@dataclass
class VisitorStats:
    """Outcome of a visitor-population run."""

    arrivals: int = 0
    successes: int = 0
    failures: int = 0

    @property
    def availability(self) -> float:
        return self.successes / self.arrivals if self.arrivals else 0.0


class VisitorProcess:
    """Poisson visitor arrivals with finite seed retention.

    Each visitor fetches the site; on success it seeds for an
    exponentially-distributed retention time, then departs.  The swarm
    self-sustains when ``arrival_rate x mean_seed_time > 1`` (an M/M/inf
    population), which is the crossover E8 demonstrates.
    """

    def __init__(
        self,
        swarm: SiteSwarm,
        site: str,
        streams: RngStreams,
        arrival_rate: float,
        mean_seed_time: float,
        visitor_prefix: str = "visitor",
    ):
        if arrival_rate <= 0 or mean_seed_time <= 0:
            raise WebAppError("arrival rate and seed time must be positive")
        self.swarm = swarm
        self.site = site
        self.arrival_rate = arrival_rate
        self.mean_seed_time = mean_seed_time
        self.visitor_prefix = visitor_prefix
        self.stats = VisitorStats()
        self._rng = streams.stream(f"visitors.{visitor_prefix}")
        self._running = False
        self._counter = 0

    def start(self) -> None:
        self._running = True
        self.swarm.network.sim.spawn(self._arrivals(), name="visitor-arrivals")

    def stop(self) -> None:
        self._running = False

    def _arrivals(self) -> Generator:
        while self._running:
            yield self._rng.expovariate(self.arrival_rate)
            if not self._running:
                return
            self._counter += 1
            visitor_id = f"{self.visitor_prefix}{self._counter}"
            self.swarm.network.sim.spawn(
                self._one_visit(visitor_id), name=f"visit:{visitor_id}"
            )

    def _one_visit(self, visitor_id: str) -> Generator:
        self.stats.arrivals += 1
        try:
            bundle = yield from self.swarm.visit(visitor_id, self.site)
        except WebAppError:
            self.stats.failures += 1
            return
        self.stats.successes += 1
        yield from self.swarm.seed(visitor_id, bundle)
        yield self._rng.expovariate(1.0 / self.mean_seed_time)
        yield from self.swarm.stop_seeding(visitor_id, self.site)
