"""EC censorship sweep: shape, seed-1 goldens, runner integration."""

from repro.analysis import SweepRunner, run_censorship_sweep
from repro.analysis.censorship import CENSOR_EXPERIMENTS, CENSOR_PRESETS


class TestCensorshipSweep:
    def test_full_matrix_shape(self):
        rows = run_censorship_sweep(
            seed=1, experiments=("E5C",), presets=CENSOR_PRESETS
        )
        assert [row["preset"] for row in rows] == list(CENSOR_PRESETS)
        assert all(row["experiment"] == "E5C" for row in rows)
        assert all(row["violations"] == 0 for row in rows)

    def test_static_campaign_is_pure_collateral(self):
        (row,) = run_censorship_sweep(
            seed=1, experiments=("E5C",), presets=("border-block",)
        )
        # Without DPI the relays survive, so reachability holds and
        # every hard kill the censor paid for was collateral damage.
        assert row["reachability"] == 1.0
        assert row["relays_reblocked"] == 0
        assert row["time_to_reblock"] is None
        assert row["blocked_flows"] == row["collateral_flows"] == 64

    def test_probing_campaign_golden(self):
        (row,) = run_censorship_sweep(
            seed=1, experiments=("E5C",), presets=("border-block-probing",)
        )
        assert row["reachability"] == 0.85
        assert row["relays_reblocked"] == 4
        assert row["time_to_reblock"] == 15.0
        assert row["blocked_flows"] == 88
        assert row["collateral_flows"] == 24
        assert row["degraded_drops"] == 23

    def test_probing_beats_static_for_the_censor(self):
        rows = run_censorship_sweep(seed=1, presets=(
            "border-block", "border-block-probing",
        ))
        by_key = {(r["experiment"], r["preset"]): r for r in rows}
        for experiment in CENSOR_EXPERIMENTS:
            static = by_key[(experiment, "border-block")]
            probing = by_key[(experiment, "border-block-probing")]
            # DPI always lowers reachability and always lowers the
            # collateral fraction of what the censor kills.
            assert probing["reachability"] < static["reachability"]
            assert (probing["collateral_flows"] / probing["blocked_flows"]
                    < static["collateral_flows"] / static["blocked_flows"])

    def test_sweep_is_deterministic_through_runner(self):
        first = run_censorship_sweep(
            seed=1, experiments=("E9C",), runner=SweepRunner()
        )
        second = run_censorship_sweep(
            seed=1, experiments=("E9C",), runner=SweepRunner()
        )
        assert first == second
