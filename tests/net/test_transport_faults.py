"""Transport fault surface: validation, accounting, and RPC retry timing."""

import pytest

from repro.errors import NetworkError, RpcTimeoutError
from repro.faults import (
    Corrupt,
    DropBurst,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    Partition,
)
from repro.net import ConstantLatency, FaultSurface, Network
from repro.obs import Tracer, observe
from repro.sim import RngStreams, Simulator


def build(loss_rate=0.0, seed=1, tracer=None):
    with observe(tracer=tracer):
        sim = Simulator()
        streams = RngStreams(seed)
        network = Network(sim, streams, latency=ConstantLatency(0.05),
                          loss_rate=loss_rate)
    for node_id in ("a", "b"):
        network.create_node(node_id)
    return sim, streams, network


class TestFaultSurfaceValidation:
    def _rngs(self):
        streams = RngStreams(1)
        return streams.stream("faults.drop"), streams.stream("faults.corrupt")

    def test_probabilities_must_be_sub_one(self):
        drop_rng, corrupt_rng = self._rngs()
        with pytest.raises(NetworkError):
            FaultSurface(1.0, 1.0, 0.0, drop_rng, corrupt_rng)
        with pytest.raises(NetworkError):
            FaultSurface(-0.1, 1.0, 0.0, drop_rng, corrupt_rng)
        with pytest.raises(NetworkError):
            FaultSurface(0.0, 1.0, 1.5, drop_rng, corrupt_rng)

    def test_latency_factor_must_be_positive(self):
        drop_rng, corrupt_rng = self._rngs()
        with pytest.raises(NetworkError):
            FaultSurface(0.0, 0.0, 0.0, drop_rng, corrupt_rng)

    def test_network_starts_without_surface(self):
        _, _, network = build()
        assert network.fault_surface is None


class TestFlowAccounting:
    def test_sends_conserved_through_drop_window(self):
        sim, streams, network = build(seed=5)
        network.node("b").register_handler(
            "m", lambda node, payload, sender: None
        )
        plan = FaultPlan([DropBurst(window=(10.0, 30.0), prob=0.6)])
        FaultInjector(sim, network, plan, streams).arm()
        for i in range(60):
            sim.schedule(float(i), network.send, "a", "b", "m", i)
        sim.run(until=120.0)
        flow = network.flow_snapshot()
        assert flow["sent"] == 60
        assert flow["in_flight"] == 0
        assert flow["delivered"] + flow["dropped"] == 60
        assert flow["dropped"] > 0  # the window definitely bit

    def test_rpc_legs_counted(self):
        sim, _, network = build()
        network.node("b").register_handler(
            "echo", lambda node, payload, sender: payload
        )
        results = []

        def caller():
            value = yield from network.rpc("a", "b", "echo", 42)
            results.append(value)

        sim.spawn(caller())
        sim.run(until=10.0)
        assert results == [42]
        flow = network.flow_snapshot()
        # one request leg + one response leg
        assert flow["sent"] == 2
        assert flow["delivered"] == 2
        assert flow["in_flight"] == 0


class TestCorruptWindow:
    def test_corrupt_drops_carry_reason(self):
        tracer = Tracer()
        sim, streams, network = build(seed=3, tracer=tracer)
        network.node("b").register_handler(
            "m", lambda node, payload, sender: None
        )
        plan = FaultPlan([Corrupt(window=(1.0, 50.0), prob=0.5)])
        FaultInjector(sim, network, plan, streams).arm()
        for i in range(80):
            sim.schedule(1.0 + i * 0.5, network.send, "a", "b", "m", i)
        sim.run(until=100.0)
        corrupted = network.monitor.counters.get("messages_corrupted")
        assert corrupted > 0
        drops = [e for e in tracer.iter_kind("msg_drop")]
        assert all(e["reason"] == "corrupt" for e in drops)
        assert len(drops) == corrupted
        flow = network.flow_snapshot()
        assert flow["delivered"] + flow["dropped"] == flow["sent"] == 80

    def test_corruption_checked_at_arrival_time(self):
        """A message sent inside the window but arriving after it is safe."""
        sim, streams, network = build(seed=3)
        delivered = []
        network.node("b").register_handler(
            "m", lambda node, payload, sender: delivered.append(payload)
        )
        plan = FaultPlan([Corrupt(window=(1.0, 2.0), prob=0.95)])
        FaultInjector(sim, network, plan, streams).arm()
        # Arrival at ~1.99 + 0.05 > 2.0: the window has closed.
        sim.schedule(1.99, network.send, "a", "b", "m", "late")
        sim.run(until=10.0)
        assert delivered == ["late"]


class TestLatencySpikeEndToEnd:
    def test_delivery_delayed_by_factor(self):
        sim, streams, network = build()
        arrivals = {}
        network.node("b").register_handler(
            "m", lambda node, payload, sender: arrivals.update({payload: sim.now})
        )
        plan = FaultPlan([LatencySpike(window=(10.0, 20.0), factor=5.0)])
        FaultInjector(sim, network, plan, streams).arm()
        base = network.latency.delay(network.node("a"), network.node("b"), 512)
        sim.schedule(5.0, network.send, "a", "b", "m", "before")
        sim.schedule(15.0, network.send, "a", "b", "m", "during")
        sim.run(until=30.0)
        assert arrivals["before"] == pytest.approx(5.0 + base)
        assert arrivals["during"] == pytest.approx(15.0 + base * 5.0)


class TestRpcRetryUnderPartition:
    def test_each_attempt_gets_a_fresh_timeout_window(self):
        """Attempts start at exactly call+0/30/60s; healing lets #3 land.

        Pins the retry contract: a timed-out attempt is re-issued
        immediately with its own full timeout, so a partition healed
        mid-call is survived by a later attempt rather than poisoning
        the whole RPC.
        """
        tracer = Tracer()
        sim, streams, network = build(tracer=tracer)
        network.node("b").register_handler(
            "echo", lambda node, payload, sender: payload
        )
        plan = FaultPlan(
            [Partition((("a",), ("b",)), at=0.2, heal_at=50.0)]
        )
        FaultInjector(sim, network, plan, streams).arm()
        results = []

        def caller():
            yield 0.5  # start the call at t=0.5, inside the partition
            value = yield from network.rpc(
                "a", "b", "echo", "hi", timeout=30.0, retries=2
            )
            results.append((sim.now, value))

        sim.spawn(caller())
        sim.run(until=120.0)

        assert len(results) == 1
        assert results[0][1] == "hi"
        spans = [(e["attempt"], e["t"], e["outcome"])
                 for e in tracer.iter_kind("rpc")]
        assert spans == [
            (0, 0.5, "timeout"),
            (1, 30.5, "timeout"),
            (2, 60.5, "ok"),
        ]
        assert network.monitor.counters.get("rpcs_retried") == 2
        assert network.flow_snapshot()["in_flight"] == 0

    def test_unhealed_partition_exhausts_retries(self):
        sim, streams, network = build()
        network.node("b").register_handler(
            "echo", lambda node, payload, sender: payload
        )
        plan = FaultPlan([Partition((("a",), ("b",)), at=0.2)])
        FaultInjector(sim, network, plan, streams).arm()
        failures = []

        def caller():
            yield 0.5
            try:
                yield from network.rpc("a", "b", "echo", "hi",
                                       timeout=10.0, retries=1)
            except RpcTimeoutError:
                failures.append(sim.now)

        sim.spawn(caller())
        sim.run(until=60.0)
        assert failures == [20.5]  # two attempts x 10 s
