"""Federated group communication: the two §3.2 federation designs.

* :class:`SingleHomeFederation` — the OStatus/pump.io model (GNU social,
  Mastodon, Identi.ca, Friendica): each user lives on one home server;
  posts are pushed server-to-server once, with no repair.  The paper's
  criticism made measurable: "applications are bottlenecked by single
  servers that can cause entire instances to be inaccessible if they
  fail."
* :class:`ReplicatedFederation` — the Matrix model: room history is
  replicated across every participating server by anti-entropy, so any
  single server failure loses nothing (the repair loop re-converges).
  Optional end-to-end encryption hides bodies from servers while leaving
  metadata visible — exactly the residual leak the paper notes.

Both share user-homing and room-membership plumbing through
:class:`FederationBase`, so E4 compares mechanisms, not bookkeeping.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, Generator, List, Optional, Set

from repro.errors import GroupCommError, RemoteError, RpcTimeoutError
from repro.gossip.antientropy import AntiEntropyNode
from repro.groupcomm.messages import Message, Room
from repro.net.node import NodeClass
from repro.net.transport import Network
from repro.net.topology import federation_homes
from repro.sim.rng import RngStreams

__all__ = ["FederationBase", "SingleHomeFederation", "ReplicatedFederation"]


class FederationBase:
    """Shared plumbing: servers, user homes, rooms."""

    def __init__(
        self,
        network: Network,
        server_ids: List[str],
        node_class: str = NodeClass.HOME_SERVER,
    ):
        if not server_ids:
            raise GroupCommError("a federation needs at least one server")
        self.network = network
        self.server_ids = list(server_ids)
        for server_id in self.server_ids:
            if not network.has_node(server_id):
                network.create_node(server_id, node_class=node_class)
        self.homes: Dict[str, str] = {}
        self._rooms: Dict[str, Room] = {}

    # -- membership ------------------------------------------------------------

    def add_user(self, user: str, home: Optional[str] = None) -> str:
        """Home a user (round-robin by default); creates their device node."""
        if user in self.homes:
            raise GroupCommError(f"user {user!r} already registered")
        if home is None:
            index = len(self.homes) % len(self.server_ids)
            home = self.server_ids[index]
        if home not in self.server_ids:
            raise GroupCommError(f"unknown server {home!r}")
        if not self.network.has_node(user):
            self.network.create_node(user, node_class=NodeClass.PERSONAL_COMPUTER)
        self.homes[user] = home
        return home

    def add_users(self, users: List[str], seed: int = 0) -> None:
        assignment = federation_homes(users, self.server_ids, seed=seed)
        # Same contract as add_user: bulk registration must not silently
        # re-home an existing user.  Checked up front so a duplicate
        # mid-list leaves no partial assignment behind.
        for user in users:
            if user in self.homes:
                raise GroupCommError(f"user {user!r} already registered")
        for user, home in assignment.items():
            if not self.network.has_node(user):
                self.network.create_node(user, node_class=NodeClass.PERSONAL_COMPUTER)
            self.homes[user] = home

    def home_of(self, user: str) -> str:
        home = self.homes.get(user)
        if home is None:
            raise GroupCommError(f"user {user!r} has no home server")
        return home

    def create_room(self, room_id: str, members: List[str], public: bool = False) -> Room:
        if room_id in self._rooms:
            raise GroupCommError(f"room {room_id!r} exists")
        for member in members:
            self.home_of(member)  # all members must be homed
        room = Room(room_id, set(members), public)
        self._rooms[room_id] = room
        return room

    def room(self, room_id: str) -> Room:
        room = self._rooms.get(room_id)
        if room is None:
            raise GroupCommError(f"no room {room_id!r}")
        return room

    def servers_for_room(self, room_id: str) -> Set[str]:
        """Servers homing at least one member."""
        room = self.room(room_id)
        return {self.home_of(member) for member in room.members}


class SingleHomeFederation(FederationBase):
    """OStatus-style push federation with per-server timelines.

    Each instance may set its own moderation policy
    (:meth:`set_instance_policy`) — Mastodon's model: "allows federations
    to define their own rules on abuse" (§3.2).  A policy filters both
    what an instance accepts from peers and what it serves its users.
    """

    kind = "federated_single_home"

    def __init__(self, network: Network, server_ids: List[str], **kwargs):
        super().__init__(network, server_ids, **kwargs)
        # Per-server room timelines (server_id -> room -> messages).
        self._timelines: Dict[str, Dict[str, List[Message]]] = {
            server_id: defaultdict(list) for server_id in self.server_ids
        }
        self._policies: Dict[str, object] = {}
        for server_id in self.server_ids:
            node = network.node(server_id)
            node.register_handler("fed.post", self._make_post_handler(server_id))
            node.register_handler("fed.fetch", self._make_fetch_handler(server_id))
            node.register_handler("fed.push", self._make_push_handler(server_id))

    def _make_post_handler(self, server_id: str):
        def handler(node, payload: dict, sender: str) -> dict:
            user, room_id, body = payload["user"], payload["room"], payload["body"]
            if self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            room = self.room(room_id)
            room.require_member(user)
            message = Message(
                author=user, room=room_id, body=body,
                sent_at=self.network.sim.now,
                seq=len(self._timelines[server_id][room_id]),
            )
            self._timelines[server_id][room_id].append(message)
            # Push once to every other involved server; no retry, no repair.
            # Sorted: servers_for_room returns a set, and fan-out order
            # must not depend on hash order in a simulated package.
            for peer in sorted(self.servers_for_room(room_id)):
                if peer != server_id:
                    self.network.send(
                        server_id, peer, "fed.push",
                        {"room": room_id, "message": message},
                    )
            return {"msg_id": message.msg_id}

        return handler

    def set_instance_policy(self, server_id: str, policy) -> None:
        """Attach a moderation policy (see
        :mod:`repro.groupcomm.moderation`) to one instance."""
        if server_id not in self.server_ids:
            raise GroupCommError(f"unknown server {server_id!r}")
        self._policies[server_id] = policy

    def _instance_allows(self, server_id: str, message: Message) -> bool:
        policy = self._policies.get(server_id)
        return policy is None or policy.allows(message)

    def _make_push_handler(self, server_id: str):
        def handler(node, payload: dict, sender: str) -> None:
            room_id, message = payload["room"], payload["message"]
            if not self._instance_allows(server_id, message):
                return  # this instance's rules reject the content
            timeline = self._timelines[server_id][room_id]
            if all(m.msg_id != message.msg_id for m in timeline):
                timeline.append(message)

        return handler

    def _make_fetch_handler(self, server_id: str):
        def handler(node, payload: dict, sender: str) -> List[Message]:
            user, room_id = payload["user"], payload["room"]
            if self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            self.room(room_id).require_member(user)
            return sorted(
                (
                    m for m in self._timelines[server_id][room_id]
                    if self._instance_allows(server_id, m)
                ),
                key=lambda m: (m.sent_at, m.msg_id),
            )

        return handler

    # -- client operations ---------------------------------------------------------

    def post(self, user: str, room_id: str, body: Any) -> Generator:
        """Post via the user's home server; fails if the home is down."""
        home = self.home_of(user)
        try:
            answer = yield from self.network.rpc(
                user, home, "fed.post",
                {"user": user, "room": room_id, "body": body},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return answer["msg_id"]

    def fetch(self, user: str, room_id: str) -> Generator:
        """Read from the user's home server only — the single-home
        bottleneck: home down means this user sees nothing."""
        home = self.home_of(user)
        try:
            messages = yield from self.network.rpc(
                user, home, "fed.fetch", {"user": user, "room": room_id}
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return messages


class ReplicatedFederation(FederationBase):
    """Matrix-style full replication via anti-entropy."""

    kind = "federated_replicated"

    def __init__(
        self,
        network: Network,
        server_ids: List[str],
        streams: RngStreams,
        gossip_interval: float = 5.0,
        allow_failover: bool = False,
        **kwargs,
    ):
        super().__init__(network, server_ids, **kwargs)
        self.allow_failover = allow_failover
        self.replicas: Dict[str, AntiEntropyNode] = {
            server_id: AntiEntropyNode(
                network, network.node(server_id), self.server_ids, streams,
                interval=gossip_interval,
            )
            for server_id in self.server_ids
        }
        for server_id in self.server_ids:
            node = network.node(server_id)
            node.register_handler("fed.post", self._make_post_handler(server_id))
            node.register_handler("fed.fetch", self._make_fetch_handler(server_id))

    def start_replication(self) -> None:
        for replica in self.replicas.values():
            replica.start()

    def stop_replication(self) -> None:
        for replica in self.replicas.values():
            replica.stop()

    def _make_post_handler(self, server_id: str):
        def handler(node, payload: dict, sender: str) -> dict:
            user, room_id, body = payload["user"], payload["room"], payload["body"]
            encrypted = payload.get("encrypted", False)
            if self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            room = self.room(room_id)
            room.require_member(user)
            message = Message(
                author=user, room=room_id, body=body,
                sent_at=self.network.sim.now, encrypted=encrypted,
                seq=len(self.replicas[server_id].store),
            )
            self.replicas[server_id].write(
                f"{room_id}/{message.msg_id}",
                {
                    "author": message.author,
                    "room": message.room,
                    "body": message.body,
                    "sent_at": message.sent_at,
                    "encrypted": message.encrypted,
                    "seq": message.seq,
                },
            )
            return {"msg_id": message.msg_id}

        return handler

    def _make_fetch_handler(self, server_id: str):
        def handler(node, payload: dict, sender: str) -> List[Message]:
            user, room_id = payload["user"], payload["room"]
            if not self.allow_failover and self.home_of(user) != server_id:
                raise GroupCommError(f"{user!r} is not homed on {server_id!r}")
            self.room(room_id).require_member(user)
            return self._room_messages(server_id, room_id)

        return handler

    def _room_messages(self, server_id: str, room_id: str) -> List[Message]:
        store = self.replicas[server_id].store
        messages = []
        prefix = f"{room_id}/"
        for key in store.keys():
            if key.startswith(prefix):
                raw = store.get(key)
                messages.append(
                    Message(
                        author=raw["author"], room=raw["room"], body=raw["body"],
                        sent_at=raw["sent_at"], encrypted=raw["encrypted"],
                        seq=raw["seq"],
                    )
                )
        return sorted(messages, key=lambda m: (m.sent_at, m.msg_id))

    # -- client operations ---------------------------------------------------------

    def post(self, user: str, room_id: str, body: Any, encrypted: bool = False) -> Generator:
        home = self.home_of(user)
        try:
            answer = yield from self.network.rpc(
                user, home, "fed.post",
                {"user": user, "room": room_id, "body": body, "encrypted": encrypted},
            )
        except RemoteError as exc:
            raise exc.remote_exception
        return answer["msg_id"]

    def fetch(self, user: str, room_id: str) -> Generator:
        """Read from the home server; with ``allow_failover``, any live
        federation server answers when the home is down."""
        home = self.home_of(user)
        targets = [home]
        if self.allow_failover:
            targets += [s for s in self.server_ids if s != home]
        last_error: Optional[Exception] = None
        for target in targets:
            try:
                messages = yield from self.network.rpc(
                    user, target, "fed.fetch", {"user": user, "room": room_id}
                )
                return messages
            except RemoteError as exc:
                raise exc.remote_exception
            except RpcTimeoutError as exc:
                last_error = exc
                continue
        raise last_error if last_error else GroupCommError("no servers")

    def server_metadata_view(self, server_id: str) -> List[Dict[str, Any]]:
        """What one server's operator can observe: metadata always, bodies
        only when not end-to-end encrypted (§3.2's Matrix caveat)."""
        out = []
        store = self.replicas[server_id].store
        for key in store.keys():
            raw = store.get(key)
            entry: Dict[str, Any] = {
                "author": raw["author"],
                "room": raw["room"],
                "sent_at": raw["sent_at"],
            }
            if not raw["encrypted"]:
                entry["body"] = raw["body"]
            out.append(entry)
        return out
