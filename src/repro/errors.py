"""Exception hierarchy for the feudalsim reproduction library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly or reached an
    inconsistent state (e.g. scheduling into the past)."""


class NetworkError(ReproError):
    """A simulated-network operation failed (unknown node, no route,
    delivery to an offline node where the caller required liveness)."""


class NodeOfflineError(NetworkError):
    """A message or RPC was addressed to a node that is currently offline."""


class RpcTimeoutError(NetworkError):
    """An RPC did not receive a response within its timeout (lost request,
    lost response, or offline peer)."""


class RemoteError(NetworkError):
    """A handler on the remote node raised; carries the remote exception."""

    def __init__(self, remote_exception: Exception):
        super().__init__(f"remote handler raised: {remote_exception!r}")
        self.remote_exception = remote_exception


class CryptoError(ReproError):
    """A simulated cryptographic operation failed (bad signature,
    malformed key, Merkle proof mismatch)."""


class InvalidSignatureError(CryptoError):
    """Signature verification failed."""


class ChainError(ReproError):
    """Blockchain validation or state-transition failure."""


class InvalidBlockError(ChainError):
    """A block failed validation (bad proof-of-work, bad parent link,
    invalid transactions, wrong height)."""


class InvalidTransactionError(ChainError):
    """A transaction failed validation (bad signature, overspend,
    conflicting name operation)."""


class DHTError(ReproError):
    """A DHT lookup or store operation failed."""


class LookupFailedError(DHTError):
    """An iterative lookup terminated without finding the target value."""


class NamingError(ReproError):
    """Name registration or resolution failure."""


class NameTakenError(NamingError):
    """Attempted to register a name that is already owned."""


class NameNotFoundError(NamingError):
    """Attempted to resolve or update a name that does not exist."""


class NotNameOwnerError(NamingError):
    """Attempted to update or transfer a name the caller does not own."""


class StorageError(ReproError):
    """Decentralized-storage failure (missing blob, failed proof,
    contract violation)."""


class ContractError(StorageError):
    """A storage contract was violated or could not be formed."""


class ProofFailedError(StorageError):
    """A storage proof challenge was not answered correctly."""


class GroupCommError(ReproError):
    """Group-communication failure (unknown room, revoked access)."""


class AccessDeniedError(GroupCommError):
    """The platform operator or peer refused service (the 'feudal' failure
    mode: access unilaterally revoked)."""


class WebAppError(ReproError):
    """Hostless-web-application failure (unverifiable bundle, dead swarm)."""


class FeasibilityError(ReproError):
    """Invalid input to the infrastructure feasibility model."""


class FaultError(ReproError):
    """A fault plan was malformed or could not be applied to a simulation
    (unknown node id, overlapping partitions, bad window)."""


class InvariantViolation(ReproError):
    """A registered runtime invariant failed during a chaos run.

    Carries structured context so violations can be reported and traced
    rather than only stringified: the invariant ``name``, the simulated
    time ``at`` of the failing check, and a ``details`` mapping of
    whatever state the predicate chose to expose.
    """

    def __init__(self, name: str, message: str, at: float, details=None):
        super().__init__(f"invariant {name!r} violated at t={at:g}: {message}")
        self.name = name
        self.message = message
        self.at = at
        self.details = dict(details or {})


class BenchError(ReproError):
    """The benchmark harness was invoked incorrectly (unknown benchmark
    or suite, malformed report, bad comparison input)."""
