"""Censorship circumvention: relay forwarding and relay discovery.

The counterpart of the :class:`repro.faults.Censor` campaign.  A censor
hard-blocks cross-border traffic to blocklisted endpoints but must let
other cross-border traffic pass (total disconnection is the one move the
cost model makes visibly expensive) — relays live in that gap:

* :class:`RelayNode` — an *outside* volunteer that forwards requests to
  blocked services on behalf of inside clients (``relay.fwd``, a nested
  RPC).  All relay protocol methods share the ``relay.`` prefix, which
  is exactly the protocol fingerprint a campaign's DPI watches for
  (:class:`~repro.faults.Censor` ``fingerprints=("relay.",)``): every
  forwarded request leaks one detection opportunity, so relays are a
  wasting asset and discovery of fresh ones is what keeps reachability
  up.
* :func:`publish_relay_directory` / :func:`discover_relays` — DHT-based
  discovery: the volunteer directory lives under a well-known key in
  the Kademlia overlay, fetched by inside clients with plain
  (unfingerprinted) DHT lookups.
* :class:`RelayNode.announce` / gossip learning — push-based discovery:
  relays broadcast ``relay.announce`` to known peers; inside listeners
  learn addresses without a DHT round trip, but the announcement itself
  crosses the border carrying the fingerprint (a realistic leak).
* :class:`CircumventionClient` — an inside client that tries the direct
  path first and then rotates deterministically through its known
  relays, so scenarios can measure reachability over time as the censor
  re-blocks detected relays.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import (
    LookupFailedError,
    NetworkError,
    RemoteError,
    RpcTimeoutError,
)
from repro.net.transport import Network

__all__ = [
    "RELAY_DIRECTORY_KEY",
    "RELAY_METHOD_PREFIX",
    "CircumventionClient",
    "RelayNode",
    "discover_relays",
    "publish_relay_directory",
]

#: Prefix shared by every relay protocol method — and therefore the
#: fingerprint censor campaigns watch for.
RELAY_METHOD_PREFIX = "relay."

#: Well-known DHT key the volunteer relay directory is published under.
RELAY_DIRECTORY_KEY = "relay.directory"


class RelayNode:
    """An outside volunteer forwarding requests past the border.

    Registers the ``relay.fwd`` handler: the payload names a final
    destination, method, and inner payload; the relay performs the
    nested RPC and returns the destination's answer.  From the censor's
    viewpoint only the client↔relay leg crosses the border — the
    relay↔service leg is outside traffic — so a block on the *service*
    does not stop the relayed flow.  The ``relay.`` fingerprint on the
    crossing leg is what eventually gets the relay itself blocked.
    """

    def __init__(self, network: Network, node_id: str):
        self.network = network
        self.node = network.node(node_id)
        self.forwarded = 0
        self.forward_failures = 0
        self.node.register_handler("relay.fwd", self._on_forward)

    def _on_forward(self, node: Any, payload: Dict[str, Any],
                    sender: str) -> Generator:
        dst = payload["dst"]
        try:
            value = yield from self.network.rpc(
                self.node.node_id,
                dst,
                payload["method"],
                payload.get("payload"),
                timeout=payload.get("timeout", 30.0),
            )
        except (RpcTimeoutError, RemoteError) as exc:
            self.forward_failures += 1
            raise NetworkError(
                f"relay {self.node.node_id!r} could not reach {dst!r}"
            ) from exc
        self.forwarded += 1
        return value

    def announce(self, peer_ids: Iterable[str]) -> int:
        """Broadcast this relay's address to ``peer_ids``.

        Push-based discovery: cheap and fast, but each announcement that
        crosses a censored border carries the ``relay.`` fingerprint and
        is itself a detection opportunity.  Returns the number of
        announcements sent.
        """
        return self.network.broadcast(
            self.node.node_id, peer_ids, "relay.announce", self.node.node_id
        )


def publish_relay_directory(dht_node: Any, relay_ids: Iterable[str],
                            ttl: Optional[float] = None) -> Generator:
    """Publish the volunteer directory into the DHT (yieldable process).

    ``dht_node`` is a :class:`repro.dht.KademliaNode`; the directory is
    a plain tuple of relay node ids under :data:`RELAY_DIRECTORY_KEY`.
    Returns the number of replicas acknowledged.
    """
    acked = yield from dht_node.put(
        RELAY_DIRECTORY_KEY, tuple(relay_ids), ttl
    )
    return acked


def discover_relays(dht_node: Any) -> Generator:
    """Fetch the volunteer directory from the DHT (yieldable process).

    Returns a tuple of relay ids, empty when no directory is published
    or reachable.  The lookup uses ordinary ``dht.*`` methods, so it
    carries no relay fingerprint — pull-based discovery is the stealthy
    path.
    """
    try:
        value = yield from dht_node.get(RELAY_DIRECTORY_KEY)
    except (LookupFailedError, RpcTimeoutError, RemoteError):
        return ()
    return tuple(value)


class CircumventionClient:
    """An inside client that falls back to relays when directly blocked.

    :meth:`request` tries the direct RPC first; on timeout it walks the
    known-relay list in deterministic order (list order, starting from
    the relay after the last one that worked) so the same (plan, seed)
    run replays identically.  Relays that fail are skipped this attempt
    but stay in the list — a later campaign heal makes them useful
    again.

    The client also listens for ``relay.announce`` gossip and records
    every outcome in :attr:`attempts` (``(t, outcome, via)`` triples),
    which is the scenarios' reachability-over-time measurement.
    """

    def __init__(self, network: Network, node_id: str,
                 relays: Iterable[str] = ()):
        self.network = network
        self.node = network.node(node_id)
        self.relays: List[str] = []
        self.learn(relays)
        self._preferred = 0
        self.direct_ok = 0
        self.relayed_ok = 0
        self.failures = 0
        self.attempts: List[Tuple[float, str, Optional[str]]] = []
        self.node.register_handler("relay.announce", self._on_announce)

    def _on_announce(self, node: Any, payload: Any, sender: str) -> None:
        self.learn([str(payload)])

    def learn(self, relay_ids: Iterable[str]) -> None:
        """Add relays to the rotation (order-preserving, de-duplicated)."""
        for relay_id in relay_ids:
            if relay_id != self.node.node_id and relay_id not in self.relays:
                self.relays.append(relay_id)

    def request(self, dst_id: str, method: str, payload: Any = None,
                timeout: float = 5.0) -> Generator:
        """Reach ``dst_id`` directly or via a relay (yieldable process).

        Returns the handler's value.  Raises :class:`RpcTimeoutError`
        only after the direct path and every known relay have failed.
        """
        try:
            value = yield from self.network.rpc(
                self.node.node_id, dst_id, method, payload, timeout=timeout
            )
        except RpcTimeoutError:
            pass
        else:
            self.direct_ok += 1
            self.attempts.append((self.network.sim.now, "direct", None))
            return value
        for offset in range(len(self.relays)):
            index = (self._preferred + offset) % len(self.relays)
            relay_id = self.relays[index]
            try:
                value = yield from self.network.rpc(
                    self.node.node_id,
                    relay_id,
                    "relay.fwd",
                    {"dst": dst_id, "method": method, "payload": payload,
                     "timeout": timeout},
                    timeout=timeout * 2,
                )
            except (RpcTimeoutError, RemoteError):
                continue
            self._preferred = index
            self.relayed_ok += 1
            self.attempts.append((self.network.sim.now, "relay", relay_id))
            return value
        self.failures += 1
        self.attempts.append((self.network.sim.now, "blocked", None))
        raise RpcTimeoutError(
            f"{self.node.node_id!r} cannot reach {dst_id!r} directly or via"
            f" any of {len(self.relays)} relay(s)"
        )
