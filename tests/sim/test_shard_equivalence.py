"""Shard-engine vs single-process equivalence, property-based.

Unlike the cohort contract (``docs/SCALING.md`` track (a)), the shard
engine is not a statistical approximation: its determinism contract
says the *same* per-node streams drive the same draws regardless of
which shard owns a node, so for any shard count ``K`` every workload
aggregate must equal the unsharded reference — integer counters
exactly, latency percentiles to float round-off.  ``K == 1`` is held
to full identity (including the flow snapshot), and a fixed
``(seed, K)`` run twice must be byte-identical.

Workloads come from :mod:`repro.analysis.shard_driver`: the E5
ping-mesh (placed PlanetLatency, optional churn — the richest
randomness surface) and the E4 federation models (failures plus
fan-out traffic).
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.shard_driver import (
    _federation_shard_point,
    _ping_mesh_point,
    federation_workload,
)
from repro.sim.shard import ShardedSimulator, run_single_process

SETTINGS = settings(
    max_examples=10 if os.environ.get("CI") else 25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

mesh_configs = st.fixed_dictionaries({
    "n_nodes": st.integers(min_value=4, max_value=14),
    "degree": st.integers(min_value=1, max_value=4),
    "n_rounds": st.integers(min_value=1, max_value=3),
    "churn": st.booleans(),
})

seeds = st.integers(min_value=0, max_value=2**31 - 1)

EXACT_KEYS = ("pings_sent", "pongs_received")
FLOAT_KEYS = ("rtt_p50_ms", "rtt_p95_ms")


def mesh_point(config, seed, shards, engine="shard"):
    return _ping_mesh_point(
        seed=seed, shards=shards, mode="inline", engine=engine, **config
    )


class TestMeshEquivalence:
    @SETTINGS
    @given(config=mesh_configs, seed=seeds,
           shards=st.sampled_from((1, 2, 4)))
    def test_sharded_aggregates_equal_single_process(
        self, config, seed, shards
    ):
        reference = mesh_point(config, seed, shards=1, engine="single")
        sharded = mesh_point(config, seed, shards=shards)
        for key in EXACT_KEYS:
            assert sharded[key] == reference[key], (key, config, seed)
        for key in FLOAT_KEYS:
            assert sharded[key] == pytest.approx(
                reference[key], rel=1e-9, abs=1e-9
            ), (key, config, seed)

    @SETTINGS
    @given(config=mesh_configs, seed=seeds)
    def test_double_run_is_byte_identical(self, config, seed):
        first = json.dumps(mesh_point(config, seed, 2), sort_keys=True)
        second = json.dumps(mesh_point(config, seed, 2), sort_keys=True)
        assert first == second

    def test_distinct_seeds_give_distinct_meshes(self):
        config = {"n_nodes": 10, "degree": 3, "n_rounds": 2, "churn": True}
        assert mesh_point(config, 1, 2) != mesh_point(config, 2, 2)


federation_configs = st.fixed_dictionaries({
    "model_name": st.sampled_from(
        ("single_home", "replicated", "replicated_failover")
    ),
    "n_servers": st.integers(min_value=2, max_value=6),
    "n_users": st.integers(min_value=2, max_value=10),
    "n_messages": st.integers(min_value=1, max_value=6),
    "failed_servers": st.integers(min_value=0, max_value=2),
})

FEDERATION_KEYS = ("users_complete", "messages_read", "posts_stored")


class TestFederationEquivalence:
    @SETTINGS
    @given(config=federation_configs, seed=seeds,
           shards=st.sampled_from((1, 2, 4)))
    def test_sharded_aggregates_equal_single_process(
        self, config, seed, shards
    ):
        config = dict(config)
        config["failed_servers"] = min(
            config["failed_servers"], config["n_servers"] - 1
        )
        reference = run_single_process(federation_workload(**config), seed)
        sharded = _federation_shard_point(
            seed=seed, shards=shards, mode="inline", **config
        )
        merged = {
            "users_complete": sharded["users_complete"],
            "messages_read": sharded["messages_read"],
            "posts_stored": sharded["posts_stored"],
        }
        expected = {key: reference[key] for key in FEDERATION_KEYS}
        assert merged == expected, (config, seed, shards)


class TestK1Identity:
    @SETTINGS
    @given(config=mesh_configs, seed=seeds)
    def test_k1_run_is_fully_identical_to_single_process(
        self, config, seed
    ):
        from repro.analysis.shard_driver import ping_mesh_workload

        reference = run_single_process(ping_mesh_workload(**config), seed)
        coordinator = ShardedSimulator(
            ping_mesh_workload, dict(config), shards=1, seed=seed
        )
        results = coordinator.run()
        assert len(results) == 1
        merged = dict(results[0])
        merged["flow"] = coordinator.flow
        # Full structural identity, not just aggregate equality: the
        # same collect() dict and the same flow snapshot.
        assert json.dumps(merged, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert coordinator.router.messages_crossed == 0
