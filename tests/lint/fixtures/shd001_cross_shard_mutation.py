"""SHD001 positive fixture: moving cross-shard state by hand."""


def smuggle(network, router, envelope):
    network._shard_outbox = []
    network._shard_assignment = {"a": 0, "b": 1}
    router._envelopes_in_transit = [envelope]
    network._inject_envelope(envelope)
