"""Deterministic discrete-event simulation engine.

This is the substrate every protocol simulation in the library runs on.  It
is intentionally small: an event queue ordered by ``(time, sequence)``, plus
a generator-based process abstraction similar in spirit to SimPy.

Determinism guarantees
----------------------
* Events scheduled for the same instant fire in scheduling order (FIFO via a
  monotonic sequence number), never in hash or id order.
* All randomness used by simulations must come from
  :class:`repro.sim.rng.RngStreams`, which derives independent seeded
  streams by name.  The engine itself is randomness-free.

Subscription and cancellation
-----------------------------
Every wait a process enters — a :class:`Timeout`, a :class:`Signal`, a
combinator — registers a *subscription* that returns a cancel handle.
The engine uses these to keep the event queue tight:

* A process that resumes (normally or via :class:`Interrupt`) tears down
  the subscription for the wait it is leaving, so a signal can never
  re-resume a process that has moved on (the classic double-resume bug).
* :class:`AnyOf` cancels its losing children the moment the first child
  completes: a losing ``Timeout``'s heap entry is invalidated instead of
  sitting in the queue until it expires, and a losing ``Signal`` waiter
  is pruned from the waiter list.  (A losing ``Process`` keeps *running*
  — only the join subscription is dropped.)
* :meth:`Signal.fire` skips waiters whose process has died, and prunes
  cancelled entries, instead of scheduling dead resumes.
* A combinator that has already completed still tracks the resume event
  it scheduled, so cancelling the wait *after* completion (a
  same-instant interrupt racing the resume) tombstones the stale
  wake-up instead of letting it reach the process's next wait.

Observability
-------------
``Simulator(tracer=..., metrics=...)`` — or an ambient
:func:`repro.obs.observe` block — turns on per-event tracing and queue
metrics (see ``docs/OBSERVABILITY.md``).  Disabled (the default), every
hook site is a single ``is not None`` check.

Typical usage::

    sim = Simulator()

    def worker(sim):
        yield sim.timeout(5.0)
        print("woke at", sim.now)

    sim.spawn(worker(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.metrics import Metrics
from repro.obs.runtime import active as _active_observation
from repro.obs.tracer import Tracer

__all__ = [
    "Simulator",
    "Process",
    "Signal",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
]

#: A subscription's cancel handle: idempotent, safe to call after firing.
CancelFn = Callable[[], None]


def _callback_name(callback: Callable) -> str:
    """Deterministic display name for a scheduled callback."""
    while isinstance(callback, partial):
        callback = callback.func
    name = getattr(callback, "__qualname__", None)
    if name:
        return name
    return type(callback).__name__


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted.

    The ``cause`` attribute carries the interrupter-supplied reason.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Waitable:
    """Base for things a process may ``yield`` on.

    Both subscription forms return a :data:`CancelFn` that detaches the
    registration (idempotently); combinators use it to cancel losers and
    processes use it to leave a wait cleanly.
    """

    __slots__ = ()

    def _subscribe(self, sim: "Simulator", process: "Process") -> CancelFn:
        """Arrange for ``process._resume(value)`` on completion."""
        raise NotImplementedError

    def _subscribe_callback(
        self, sim: "Simulator", callback: Callable[[Any], None]
    ) -> CancelFn:
        """Arrange for ``callback(value)`` on completion (combinators)."""
        raise NotImplementedError


class Timeout(_Waitable):
    """Wait for a fixed amount of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)

    def _subscribe(self, sim: "Simulator", process: "Process") -> CancelFn:
        event = sim.schedule(self.delay, process._resume, None)
        return event.cancel

    def _subscribe_callback(
        self, sim: "Simulator", callback: Callable[[Any], None]
    ) -> CancelFn:
        event = sim.schedule(self.delay, callback, None)
        return event.cancel

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class _SignalWaiter:
    """One registration on a pending :class:`Signal`.

    ``owner`` is the waiting :class:`Process` when the wait came from a
    plain ``yield signal`` (used for the liveness guard at fire time);
    combinator callbacks have no owner.  ``event`` is filled in by
    :meth:`Signal.fire` so a cancel arriving *after* the fire can still
    invalidate the scheduled resume.
    """

    __slots__ = ("signal", "sim", "callback", "owner", "event", "cancelled")

    def __init__(
        self,
        signal: "Signal",
        sim: "Simulator",
        callback: Callable[[Any], None],
        owner: Optional["Process"],
    ):
        self.signal = signal
        self.sim = sim
        self.callback = callback
        self.owner = owner
        self.event: Optional[_ScheduledEvent] = None
        self.cancelled = False

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        event = self.event
        if event is not None:
            # fire() already scheduled the resume: invalidate it.
            event.cancel()
        else:
            # Still pending: prune the waiter list so long-lived
            # signals do not accumulate dead registrations.
            try:
                self.signal._waiters.remove(self)
            except ValueError:
                pass


class Signal(_Waitable):
    """A one-shot waitable event that processes can block on.

    A signal starts *pending*; calling :meth:`fire` wakes every waiter with
    the supplied value.  Waiting on an already-fired signal resumes the
    waiter immediately (at the current instant) with the stored value.

    Waiters that cancelled their subscription, or whose process has died,
    are pruned rather than resumed (dead waiters also count into the
    ``sim.signal_dead_waiters_skipped`` metric when metrics are active).
    """

    __slots__ = ("name", "_fired", "_value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._waiters: List[_SignalWaiter] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        return self._value

    @property
    def waiter_count(self) -> int:
        """Live (non-cancelled) waiters still subscribed."""
        return sum(1 for w in self._waiters if not w.cancelled)

    def fire(self, value: Any = None) -> None:
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if waiter.cancelled:
                continue
            if waiter.owner is not None and not waiter.owner.alive:
                # Liveness guard: never schedule a resume for a process
                # that already finished; count it so leaks are visible.
                metrics = waiter.sim._metrics
                if metrics is not None:
                    metrics.inc("sim.signal_dead_waiters_skipped")
                continue
            waiter.event = waiter.sim.schedule(0.0, waiter.callback, value)

    def _add_waiter(
        self,
        sim: "Simulator",
        callback: Callable[[Any], None],
        owner: Optional["Process"],
    ) -> CancelFn:
        if self._fired:
            event = sim.schedule(0.0, callback, self._value)
            return event.cancel
        waiter = _SignalWaiter(self, sim, callback, owner)
        self._waiters.append(waiter)
        return waiter.cancel

    def _subscribe(self, sim: "Simulator", process: "Process") -> CancelFn:
        return self._add_waiter(sim, process._resume, owner=process)

    def _subscribe_callback(
        self, sim: "Simulator", callback: Callable[[Any], None]
    ) -> CancelFn:
        return self._add_waiter(sim, callback, owner=None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


def _child_subscribe(
    sim: "Simulator", child: Any, callback: Callable[[Any], None]
) -> CancelFn:
    """Attach ``callback`` to a combinator child; returns its cancel.

    Children may be :class:`Signal`, :class:`Timeout`, :class:`Process`
    (completion join), or nested :class:`AllOf`/:class:`AnyOf`.
    """
    if isinstance(child, _Waitable):
        return child._subscribe_callback(sim, callback)
    if isinstance(child, Process):
        return child.completion._subscribe_callback(sim, callback)
    raise SimulationError(f"cannot combine waitable {child!r}")


class _AllOfWait:
    """In-flight state of one :class:`AllOf` subscription.

    A slotted object with bound-method callbacks: cheaper per wait than
    the equivalent closure pile, which matters because combinators sit on
    the RPC hot path.
    """

    __slots__ = ("callback", "results", "remaining", "cancelled", "cancels",
                 "event")

    def __init__(self, n: int, callback: Callable[[Any], None]):
        self.callback: Optional[Callable[[Any], None]] = callback
        self.results: List[Any] = [None] * n
        self.remaining = n
        self.cancelled = False
        self.cancels: List[CancelFn] = []
        self.event: Optional[_ScheduledEvent] = None

    def child_done(self, index: int, value: Any) -> None:
        if self.cancelled:
            return
        self.results[index] = value
        self.remaining -= 1
        if self.remaining == 0:
            callback = self.callback
            # Break the subscription reference cycle (wait -> cancels ->
            # child waiters -> partial -> wait) so the cluster is freed
            # by refcounting instead of lingering for a GC pass.
            self.cancels = []
            self.callback = None
            if callback is not None:
                # A process-subscribe callback is schedule() and returns
                # the resume event; keep it so a cancel landing between
                # completion and the resume firing (same-instant
                # interrupt) can still tombstone the stale wake-up.
                maybe_event = callback(list(self.results))
                if isinstance(maybe_event, _ScheduledEvent):
                    self.event = maybe_event

    def cancel(self) -> None:
        # After completion the only live resource is the scheduled
        # resume; invalidate it so it cannot reach the process's next
        # wait (idempotent: event.cancel is a no-op once popped).
        event, self.event = self.event, None
        if event is not None:
            event.cancel()
        if self.cancelled:
            return
        self.cancelled = True
        cancels = self.cancels
        self.cancels = []
        self.callback = None
        for child_cancel in cancels:
            child_cancel()


class AllOf(_Waitable):
    """Wait until every child waitable has completed.

    Resumes the waiter with a list of child results in child order.
    Children may be :class:`Signal`, :class:`Timeout`, :class:`Process`,
    or nested combinators.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("AllOf requires at least one child")

    def _subscribe_callback(
        self, sim: "Simulator", callback: Callable[[Any], None]
    ) -> CancelFn:
        wait = _AllOfWait(len(self.children), callback)
        cancels = wait.cancels
        child_done = wait.child_done
        for i, child in enumerate(self.children):
            cancels.append(_child_subscribe(sim, child, partial(child_done, i)))
        return wait.cancel

    def _subscribe(self, sim: "Simulator", process: "Process") -> CancelFn:
        # partial(schedule, 0.0, resume) called with the results list is
        # exactly schedule(0.0, resume, results) — no closure needed.
        return self._subscribe_callback(
            sim, partial(sim.schedule, 0.0, process._resume)
        )


class _AnyOfWait:
    """In-flight state of one :class:`AnyOf` subscription.

    First ``child_done`` wins, cancels every other child's subscription,
    and delivers ``(index, value)``; everything after is a no-op.
    """

    __slots__ = ("sim", "callback", "done", "cancels", "event")

    def __init__(self, sim: "Simulator", callback: Callable[[Any], None]):
        self.sim = sim
        self.callback: Optional[Callable[[Any], None]] = callback
        self.done = False
        self.cancels: List[CancelFn] = []
        self.event: Optional[_ScheduledEvent] = None

    def child_done(self, index: int, value: Any) -> None:
        if self.done:
            return
        self.done = True
        cancels = self.cancels
        for j, child_cancel in enumerate(cancels):
            if j != index:
                child_cancel()
        metrics = self.sim._metrics
        if metrics is not None:
            metrics.inc("sim.anyof_losers_cancelled", len(cancels) - 1)
        callback = self.callback
        # Break the subscription reference cycle (wait -> cancels ->
        # child waiters -> partial -> wait) so the cluster is freed by
        # refcounting instead of lingering for a GC pass.
        self.cancels = []
        self.callback = None
        if callback is not None:
            # A process-subscribe callback is schedule() and returns
            # the resume event; keep it so a cancel landing between
            # completion and the resume firing (same-instant
            # interrupt) can still tombstone the stale wake-up.
            maybe_event = callback((index, value))
            if isinstance(maybe_event, _ScheduledEvent):
                self.event = maybe_event

    def cancel(self) -> None:
        # After completion the only live resource is the scheduled
        # resume; invalidate it so it cannot reach the process's next
        # wait (idempotent: event.cancel is a no-op once popped).
        event, self.event = self.event, None
        if event is not None:
            event.cancel()
        if self.done:
            return
        self.done = True
        cancels = self.cancels
        self.cancels = []
        self.callback = None
        for child_cancel in cancels:
            child_cancel()


class AnyOf(_Waitable):
    """Wait until the first child waitable completes.

    Resumes the waiter with ``(index, value)`` of the first completion.
    The winner *cancels* every losing child's subscription: a losing
    ``Timeout`` leaves the event queue immediately (instead of keeping
    the simulation alive until it expires), and a losing ``Signal``
    waiter is pruned.  A losing ``Process`` keeps running — only the
    join is dropped.  Same-instant completions resolve in child
    scheduling order (FIFO), deterministically.
    """

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Any]):
        self.children = list(children)
        if not self.children:
            raise SimulationError("AnyOf requires at least one child")

    def _subscribe_callback(
        self, sim: "Simulator", callback: Callable[[Any], None]
    ) -> CancelFn:
        wait = _AnyOfWait(sim, callback)
        cancels = wait.cancels
        child_done = wait.child_done
        for i, child in enumerate(self.children):
            cancels.append(_child_subscribe(sim, child, partial(child_done, i)))
        return wait.cancel

    def _subscribe(self, sim: "Simulator", process: "Process") -> CancelFn:
        return self._subscribe_callback(
            sim, partial(sim.schedule, 0.0, process._resume)
        )


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a ``float``/``int`` — sleep for that many simulated seconds;
    * a :class:`Timeout`, :class:`Signal`, :class:`AllOf`, :class:`AnyOf`;
    * another :class:`Process` — wait for it to finish (join).

    The value sent back into the generator is the result of the wait (the
    signal's value, the joined process's return value, ``None`` for
    timeouts).  The process's own return value (via ``return x``) becomes
    the value of its completion signal.

    Every resume first cancels the subscription of the wait being left,
    so no stale wake-up (a signal firing late, an obsolete timeout, a
    superseded interrupt event) can ever reach the process at a later
    wait.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__};"
                " did you forget to call the generator function?"
            )
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.completion = Signal(f"done:{self.name}")
        self._alive = True
        self._interrupt_pending: Optional[Interrupt] = None
        self._interrupt_event: Optional[_ScheduledEvent] = None
        self._wait_cancel: Optional[CancelFn] = None

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the finished process (raises if still running)."""
        return self.completion.value

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        Interrupting a dead process is a no-op.
        """
        if not self._alive:
            return
        self._interrupt_pending = Interrupt(cause)
        self._interrupt_event = self.sim.schedule(0.0, self._resume, None)

    def _resume(self, value: Any) -> None:
        if not self._alive:
            # A wake-up reached a finished process: every such resume is
            # a subscription the engine failed to tear down (the
            # double-resume leak).  Counted so the chaos invariant
            # harness (repro.faults.invariants.no_double_resume) can
            # assert it stays zero.
            self.sim._stale_resumes += 1
            return
        # Leave the current wait: detach its subscription so it cannot
        # deliver a second, stale resume later.
        cancel, self._wait_cancel = self._wait_cancel, None
        if cancel is not None:
            cancel()
        try:
            if self._interrupt_pending is not None:
                exc, self._interrupt_pending = self._interrupt_pending, None
                if self._interrupt_event is not None:
                    # The interrupt is being delivered by this resume;
                    # its own wake-up event (if different) is now stale.
                    self._interrupt_event.cancel()
                    self._interrupt_event = None
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Interrupt:
            self._finish(None)
            return
        self._wait_on(target)

    def _finish(self, value: Any) -> None:
        self._alive = False
        sim = self.sim
        if sim._tracer is not None:
            sim._tracer.emit("process_finished", t=sim.now, name=self.name)
        if sim._metrics is not None:
            sim._metrics.inc("sim.processes_finished")
        self.completion.fire(value)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (int, float)):
            target = Timeout(target)
        if isinstance(target, Process):
            target = target.completion
        if not isinstance(target, _Waitable):
            raise SimulationError(
                f"process {self.name!r} yielded unwaitable {target!r}"
            )
        self._wait_cancel = target._subscribe(self.sim, self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"Process({self.name!r}, {state})"


class _ScheduledEvent:
    """Handle for one scheduled callback.

    The heap itself stores ``(time, seq, event)`` triples: ``seq`` is
    unique, so tuple comparison resolves at C speed on the first two
    elements and never calls back into Python — measurably faster than
    a ``__lt__`` on this class in event-dense simulations.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "popped",
                 "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable,
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.popped = False
        self.sim = sim

    def cancel(self) -> None:
        """Idempotent; cancelling an already-executed event is a no-op.

        A cancelled event stays in the heap as a tombstone (removal from
        the middle of a binary heap is O(n)); the owning simulator counts
        tombstones so queue-depth accounting stays exact and O(1).  The
        ``event_cancelled`` trace and ``sim.events_cancelled`` counter
        are recorded here, at cancellation time, so events cancelled but
        never drained before ``run()`` returns are still counted.
        """
        if self.cancelled or self.popped:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._tombstones += 1
            if sim._tracer is not None:
                sim._tracer.emit("event_cancelled", t=sim.now,
                                 event_seq=self.seq)
            if sim._metrics is not None:
                sim._metrics.inc("sim.events_cancelled")


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current simulated time in seconds.  Starts at 0.0.

    Parameters
    ----------
    tracer / metrics:
        Optional :class:`repro.obs.Tracer` / :class:`repro.obs.Metrics`
        hooks.  Each hook that is omitted independently adopts the
        corresponding ambient one from an enclosing
        :func:`repro.obs.observe` block (passing only a tracer still
        picks up the ambient metrics, and vice versa); with no
        observation active both stay ``None`` and instrumentation costs
        one pointer check per hook site.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        if tracer is None or metrics is None:
            observation = _active_observation()
            if observation is not None:
                if tracer is None:
                    tracer = observation.tracer
                if metrics is None:
                    metrics = observation.metrics
        self._tracer = tracer
        self._metrics = metrics
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, _ScheduledEvent]] = []
        self._seq = 0
        self._running = False
        self._processed = 0
        self._tombstones = 0  # cancelled events still sitting in the heap
        self._stale_resumes = 0  # wake-ups delivered to dead processes

    @property
    def tracer(self) -> Optional[Tracer]:
        return self._tracer

    @property
    def metrics(self) -> Optional[Metrics]:
        return self._metrics

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live events still queued (cancelled tombstones excluded)."""
        return len(self._queue) - self._tombstones

    @property
    def stale_resumes(self) -> int:
        """Resumes delivered to already-finished processes.

        Zero in a hygienic run: every wait's subscription is torn down
        when the process leaves it, so nothing should ever wake the
        dead.  A non-zero count means a subscription leaked — the
        condition the chaos harness checks continuously.
        """
        return self._stale_resumes

    def next_event_time(self) -> Optional[float]:
        """Simulated time of the earliest live event, or ``None``.

        Cancelled tombstones are skipped (without draining them, so
        calling this never perturbs run-loop accounting).  The sharded
        engine uses this to size conservative synchronization windows.
        """
        best: Optional[float] = None
        for time_, _seq, event in self._queue:
            if not event.cancelled and (best is None or time_ < best):
                best = time_
        return best

    def schedule(
        self, delay: float, callback: Callable, *args: Any
    ) -> _ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns a handle whose :meth:`cancel` prevents execution.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        seq = self._seq
        self._seq = seq + 1
        event = _ScheduledEvent(self.now + delay, seq, callback, args, self)
        heapq.heappush(self._queue, (event.time, seq, event))
        if self._tracer is not None:
            self._tracer.emit(
                "event_scheduled", t=self.now, at=event.time,
                event_seq=event.seq, cb=_callback_name(callback),
            )
        if self._metrics is not None:
            self._metrics.inc("sim.events_scheduled")
        return event

    def schedule_at(
        self, when: float, callback: Callable, *args: Any
    ) -> _ScheduledEvent:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self.now, callback, *args)

    def timeout(self, delay: float) -> Timeout:
        """Create a timeout waitable (sugar for ``Timeout(delay)``)."""
        return Timeout(delay)

    def signal(self, name: str = "") -> Signal:
        """Create a fresh one-shot signal."""
        return Signal(name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator; it runs at the current
        instant (before time advances)."""
        process = Process(self, generator, name)
        if self._tracer is not None:
            self._tracer.emit("process_spawned", t=self.now, name=process.name)
        if self._metrics is not None:
            self._metrics.inc("sim.processes_spawned")
        self.schedule(0.0, process._resume, None)
        return process

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
        inclusive: bool = True,
    ) -> float:
        """Run until the queue empties or simulated time passes ``until``.

        Returns the final simulated time.  ``max_events`` guards against
        runaway simulations (raises :class:`SimulationError` when hit).
        ``inclusive=False`` stops *before* events scheduled exactly at
        ``until`` — the half-open windows the sharded engine advances
        in, so an event at a window boundary runs in the next window,
        after cross-shard envelopes for that instant have been injected.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        tracer = self._tracer
        metrics = self._metrics
        try:
            budget = max_events
            queue = self._queue
            pop = heapq.heappop
            while queue:
                event = queue[0][2]
                if event.cancelled:
                    # Tombstone: already traced/counted at cancel time.
                    pop(queue)
                    event.popped = True
                    self._tombstones -= 1
                    if metrics is not None:
                        metrics.inc("sim.tombstones_drained")
                    continue
                if until is not None and (
                    event.time > until
                    or (not inclusive and event.time >= until)
                ):
                    break
                pop(queue)
                event.popped = True
                self.now = event.time
                self._processed += 1
                if tracer is not None or metrics is not None:
                    # One depth computation shared by both hooks (the
                    # pending_events property re-derives it each call).
                    depth = len(queue) - self._tombstones
                    if tracer is not None:
                        tracer.emit(
                            "event_fired", t=self.now, event_seq=event.seq,
                            cb=_callback_name(event.callback),
                            depth=depth,
                        )
                    if metrics is not None:
                        metrics.inc("sim.events_fired")
                        metrics.observe("sim.queue_depth", depth)
                event.callback(*event.args)
                budget -= 1
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
            if metrics is not None:
                metrics.set_gauge("sim.pending_at_run_end",
                                  float(self.pending_events))
        return self.now

    def run_process(
        self, generator: Generator, name: str = "", until: Optional[float] = None
    ) -> Any:
        """Spawn a process, run the simulation, and return the process's
        return value.

        With ``until=None`` runs until the event queue drains — only safe
        when no perpetual background processes (miners, gossip loops) are
        scheduled.  Pass a horizon when they are; raises if the process has
        not finished by then.
        """
        process = self.spawn(generator, name)
        if until is None:
            self.run()
        else:
            while process.alive and self.now < until:
                # Advance in slices so we stop soon after completion.
                self.run(until=min(until, self.now + 1000.0))
        if process.alive:
            raise SimulationError(
                f"process {process.name!r} did not finish"
                + (" (deadlock?)" if until is None else f" by t={until}")
            )
        return process.result

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={self.pending_events})"
