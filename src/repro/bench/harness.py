"""The timing harness: the only place in :mod:`repro.bench` that reads
the host clock.

Each benchmark body runs ``repetitions`` times against a fresh
:class:`~repro.obs.metrics.Metrics` registry.  Two things come out:

* **Wall clock** — best-of-N (and mean-of-N) seconds.  Best-of is the
  standard noise-resistant estimator for short deterministic workloads:
  the minimum is the run least disturbed by the host.
* **Work counters** — the counter section of the metrics snapshot.
  These are functions of the workload alone (events fired, messages
  delivered, cache hits), so they must be byte-identical across
  repetitions and across machines; the harness checks that on every run
  and marks the result non-deterministic when any repetition disagrees.
  Gauges and histograms are excluded — several (``sweep.wall_s``, task
  wall-time histograms) record host time by design.

Regression detection builds on the split: comparisons
(:mod:`repro.bench.compare`) require work counters to match *exactly*
while wall clock only has to stay inside a tolerance band, so a real
algorithmic regression (more events, more messages, lost cache hits) is
caught even on a noisy CI machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import BenchError
from repro.obs.metrics import Metrics

from repro.bench.registry import Benchmark, select_benchmarks

__all__ = [
    "DEFAULT_REPETITIONS",
    "BenchResult",
    "run_benchmark",
    "run_suite",
    "work_counters",
]

DEFAULT_REPETITIONS = 3


@dataclass
class BenchResult:
    """Outcome of one benchmark across all repetitions."""

    name: str
    suite: str
    repetitions: int
    best_s: float
    mean_s: float
    work: Dict[str, int] = field(default_factory=dict)
    deterministic: bool = True

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the report schema's per-benchmark record)."""
        return {
            "name": self.name,
            "suite": self.suite,
            "repetitions": self.repetitions,
            "best_s": round(self.best_s, 6),
            "mean_s": round(self.mean_s, 6),
            "work": dict(sorted(self.work.items())),
            "deterministic": self.deterministic,
        }


def work_counters(metrics: Metrics) -> Dict[str, int]:
    """The deterministic work record of one body execution: the sorted
    counter snapshot (gauges/histograms carry host time; excluded)."""
    return dict(metrics.snapshot()["counters"])


def run_benchmark(
    bench: Benchmark, repetitions: int = DEFAULT_REPETITIONS
) -> BenchResult:
    """Execute one benchmark ``repetitions`` times; time it, check the
    work counters repeat exactly."""
    if repetitions < 1:
        raise BenchError(f"repetitions must be >= 1, got {repetitions}")
    timings: List[float] = []
    work: Optional[Dict[str, int]] = None
    deterministic = True
    for _rep in range(repetitions):
        metrics = Metrics()
        start = time.perf_counter()
        bench.fn(metrics)
        timings.append(time.perf_counter() - start)
        counters = work_counters(metrics)
        if work is None:
            work = counters
        elif counters != work:
            deterministic = False
    return BenchResult(
        name=bench.name,
        suite=bench.suite,
        repetitions=repetitions,
        best_s=min(timings),
        mean_s=sum(timings) / len(timings),
        work=work or {},
        deterministic=deterministic,
    )


def run_suite(
    suite: Optional[str] = None,
    repetitions: int = DEFAULT_REPETITIONS,
    name_filter: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run every selected benchmark, in name order.

    ``progress`` (when given) receives each benchmark's name just before
    it runs — the CLI uses it for live stderr feedback.
    """
    chosen = select_benchmarks(suite=suite, name_filter=name_filter)
    results: List[BenchResult] = []
    for bench in chosen:
        if progress is not None:
            progress(bench.name)
        results.append(run_benchmark(bench, repetitions=repetitions))
    return results
