"""Peer discovery for site swarms: a tracker, plus a DHT-backed variant.

ZeroNet looks site addresses up "on trackers or DHTs" (§3.4); both are
provided.  The tracker is simple and centralized (a single point of
failure the tests exercise); the DHT variant stores the seeder list under
the site address in a Kademlia overlay.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator, List, Optional, Set

from repro.dht.kademlia import KademliaNode
from repro.errors import LookupFailedError, RemoteError, RpcTimeoutError, WebAppError
from repro.net.node import NodeClass
from repro.net.transport import Network

__all__ = ["Tracker", "ReplicatedTracker", "DhtPeerDirectory"]


class Tracker:
    """A classic announce/get-peers tracker on one node."""

    def __init__(self, network: Network, tracker_id: str = "tracker"):
        self.network = network
        self.tracker_id = tracker_id
        self.node = (
            network.node(tracker_id)
            if network.has_node(tracker_id)
            else network.create_node(tracker_id, node_class=NodeClass.DATACENTER)
        )
        self._peers: Dict[str, Set[str]] = defaultdict(set)
        self.node.register_handler("tracker.announce", self._on_announce)
        self.node.register_handler("tracker.get_peers", self._on_get_peers)
        self.node.register_handler("tracker.depart", self._on_depart)

    def _on_announce(self, node, payload: dict, sender: str) -> int:
        self._peers[payload["site"]].add(payload["peer"])
        return len(self._peers[payload["site"]])

    def _on_depart(self, node, payload: dict, sender: str) -> bool:
        self._peers[payload["site"]].discard(payload["peer"])
        return True

    def _on_get_peers(self, node, payload: dict, sender: str) -> List[str]:
        return sorted(self._peers.get(payload["site"], set()))

    # -- client side -------------------------------------------------------

    def announce(self, peer: str, site: str) -> Generator:
        count = yield from self.network.rpc(
            peer, self.tracker_id, "tracker.announce",
            {"site": site, "peer": peer},
        )
        return count

    def depart(self, peer: str, site: str) -> Generator:
        ok = yield from self.network.rpc(
            peer, self.tracker_id, "tracker.depart",
            {"site": site, "peer": peer},
        )
        return ok

    def get_peers(self, requester: str, site: str) -> Generator:
        peers = yield from self.network.rpc(
            requester, self.tracker_id, "tracker.get_peers", {"site": site}
        )
        return peers


class ReplicatedTracker:
    """A tracker federation: k tracker replicas kept consistent by
    anti-entropy, with client-side failover.

    Addresses the single point of failure the plain :class:`Tracker`
    exhibits (and the webapp tests demonstrate) — the §5.1 agenda item
    "eliminating single points of failure in federated approaches",
    applied to peer discovery.
    """

    def __init__(
        self,
        network: Network,
        streams,
        tracker_ids: Optional[List[str]] = None,
        gossip_interval: float = 5.0,
    ):
        from repro.gossip.antientropy import AntiEntropyNode

        self.network = network
        self.tracker_ids = list(
            tracker_ids if tracker_ids is not None else ["trk0", "trk1", "trk2"]
        )
        if not self.tracker_ids:
            raise WebAppError("need at least one tracker id")
        self._replicas: Dict[str, "AntiEntropyNode"] = {}
        for tracker_id in self.tracker_ids:
            node = (
                network.node(tracker_id)
                if network.has_node(tracker_id)
                else network.create_node(tracker_id, node_class=NodeClass.HOME_SERVER)
            )
            replica = AntiEntropyNode(
                network, node, self.tracker_ids, streams,
                interval=gossip_interval,
            )
            self._replicas[tracker_id] = replica
            node.register_handler(
                "tracker.announce", self._make_announce(tracker_id)
            )
            node.register_handler(
                "tracker.get_peers", self._make_get_peers(tracker_id)
            )
            node.register_handler(
                "tracker.depart", self._make_depart(tracker_id)
            )

    def start_replication(self) -> None:
        for replica in self._replicas.values():
            replica.start()

    def stop_replication(self) -> None:
        for replica in self._replicas.values():
            replica.stop()

    # -- handlers (per replica) ---------------------------------------------

    def _peers_at(self, tracker_id: str, site: str) -> Set[str]:
        value = self._replicas[tracker_id].store.get(f"peers:{site}")
        return set(value) if value else set()

    def _make_announce(self, tracker_id: str):
        def handler(node, payload: dict, sender: str) -> int:
            site, peer = payload["site"], payload["peer"]
            peers = self._peers_at(tracker_id, site) | {peer}
            self._replicas[tracker_id].write(f"peers:{site}", sorted(peers))
            return len(peers)

        return handler

    def _make_depart(self, tracker_id: str):
        def handler(node, payload: dict, sender: str) -> bool:
            site, peer = payload["site"], payload["peer"]
            peers = self._peers_at(tracker_id, site) - {peer}
            self._replicas[tracker_id].write(f"peers:{site}", sorted(peers))
            return True

        return handler

    def _make_get_peers(self, tracker_id: str):
        def handler(node, payload: dict, sender: str) -> List[str]:
            return sorted(self._peers_at(tracker_id, payload["site"]))

        return handler

    # -- client side with failover ---------------------------------------------

    def _call(self, requester: str, method: str, payload: dict) -> Generator:
        last_error: Optional[Exception] = None
        for tracker_id in self.tracker_ids:
            try:
                result = yield from self.network.rpc(
                    requester, tracker_id, method, payload, timeout=5.0
                )
                return result
            except (RpcTimeoutError, RemoteError) as exc:
                last_error = exc
                continue
        raise WebAppError("every tracker replica is unreachable") from last_error

    def announce(self, peer: str, site: str) -> Generator:
        result = yield from self._call(
            peer, "tracker.announce", {"site": site, "peer": peer}
        )
        return result

    def depart(self, peer: str, site: str) -> Generator:
        result = yield from self._call(
            peer, "tracker.depart", {"site": site, "peer": peer}
        )
        return result

    def get_peers(self, requester: str, site: str) -> Generator:
        result = yield from self._call(
            requester, "tracker.get_peers", {"site": site}
        )
        return result


class DhtPeerDirectory:
    """Seeder lists stored in a Kademlia overlay (no single tracker).

    Each announce re-publishes the full seeder list the announcer knows —
    a simplification of ZeroNet's per-peer announcements that preserves
    the property being tested: discovery survives any single node's death.
    """

    def __init__(self, dht_node: KademliaNode):
        self.dht = dht_node

    @staticmethod
    def _key(site: str) -> str:
        return f"site-peers:{site}"

    def announce(self, peer: str, site: str) -> Generator:
        current: List[str] = []
        try:
            current = yield from self.dht.get(self._key(site))
        except LookupFailedError:
            current = []
        if peer not in current:
            current = sorted(set(current) | {peer})
        acked = yield from self.dht.put(self._key(site), current)
        return acked

    def get_peers(self, site: str) -> Generator:
        try:
            peers = yield from self.dht.get(self._key(site))
        except LookupFailedError:
            return []
        return list(peers)
