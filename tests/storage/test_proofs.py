"""Tests for providers, the four proof games, and attacker detection."""

import pytest

from repro.errors import StorageError
from repro.net import ConstantLatency, Network
from repro.sim import RngStreams, Simulator
from repro.storage import (
    Commitment,
    StorageProvider,
    StorageVerifier,
    make_random_blob,
    seal_blob,
)


def setup(seed=1, latency=0.01, deadline=0.5):
    sim = Simulator()
    streams = RngStreams(seed)
    network = Network(sim, streams, latency=ConstantLatency(latency))
    verifier = StorageVerifier(
        network, "auditor", streams, response_deadline=deadline
    )
    return sim, streams, network, verifier


def commit(blob):
    return Commitment(blob.merkle_root, len(blob.chunks))


class TestHonestProvider:
    def test_challenge_passes(self):
        sim, streams, network, verifier = setup()
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 8192, chunk_size=512)
        provider.accept_blob(blob)

        def scenario():
            return (yield from verifier.proof_of_storage("p1", commit(blob), rounds=5))

        report = sim.run_process(scenario())
        assert report.passed
        assert provider.challenges_answered == 5

    def test_honest_answers_within_deadline(self):
        sim, streams, network, verifier = setup(deadline=0.5)
        provider = StorageProvider(network, "p1", read_time=0.005)
        blob = make_random_blob(streams, 4096, chunk_size=512)
        provider.accept_blob(blob)

        def scenario():
            return (yield from verifier.challenge_once("p1", commit(blob)))

        outcome = sim.run_process(scenario())
        assert outcome.ok and outcome.deadline_met

    def test_retrieve_all_reassembles(self):
        sim, streams, network, verifier = setup()
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 3000, chunk_size=512)
        provider.accept_blob(blob)

        def scenario():
            chunks = yield from verifier.retrieve_all("p1", commit(blob))
            return b"".join(chunks)

        assert sim.run_process(scenario()) == blob.to_bytes()

    def test_unknown_commitment_fails_challenge(self):
        sim, streams, network, verifier = setup()
        StorageProvider(network, "p1")
        blob = make_random_blob(streams, 1024, chunk_size=512)

        def scenario():
            return (yield from verifier.challenge_once("p1", commit(blob)))

        outcome = sim.run_process(scenario())
        assert not outcome.ok

    def test_capacity_enforced(self):
        sim, streams, network, verifier = setup()
        provider = StorageProvider(network, "tiny", capacity_bytes=1000)
        blob = make_random_blob(streams, 5000, chunk_size=512)
        with pytest.raises(StorageError):
            provider.accept_blob(blob)


class TestDroppingProvider:
    def test_detection_probability_tracks_dropped_fraction(self):
        sim, streams, network, verifier = setup(seed=5)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 64 * 512, chunk_size=512)  # 64 chunks
        provider.accept_blob(blob)
        provider.drop_chunks(blob.merkle_root, 0.25, streams.stream("analysis.drop"))

        def scenario():
            failures = 0
            for _ in range(200):
                outcome = yield from verifier.challenge_once("p1", commit(blob))
                if not outcome.ok:
                    failures += 1
            return failures

        failures = sim.run_process(scenario())
        assert 25 < failures < 80  # expected ~50 (25% of 200)

    def test_multi_round_audit_catches_small_drops(self):
        sim, streams, network, verifier = setup(seed=6)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 100 * 512, chunk_size=512)
        provider.accept_blob(blob)
        provider.drop_chunks(blob.merkle_root, 0.1, streams.stream("analysis.drop"))

        def scenario():
            report = yield from verifier.proof_of_storage(
                "p1", commit(blob), rounds=50
            )
            return report

        report = sim.run_process(scenario())
        assert not report.passed  # 1 - 0.9^50 ≈ 0.995 detection

    def test_retrievability_sampling_detects(self):
        sim, streams, network, verifier = setup(seed=7)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 40 * 512, chunk_size=512)
        provider.accept_blob(blob)
        provider.drop_chunks(blob.merkle_root, 0.5, streams.stream("analysis.drop"))

        def scenario():
            report = yield from verifier.proof_of_retrievability(
                "p1", commit(blob), sample_size=8
            )
            return report

        assert not sim.run_process(scenario()).passed


class TestReplicationProofs:
    def test_honest_sealed_replicas_pass(self):
        sim, streams, network, verifier = setup(seed=8)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 16 * 512, chunk_size=512)
        sealed1, sealed2 = seal_blob(blob, "r1"), seal_blob(blob, "r2")
        provider.accept_blob(sealed1)
        provider.accept_blob(sealed2)

        def scenario():
            reports = yield from verifier.proof_of_replication(
                "p1", [commit(sealed1), commit(sealed2)]
            )
            return reports

        reports = sim.run_process(scenario())
        assert all(r.passed for r in reports.values())

    def test_dedup_cheater_busts_deadline(self):
        sim, streams, network, verifier = setup(seed=9, deadline=0.1)
        provider = StorageProvider(network, "p1", seal_time=0.5)
        blob = make_random_blob(streams, 16 * 512, chunk_size=512)
        sealed1, sealed2 = seal_blob(blob, "r1"), seal_blob(blob, "r2")
        provider.accept_blob(sealed1)  # one real sealed copy
        # Claims the second replica but keeps only the unsealed backing.
        provider.claim_sealed_without_storing(sealed2, blob, "r2")

        def scenario():
            reports = yield from verifier.proof_of_replication(
                "p1", [commit(sealed1), commit(sealed2)]
            )
            return reports

        reports = sim.run_process(scenario())
        assert reports[sealed1.merkle_root].passed
        cheat = reports[sealed2.merkle_root]
        # Answers are byte-correct but too slow: timing detection.
        assert cheat.correctness_failures == 0
        assert cheat.deadline_violations > 0
        assert not cheat.passed

    def test_physical_storage_savings_of_cheater(self):
        sim, streams, network, verifier = setup(seed=10)
        honest = StorageProvider(network, "honest")
        cheater = StorageProvider(network, "cheater")
        blob = make_random_blob(streams, 16 * 512, chunk_size=512)
        sealed1, sealed2 = seal_blob(blob, "r1"), seal_blob(blob, "r2")
        honest.accept_blob(sealed1)
        honest.accept_blob(sealed2)
        cheater.accept_blob(sealed1)
        cheater.claim_sealed_without_storing(sealed2, blob, "r2")
        assert cheater.used_bytes < honest.used_bytes


class TestOutsourcingAttack:
    def test_outsourcer_correct_but_slow(self):
        sim, streams, network, verifier = setup(seed=11, latency=0.08, deadline=0.15)
        backend = StorageProvider(network, "backend", read_time=0.005)
        front = StorageProvider(network, "front", read_time=0.005)
        blob = make_random_blob(streams, 8 * 512, chunk_size=512)
        backend.accept_blob(blob)
        front.claim_outsourced(blob, "backend")

        def scenario():
            return (yield from verifier.challenge_once("front", commit(blob)))

        outcome = sim.run_process(scenario())
        # Byte-correct answer, but the extra hop breaks the deadline.
        assert outcome.ok
        assert not outcome.deadline_met

    def test_outsourcer_fast_network_evades_timing(self):
        # With tight colocation the outsourcing attack IS hard to catch —
        # the honest negative result the deadline mechanism implies.
        sim, streams, network, verifier = setup(seed=12, latency=0.001, deadline=0.5)
        backend = StorageProvider(network, "backend")
        front = StorageProvider(network, "front")
        blob = make_random_blob(streams, 8 * 512, chunk_size=512)
        backend.accept_blob(blob)
        front.claim_outsourced(blob, "backend")

        def scenario():
            return (yield from verifier.challenge_once("front", commit(blob)))

        outcome = sim.run_process(scenario())
        assert outcome.ok and outcome.deadline_met

    def test_outsourcer_fails_when_backend_dies(self):
        sim, streams, network, verifier = setup(seed=13)
        backend = StorageProvider(network, "backend")
        front = StorageProvider(network, "front")
        blob = make_random_blob(streams, 8 * 512, chunk_size=512)
        backend.accept_blob(blob)
        front.claim_outsourced(blob, "backend")
        network.node("backend").set_online(False, 0.0)

        def scenario():
            return (yield from verifier.challenge_once("front", commit(blob)))

        outcome = sim.run_process(scenario())
        assert not outcome.ok


class TestSpacetime:
    def test_uptime_record_over_epochs(self):
        sim, streams, network, verifier = setup(seed=14)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 8 * 512, chunk_size=512)
        provider.accept_blob(blob)

        def scenario():
            record = yield from verifier.proof_of_spacetime(
                "p1", commit(blob), epochs=10, epoch_length=10.0
            )
            return record

        record = sim.run_process(scenario())
        assert record.uptime_fraction == 1.0
        assert len(record.epochs_proved) == 10

    def test_offline_epochs_recorded_as_failures(self):
        sim, streams, network, verifier = setup(seed=15)
        provider = StorageProvider(network, "p1")
        blob = make_random_blob(streams, 8 * 512, chunk_size=512)
        provider.accept_blob(blob)
        # Take the provider down partway through.
        sim.schedule(45.0, network.node("p1").set_online, False, 45.0)

        def scenario():
            record = yield from verifier.proof_of_spacetime(
                "p1", commit(blob), epochs=10, epoch_length=10.0
            )
            return record

        record = sim.run_process(scenario())
        assert 0.0 < record.uptime_fraction < 1.0
        assert len(record.epochs_failed) > 0


class TestProviderInternals:
    def test_incremental_put_accumulates(self):
        sim = Simulator()
        streams = RngStreams(59)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        provider = StorageProvider(network, "p")
        network.create_node("client")
        blob = make_random_blob(streams, 4 * 512, chunk_size=512)

        def scenario():
            # Upload chunk by chunk (resumable transfer).
            for index, chunk in enumerate(blob.chunks):
                yield from network.rpc(
                    "client", "p", "store.put",
                    {
                        "commitment_id": blob.merkle_root,
                        "chunk_count": len(blob.chunks),
                        "entries": [(index, chunk, blob.proof_for(index))],
                    },
                )
            return provider.commitments[blob.merkle_root]

        stored = sim.run_process(scenario())
        assert len(stored.payloads) == 4
        assert stored.physically_stored_bytes == blob.size_bytes

    def test_drop_chunks_validation(self):
        sim = Simulator()
        streams = RngStreams(60)
        network = Network(sim, streams)
        provider = StorageProvider(network, "p")
        blob = make_random_blob(streams, 1024, chunk_size=512)
        provider.accept_blob(blob)
        with pytest.raises(StorageError):
            provider.drop_chunks(blob.merkle_root, 1.5, streams.stream("x"))
        with pytest.raises(StorageError):
            provider.drop_chunks("unknown", 0.5, streams.stream("x"))
