"""Generic parameter-sweep helper used by benches and examples."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence

__all__ = ["sweep", "cross_product"]


def sweep(
    run: Callable[..., Any],
    parameter: str,
    values: Iterable[Any],
    **fixed: Any,
) -> List[Dict[str, Any]]:
    """Run ``run(**fixed, parameter=value)`` per value.

    Returns rows of ``{parameter: value, "result": result}``.
    """
    rows = []
    for value in values:
        kwargs = dict(fixed)
        kwargs[parameter] = value
        rows.append({parameter: value, "result": run(**kwargs)})
    return rows


def cross_product(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """All combinations of named axes, as kwargs dicts (stable order)."""
    names = sorted(axes)
    combos: List[Dict[str, Any]] = [{}]
    for name in names:
        combos = [
            {**combo, name: value} for combo in combos for value in axes[name]
        ]
    return combos
