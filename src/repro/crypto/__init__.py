"""Cryptographic substrate: real hashing/Merkle trees, simulated signatures,
and proof-of-work (real puzzle + analytic mining race)."""

from repro.crypto.hashing import hash_int, hash_obj, sha256, sha256_hex, truncated_int
from repro.crypto.keys import (
    KeyPair,
    Signature,
    generate_keypair,
    require_valid,
    verify,
)
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root
from repro.crypto.pow import MiningRace, PowPuzzle, expected_block_time

__all__ = [
    "sha256",
    "sha256_hex",
    "hash_obj",
    "hash_int",
    "truncated_int",
    "KeyPair",
    "Signature",
    "generate_keypair",
    "verify",
    "require_valid",
    "MerkleTree",
    "MerkleProof",
    "merkle_root",
    "PowPuzzle",
    "MiningRace",
    "expected_block_time",
]
