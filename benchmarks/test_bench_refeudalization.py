"""Extension bench — the re-emergence of feudalism (§5.3).

The paper's hardest problem: "centralization is frequently driven by
economies of scale... this may not be an entirely technical problem."
The bench runs the provider-market dynamic with and without scale
economies and reports concentration (HHI, survivor count, top share) —
the measurable version of the backsliding the paper warns about.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.core.economics import MarketParams, ProviderMarket, herfindahl_index
from repro.sim import RngStreams


def test_bench_refeudalization(benchmark):
    def sweep():
        rows = []
        for scale_advantage in (0.0, 0.1, 0.25):
            market = ProviderMarket(
                20, MarketParams(scale_advantage=scale_advantage), RngStreams(1)
            )
            history = market.run(300)
            final = history[-1]
            rows.append(
                {
                    "scale_advantage": scale_advantage,
                    "providers_surviving": final["providers_alive"],
                    "hhi": round(final["hhi"], 3),
                    "top_provider_share": round(final["top_share"], 3),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Re-feudalization — market concentration vs scale economies"
         " (20 providers, 300 rounds)", render_table(rows))
    by_advantage = {row["scale_advantage"]: row for row in rows}
    flat = by_advantage[0.0]
    strong = by_advantage[0.25]
    # Flat costs: the democratized market is stable.
    assert flat["providers_surviving"] == 20
    assert flat["hhi"] < 0.06  # ~1/20
    # Scale economies: most providers die and concentration multiplies.
    assert strong["providers_surviving"] <= flat["providers_surviving"] // 2
    assert strong["hhi"] > 3 * flat["hhi"]


def test_bench_refeudalization_time_course(benchmark):
    """The concentration trajectory: gradual, then sudden — lock-in."""

    def trajectory():
        market = ProviderMarket(
            20, MarketParams(scale_advantage=0.25), RngStreams(2)
        )
        history = market.run(300)
        return [history[i] for i in (9, 49, 99, 199, 299)]

    samples = benchmark.pedantic(trajectory, rounds=1, iterations=1)
    emit("Re-feudalization — concentration over time (scale_advantage=0.25)",
         render_table([
             {"round": s["round"], "alive": s["providers_alive"],
              "hhi": round(s["hhi"], 3)}
             for s in samples
         ]))
    hhis = [s["hhi"] for s in samples]
    assert hhis[-1] >= hhis[0]
    assert samples[-1]["providers_alive"] < samples[0]["providers_alive"]
