"""Cross-subsystem integration tests: full stacks, end to end.

These wire several subsystems together the way the surveyed systems do:

* a Blockstack-style stack: name on the chain -> zone file off-chain ->
  audited storage provider -> retrieval starting from just the name;
* a ZeroNet-style stack: site discovery through the Kademlia DHT (no
  tracker) -> swarm fetch -> verification;
* a full federated community under churn with anti-entropy repair.
"""

import pytest

from repro.chain import BlockchainNetwork, ConsensusParams, TxKind, make_transaction
from repro.crypto import generate_keypair
from repro.dht import DhtConfig, build_overlay
from repro.errors import NameNotFoundError
from repro.gossip import AntiEntropyNode
from repro.naming import BlockchainNameRegistry, NameBinding, ZoneFile
from repro.net import ChurnProfile, ConstantLatency, Network, attach_churn
from repro.sim import RngStreams, Simulator
from repro.storage import (
    Commitment,
    DataBlob,
    StorageProvider,
    StorageVerifier,
)
from repro.webapps import DhtPeerDirectory, HostlessSite, SiteSwarm, Tracker

FAST = ConsensusParams(
    target_block_interval=10.0, retarget_interval=50, initial_difficulty=100.0
)


class TestBlockstackStyleStack:
    """Name -> zone file hash on chain; data on a provider; end-to-end
    retrieval starting from only the human-readable name."""

    def test_resolve_name_then_fetch_profile(self):
        sim = Simulator()
        streams = RngStreams(31)
        network = Network(sim, streams, latency=ConstantLatency(0.01))

        # Substrate 1: the chain, with two miners.
        alice = generate_keypair("int-alice")
        chain_net = BlockchainNetwork(
            sim, streams, params=FAST, propagation_delay=0.5,
            premine={alice.public_key: 100.0},
        )
        chain_net.add_participant("m1", hashrate=10.0)
        chain_net.add_participant("m2", hashrate=10.0)
        chain_net.start()
        registry = BlockchainNameRegistry(
            chain_net, chain_net.participant("m1"), confirmations=2
        )

        # Substrate 2: a storage provider holding alice's profile blob.
        provider = StorageProvider(network, "gaia-hub")
        verifier = StorageVerifier(network, "reader-device", streams)
        profile_blob = DataBlob.from_bytes(
            b'{"name": "alice", "avatar": "..."}' * 20, chunk_size=256
        )
        provider.accept_blob(profile_blob)

        # The zone file points at the storage; its hash goes on-chain.
        zone_file = ZoneFile({
            "storage_provider": "gaia-hub",
            "merkle_root": profile_blob.merkle_root,
            "chunk_count": len(profile_blob.chunks),
        })
        binding = NameBinding("alice.id", alice.public_key, zone_file.digest)

        def scenario():
            yield from registry.register(alice, "alice.id", binding.as_value())
            # --- later, a reader starts from just the name ---
            resolution = yield from registry.resolve("alice.id")
            resolved = NameBinding.from_value("alice.id", resolution.value)
            # Zone file integrity is checked against the on-chain hash.
            assert resolved.verify_zone_file(zone_file)
            commitment = Commitment(
                zone_file.entries["merkle_root"],
                zone_file.entries["chunk_count"],
            )
            chunks = yield from verifier.retrieve_all(
                zone_file.entries["storage_provider"], commitment
            )
            return b"".join(chunks)

        data = sim.run_process(scenario(), until=50_000.0)
        assert data == profile_blob.to_bytes()

    def test_tampered_zone_file_detected(self):
        alice = generate_keypair("int-alice2")
        zone_file = ZoneFile({"storage_provider": "honest-hub"})
        binding = NameBinding("alice.id", alice.public_key, zone_file.digest)
        forged = ZoneFile({"storage_provider": "evil-hub"})
        assert not binding.verify_zone_file(forged)


class TestZeroNetStyleStack:
    """Site discovery via DHT (no tracker), swarm fetch, verification."""

    def test_site_discovered_and_fetched_via_dht(self):
        sim = Simulator()
        streams = RngStreams(32)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"peer{i}" for i in range(16)], DhtConfig(k=4, alpha=2)
        )
        # A tracker still exists in the swarm object but we point discovery
        # at the DHT; the tracker node is never consulted.
        swarm = SiteSwarm(network, Tracker(network))

        site = HostlessSite("dht-discovered-site")
        site.write_file("index.html", b"<h1>found via kademlia</h1>")
        bundle = site.publish()
        address = bundle.manifest.site_address

        author_directory = DhtPeerDirectory(overlay["peer0"])
        reader_directory = DhtPeerDirectory(overlay["peer9"])

        def scenario():
            # Author seeds and announces itself in the DHT.
            yield from swarm.seed("peer0", bundle)
            yield from author_directory.announce("peer0", address)
            # Reader discovers seeders from a different DHT node.
            peers = yield from reader_directory.get_peers(address)
            assert peers == ["peer0"]
            fetched = yield from network.rpc(
                "peer9", peers[0], "site.fetch", {"site": address}
            )
            return fetched

        fetched = sim.run_process(scenario())
        assert fetched.verify()
        assert fetched.files == bundle.files

    def test_dht_discovery_survives_single_node_death(self):
        sim = Simulator()
        streams = RngStreams(33)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        overlay = build_overlay(
            network, [f"peer{i}" for i in range(16)], DhtConfig(k=4, alpha=2)
        )
        directory = DhtPeerDirectory(overlay["peer0"])
        reader = DhtPeerDirectory(overlay["peer5"])

        def scenario():
            yield from directory.announce("peer0", "some-site")
            # Kill a third of the overlay, including nothing specific —
            # replicas on the k closest nodes keep the record alive.
            for name in ("peer2", "peer7", "peer11", "peer13"):
                network.node(name).set_online(False, sim.now)
            return (yield from reader.get_peers("some-site"))

        assert sim.run_process(scenario()) == ["peer0"]


class TestFederationUnderChurn:
    """Anti-entropy keeps a federation converged while servers churn."""

    def test_messages_survive_rolling_server_outages(self):
        sim = Simulator()
        streams = RngStreams(34)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        servers = [f"srv{i}" for i in range(4)]
        for server in servers:
            network.create_node(server)
        replicas = {
            server: AntiEntropyNode(
                network, network.node(server), servers, streams, interval=3.0
            )
            for server in servers
        }
        for replica in replicas.values():
            replica.start()
        # Rolling outages: each server takes a different nap.
        for i, server in enumerate(servers):
            start = 50.0 + 40.0 * i
            sim.schedule(start, network.node(server).set_online, False, start)
            sim.schedule(start + 30.0, network.node(server).set_online, True, start + 30.0)

        def scenario():
            for i in range(8):
                # Write to whichever server is up.
                online = [s for s in servers if network.node(s).online]
                replicas[online[i % len(online)]].write(f"msg{i}", f"body-{i}")
                yield 25.0
            yield 300.0  # repair time
            for replica in replicas.values():
                replica.stop()
            return True

        sim.run_process(scenario(), until=5000.0)
        for server in servers:
            store = replicas[server].store
            assert len(store) == 8, f"{server} missing messages"
            assert store.get("msg0") == "body-0"


class TestZeroNetDonations:
    """§3.4: 'The public key is also a standard Bitcoin address for
    accepting donations and payments directly to the web application.'"""

    def test_site_address_receives_chain_payments(self):
        from repro.chain import TxKind

        sim = Simulator()
        streams = RngStreams(35)
        fan = generate_keypair("int-donor")
        chain_net = BlockchainNetwork(
            sim, streams, params=FAST, propagation_delay=0.3,
            premine={fan.public_key: 50.0},
        )
        chain_net.add_participant("m1", hashrate=10.0)
        chain_net.start()

        site = HostlessSite("donation-site")
        site.write_file("index.html", b"<h1>tip jar below</h1>")
        bundle = site.publish()
        site_address = bundle.manifest.site_address  # also a payment address

        donation = make_transaction(
            fan, TxKind.PAY, {"to": site_address, "amount": 7.5}, 0, fee=0.1
        )
        chain_net.submit_transaction(donation)
        sim.run(until=300.0)

        state = chain_net.participant("m1").chain.state_at()
        assert state.balance(site_address) == pytest.approx(7.5)
        # The bundle self-verifies, so the payee identity is exactly the
        # key that signs site updates: donations cannot be redirected by
        # a mirror without breaking verification.
        assert bundle.verify()


class TestSplitBrain:
    """Partition -> divergent writes -> heal -> anti-entropy convergence:
    the §3.2 'loss of communication channels' threat, end to end."""

    def test_federation_converges_after_partition_heals(self):
        sim = Simulator()
        streams = RngStreams(36)
        network = Network(sim, streams, latency=ConstantLatency(0.01))
        servers = [f"srv{i}" for i in range(4)]
        for server in servers:
            network.create_node(server)
        replicas = {
            server: AntiEntropyNode(
                network, network.node(server), servers, streams, interval=3.0
            )
            for server in servers
        }
        for replica in replicas.values():
            replica.start()

        def scenario():
            # Split 2-2 and write on both sides (including a conflict).
            network.partition([["srv0", "srv1"], ["srv2", "srv3"]])
            replicas["srv0"].write("left-only", "L")
            replicas["srv2"].write("right-only", "R")
            replicas["srv0"].write("conflict", "from-left")
            replicas["srv2"].write("conflict", "from-right")
            yield 120.0  # gossip happens within each side only
            # Divergence while partitioned:
            assert replicas["srv0"].store.get("right-only") is None
            assert replicas["srv2"].store.get("left-only") is None
            network.heal()
            yield 300.0  # anti-entropy repairs across the healed link
            for replica in replicas.values():
                replica.stop()
            return True

        sim.run_process(scenario(), until=5000.0)
        # Everyone has everything, and the conflict resolved identically.
        conflict_values = {r.store.get("conflict") for r in replicas.values()}
        assert len(conflict_values) == 1
        for replica in replicas.values():
            assert replica.store.get("left-only") == "L"
            assert replica.store.get("right-only") == "R"

    def test_blockchain_partition_forks_then_reorgs_on_heal(self):
        sim = Simulator()
        streams = RngStreams(37)
        chain_net = BlockchainNetwork(
            sim, streams, params=FAST, propagation_delay=0.5,
        )
        # NOTE: BlockchainNetwork gossips directly (not via repro.net), so
        # we model the partition by isolating one miner with withholding —
        # the same connectivity semantics from the chain's point of view.
        a = chain_net.add_participant("side-a", hashrate=15.0)
        b = chain_net.add_participant("side-b", hashrate=10.0)
        chain_net.start()
        sim.run(until=200.0)
        # "Partition": side-b stops hearing side-a and vice versa.
        b.begin_withholding()
        sim.run(until=600.0)
        fork_a, fork_b = a.chain.tip.block_id, b._private_tip_id
        assert fork_a != fork_b  # divergent chains during the partition
        # "Heal": side-b rejoins and publishes its fork.
        b.release_private_chain()
        sim.run(until=620.0)
        # Consensus resumes: both share one tip (heavier side wins).
        assert a.chain.tip.block_id == b.chain.tip.block_id
