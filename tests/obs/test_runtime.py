"""Tests for the ambient observe() context and its pickup at build time."""

from repro.obs import Metrics, Tracer, active, observe
from repro.sim import Simulator


class TestObserveContext:
    def test_no_observation_by_default(self):
        assert active() is None

    def test_observe_sets_and_restores(self):
        tracer, metrics = Tracer(), Metrics()
        with observe(tracer=tracer, metrics=metrics) as observation:
            assert active() is observation
            assert active().tracer is tracer
            assert active().metrics is metrics
        assert active() is None

    def test_nested_observe_restores_outer(self):
        outer, inner = Metrics(), Metrics()
        with observe(metrics=outer):
            with observe(metrics=inner):
                assert active().metrics is inner
            assert active().metrics is outer
        assert active() is None

    def test_restored_even_when_block_raises(self):
        try:
            with observe(metrics=Metrics()):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert active() is None

    def test_partial_observation(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            sim = Simulator()
        assert sim.metrics is metrics
        assert sim.tracer is None


class TestConstructionTimeSampling:
    def test_simulator_samples_at_build_time(self):
        with observe(metrics=Metrics()):
            inside = Simulator()
        outside = Simulator()
        assert inside.metrics is not None
        assert outside.metrics is None

    def test_explicit_args_override_ambient(self):
        mine = Metrics()
        ambient_tracer = Tracer()
        with observe(metrics=Metrics(), tracer=ambient_tracer):
            sim = Simulator(metrics=mine)
        # Explicit construction wins over the ambient observation for
        # that hook; each omitted hook still adopts its ambient value.
        assert sim.metrics is mine
        assert sim.tracer is ambient_tracer

    def test_each_omitted_hook_adopts_independently(self):
        """Passing only a tracer must not silently drop the ambient
        metrics registry (and vice versa)."""
        ambient_tracer, ambient_metrics = Tracer(), Metrics()
        mine_tracer, mine_metrics = Tracer(), Metrics()
        with observe(tracer=ambient_tracer, metrics=ambient_metrics):
            tracer_only = Simulator(tracer=mine_tracer)
            metrics_only = Simulator(metrics=mine_metrics)
        assert tracer_only.tracer is mine_tracer
        assert tracer_only.metrics is ambient_metrics
        assert metrics_only.metrics is mine_metrics
        assert metrics_only.tracer is ambient_tracer

    def test_ambient_metrics_actually_record(self):
        metrics = Metrics()
        with observe(metrics=metrics):
            sim = Simulator()

            def worker():
                yield 1.0

            sim.spawn(worker())
            sim.run()
        assert metrics.counter("sim.events_fired") >= 1
        assert metrics.counter("sim.processes_finished") == 1
