"""Vectorized cohort simulation: whole-population array updates.

The per-process engine (:mod:`repro.sim.engine`) schedules one heap
event per device transition, which tops out around 10^2-10^3 nodes.
The paper's §4 feasibility argument is about *millions* of devices, so
this module provides the batch alternative: a :class:`DeviceCohort`
holds the state of N homogeneous devices as numpy arrays (online flag,
renewal clock, departure flag, online-time integral) and advances them
with whole-cohort array operations between coarse ticks driven by a
:class:`CohortEngine`.

Semantics mirror :class:`repro.net.churn.ChurnProcess` — an alternating
renewal process with exponential dwell times and per-departure
attrition — but draws are batched, so the two engines agree only in
*aggregate distribution*, not draw-for-draw.  The tolerance contract
between them is documented in ``docs/SCALING.md`` and enforced by the
hypothesis equivalence suite in ``tests/sim/test_cohort_equivalence.py``.

Determinism notes:

* All randomness comes from one ``numpy.random.Generator`` handed in by
  the caller (build it with :func:`repro.sim.rng.seeded_generator`).
* Exponential dwells are drawn by inverse-CDF from ``Generator.random``
  — the raw uniform double stream, which numpy keeps stable across
  versions — rather than ``Generator.exponential``, whose ziggurat
  tables are not covered by the stream-compatibility guarantee.
* Aggregate counters (flips, sessions, departures, per-tick online
  counts) are integers, so golden tests can pin them exactly.

Memory stays O(arrays) + O(histogram buckets): no per-device Python
objects are ever created, and results stream into the bucket-sketch
:class:`repro.obs.metrics.Histogram`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy

from repro.errors import SimulationError
from repro.obs.metrics import Metrics
from repro.obs.runtime import active as _active_observation

__all__ = ["CohortEngine", "DeviceCohort"]


def _exponential_dwells(
    generator: "numpy.random.Generator", scales: Any, size: int
) -> Any:
    """Exponential draws via inverse-CDF over the uniform double stream.

    ``scales`` may be a scalar or a per-element array of means.  Using
    ``-scale * log1p(-U)`` instead of ``Generator.exponential`` pins the
    draw sequence to the bit-generator's uniform output, which is the
    part of numpy's RNG surface with a cross-version stability promise.
    """
    return -scales * numpy.log1p(-generator.random(size))


class DeviceCohort:
    """N homogeneous devices advanced by whole-array renewal steps.

    Parameters mirror :class:`repro.net.churn.ChurnProfile`: exponential
    mean uptime/downtime in seconds plus a per-departure ``attrition``
    probability of never returning.  All devices start online (matching
    ``ChurnProcess``) unless ``start_online=False``.

    The per-device state is five flat numpy arrays; aggregate accessors
    (:meth:`online_count`, :meth:`sessions`, ...) return plain Python
    ints/floats so reports stay JSON-safe.
    """

    def __init__(
        self,
        name: str,
        size: int,
        mean_uptime: float,
        mean_downtime: float,
        attrition: float = 0.0,
        *,
        generator: "numpy.random.Generator",
        start_online: bool = True,
    ):
        if size < 1:
            raise SimulationError(f"cohort needs at least one device: {size}")
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise SimulationError(
                f"cohort needs positive dwell means, got {mean_uptime},"
                f" {mean_downtime}"
            )
        if not 0 <= attrition <= 1:
            raise SimulationError(f"attrition must be in [0,1]: {attrition}")
        self.name = str(name)
        self.size = int(size)
        self.mean_uptime = float(mean_uptime)
        self.mean_downtime = float(mean_downtime)
        self.attrition = float(attrition)
        self._generator = generator
        self.now = 0.0
        self.online = numpy.full(self.size, bool(start_online))
        self.departed = numpy.zeros(self.size, dtype=bool)
        self._last_update = numpy.zeros(self.size, dtype=numpy.float64)
        self._online_seconds = numpy.zeros(self.size, dtype=numpy.float64)
        first_scale = self.mean_uptime if start_online else self.mean_downtime
        self.next_flip = _exponential_dwells(generator, first_scale, self.size)
        #: Total state transitions (either direction) so far.
        self.flips = 0
        #: Offline->online transitions so far (the per-process engine's
        #: ``Node.sessions``, summed over the cohort).
        self._sessions = 0
        #: Uniform draws consumed; feeds the bench draw-order checksum.
        self.draws = self.size

    # -- the batch step ---------------------------------------------------

    def advance_to(self, t: float) -> int:
        """Process every renewal transition up to time ``t``, vectorized.

        Devices whose next flip lands inside the window are toggled in
        batch; a device flipping several times before ``t`` is handled by
        the loop (each pass re-draws its dwell and re-checks the clock).
        Returns the number of flips processed in this step.
        """
        if t < self.now:
            raise SimulationError(
                f"cohort {self.name!r} cannot rewind from {self.now} to {t}"
            )
        flips_before = self.flips
        while True:
            due = numpy.nonzero(~self.departed & (self.next_flip <= t))[0]
            if due.size == 0:
                break
            flip_times = self.next_flip[due]
            was_online = self.online[due]
            # Credit online time up to the flip for devices going offline.
            going_off = due[was_online]
            self._online_seconds[going_off] += (
                flip_times[was_online] - self._last_update[going_off]
            )
            self._last_update[due] = flip_times
            self.online[due] = ~was_online
            self.flips += int(due.size)
            self._sessions += int(due.size - going_off.size)
            if self.attrition > 0.0 and going_off.size:
                # Attrition draw on every going-offline flip, like
                # ChurnProcess._flip; departed devices never rejoin.
                draws = self._generator.random(going_off.size)
                self.draws += int(going_off.size)
                departing = going_off[draws < self.attrition]
                self.departed[departing] = True
                self.next_flip[departing] = numpy.inf
            alive = due[~self.departed[due]]
            if alive.size:
                scales = numpy.where(
                    self.online[alive], self.mean_uptime, self.mean_downtime
                )
                self.next_flip[alive] = flip_times[
                    ~self.departed[due]
                ] + _exponential_dwells(self._generator, scales, alive.size)
                self.draws += int(alive.size)
        still_on = numpy.nonzero(self.online)[0]
        self._online_seconds[still_on] += t - self._last_update[still_on]
        self._last_update[:] = t
        self.now = float(t)
        return self.flips - flips_before

    # -- aggregates (plain Python scalars, JSON-safe) ---------------------

    def online_count(self) -> int:
        """Devices currently online (departed devices are offline)."""
        return int(self.online.sum())

    def departed_count(self) -> int:
        return int(self.departed.sum())

    def sessions(self) -> int:
        """Total offline->online transitions, summed over the cohort."""
        return self._sessions

    def availability_time_mean(self) -> float:
        """Exact time-averaged online fraction over [0, now].

        Float-valued (unlike the tick-sampled integer counts), so golden
        tests should pin the integer aggregates and treat this as
        approximate.
        """
        if self.now <= 0:
            return 1.0 if bool(self.online.all()) else 0.0
        return float(self._online_seconds.sum() / (self.size * self.now))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceCohort({self.name!r}, size={self.size},"
            f" online={self.online_count()}, t={self.now})"
        )


class CohortEngine:
    """Advances cohorts in coarse fixed ticks and aggregates per tick.

    The array-world counterpart of :class:`repro.sim.engine.Simulator`:
    it owns the clock, adopts the ambient :mod:`repro.obs` metrics
    registry exactly like the event engine does, and between ticks hands
    control to an ``on_tick`` callback where experiment drivers sample
    whole-cohort aggregates (integer online counts, probe batches, ...).

    Metrics recorded when a registry is active: ``cohort.devices``,
    ``cohort.ticks``, ``cohort.flips``, ``cohort.draws`` counters and a
    ``cohort.online_fraction`` histogram sampled at each tick boundary.
    """

    def __init__(self, tick: float, metrics: Optional[Metrics] = None):
        if tick <= 0:
            raise SimulationError(f"tick must be positive: {tick}")
        if metrics is None:
            observation = _active_observation()
            if observation is not None:
                metrics = observation.metrics
        self._metrics = metrics
        self.tick = float(tick)
        self.now = 0.0
        self.ticks = 0
        self.cohorts: List[DeviceCohort] = []

    def add(self, cohort: DeviceCohort) -> DeviceCohort:
        """Register a cohort; it must not have advanced past the engine."""
        if cohort.now != self.now:
            raise SimulationError(
                f"cohort {cohort.name!r} is at t={cohort.now}, engine at"
                f" t={self.now}"
            )
        self.cohorts.append(cohort)
        if self._metrics is not None:
            self._metrics.inc("cohort.devices", cohort.size)
        return cohort

    def run(
        self,
        until: float,
        on_tick: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Advance every cohort to ``until`` in ``tick``-sized steps.

        ``on_tick(t)`` fires after all cohorts reach each tick boundary
        (including a final partial tick landing exactly on ``until``), so
        sampling code sees a mutually consistent population snapshot.
        """
        if until < self.now:
            raise SimulationError(
                f"cannot run backwards: now={self.now}, until={until}"
            )
        while self.now < until:
            t = min(self.now + self.tick, until)
            flips = 0
            draws_before = sum(c.draws for c in self.cohorts)
            for cohort in self.cohorts:
                flips += cohort.advance_to(t)
            self.now = t
            self.ticks += 1
            if self._metrics is not None:
                self._metrics.inc("cohort.ticks")
                if flips:
                    self._metrics.inc("cohort.flips", flips)
                draws = sum(c.draws for c in self.cohorts) - draws_before
                if draws:
                    self._metrics.inc("cohort.draws", draws)
                for cohort in self.cohorts:
                    self._metrics.observe(
                        "cohort.online_fraction",
                        cohort.online_count() / cohort.size,
                    )
            if on_tick is not None:
                on_tick(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CohortEngine(tick={self.tick}, now={self.now},"
            f" cohorts={len(self.cohorts)})"
        )
